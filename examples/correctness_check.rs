//! Correctness audit (§6.4.5): run a contended workload under every protocol
//! with history recording enabled, then
//!
//! * check the serialization graph is acyclic,
//! * check value conservation on the hot row (no lost updates),
//! * run the TPC-C warehouse-vs-district reconciliation.
//!
//! ```bash
//! cargo run --release --example correctness_check
//! ```

use std::sync::Arc;
use txsql::prelude::*;

const COUNTERS: TableId = TableId(1);

fn audit_protocol(protocol: Protocol) {
    let db = Arc::new(Database::new(
        EngineConfig::for_protocol(protocol)
            .with_hotspot_threshold(4)
            .with_history_recording(true),
    ));
    db.create_table(TableSchema::new(COUNTERS, "counters", 2))
        .unwrap();
    for pk in 0..16 {
        db.load_row(COUNTERS, Row::from_ints(&[pk, 0])).unwrap();
    }

    let threads = 6;
    let per_thread = 50;
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let db = Arc::clone(&db);
            scope.spawn(move || {
                let program = TxnProgram::new(vec![
                    Operation::UpdateAdd {
                        table: COUNTERS,
                        pk: 0,
                        column: 1,
                        delta: 1,
                    },
                    Operation::Read {
                        table: COUNTERS,
                        pk: (worker % 16) as i64,
                    },
                ]);
                let mut committed = 0;
                while committed < per_thread {
                    match db.execute_program(&program) {
                        Ok(outcome) if outcome.committed => committed += 1,
                        _ => {}
                    }
                }
            });
        }
    });

    let record = db.record_id(COUNTERS, 0).unwrap();
    let hot_value = db
        .storage()
        .read_committed(COUNTERS, record)
        .unwrap()
        .unwrap()
        .get_int(1)
        .unwrap();
    let expected = (threads * per_thread) as i64;
    let report = db.history().unwrap().check();
    println!(
        "{:<20} hot row {:>4}/{:<4} lost-updates: {}  serializable: {} ({} txns, {} edges)",
        format!("{protocol:?}"),
        hot_value,
        expected,
        if hot_value == expected {
            "none"
        } else {
            "FOUND"
        },
        report.is_serializable(),
        report.transactions,
        report.edges,
    );
    assert_eq!(hot_value, expected, "lost update under {protocol:?}");
    assert!(
        report.is_serializable(),
        "non-serializable history under {protocol:?}"
    );
    db.shutdown();
}

fn tpcc_reconciliation() {
    let db = Database::with_protocol(Protocol::GroupLockingTxsql);
    let workload = TpccWorkload::new(1);
    let options = ClosedLoopOptions::default().with_threads(6).with_durations(
        std::time::Duration::from_millis(100),
        std::time::Duration::from_millis(400),
    );
    let snapshot = run_closed_loop(&db, &workload, &options);
    let consistent = workload.consistency_check(&db);
    println!(
        "TPC-C reconciliation: {} committed transactions, warehouse YTD == sum(district YTD): {}",
        snapshot.committed, consistent
    );
    assert!(consistent);
    db.shutdown();
}

fn main() {
    println!("correctness audit across protocols (hot-row conservation + serializability):\n");
    for protocol in [
        Protocol::Mysql2pl,
        Protocol::LightweightO1,
        Protocol::QueueLockingO2,
        Protocol::GroupLockingTxsql,
        Protocol::Bamboo,
        Protocol::Aria,
    ] {
        audit_protocol(protocol);
    }
    println!();
    tpcc_reconciliation();
    println!("\nall checks passed.");
}
