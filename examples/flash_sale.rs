//! Flash sale: the e-commerce scenario from the paper's introduction.
//!
//! One product with limited stock is hammered by many concurrent buyers.  The
//! stock row is a textbook hotspot: every purchase decrements the same row.
//! The example runs the same sale under MySQL-style 2PL and under TXSQL group
//! locking and reports throughput, abort counts and the (identical) final
//! stock — over-selling must never happen under either protocol.
//!
//! ```bash
//! cargo run --release --example flash_sale
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use txsql::prelude::*;

const PRODUCTS: TableId = TableId(1);
const ORDERS: TableId = TableId(2);
const INITIAL_STOCK: i64 = 2_000;
const BUYERS: usize = 16;

fn run_sale(protocol: Protocol) -> (f64, u64, i64) {
    let db = Database::new(EngineConfig::for_protocol(protocol).with_hotspot_threshold(4));
    db.create_table(TableSchema::new(PRODUCTS, "products", 2))
        .unwrap();
    db.create_table(TableSchema::new(ORDERS, "orders", 2))
        .unwrap();
    db.load_row(PRODUCTS, Row::from_ints(&[1, INITIAL_STOCK]))
        .unwrap();

    let db = Arc::new(db);
    let sold = Arc::new(AtomicU64::new(0));
    let next_order = Arc::new(AtomicU64::new(1));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..BUYERS {
            let db = Arc::clone(&db);
            let sold = Arc::clone(&sold);
            let next_order = Arc::clone(&next_order);
            scope.spawn(move || {
                loop {
                    if sold.load(Ordering::Relaxed) >= INITIAL_STOCK as u64 {
                        return;
                    }
                    // SELECT stock FOR UPDATE; if > 0: stock -= 1; INSERT order;
                    let mut txn = db.begin();
                    let purchase = (|| -> Result<bool> {
                        let row = db.select_for_update(&mut txn, PRODUCTS, 1)?;
                        if row.get_int(1).unwrap_or(0) <= 0 {
                            return Ok(false);
                        }
                        db.update_add(&mut txn, PRODUCTS, 1, 1, -1)?;
                        let order_id = next_order.fetch_add(1, Ordering::Relaxed) as i64;
                        db.insert(&mut txn, ORDERS, Row::from_ints(&[order_id, 1]))?;
                        Ok(true)
                    })();
                    match purchase {
                        Ok(true) => {
                            if db.commit(txn).is_ok() {
                                sold.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Ok(false) => {
                            db.rollback(txn, None);
                            return; // sold out
                        }
                        Err(err) => db.rollback(txn, Some(&err)),
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let record = db.record_id(PRODUCTS, 1).unwrap();
    let final_stock = db
        .storage()
        .read_committed(PRODUCTS, record)
        .unwrap()
        .unwrap()
        .get_int(1)
        .unwrap();
    let aborted = db.metrics().aborted.get();
    let tps = sold.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64();
    db.shutdown();
    (tps, aborted, final_stock)
}

fn main() {
    println!("flash sale: {INITIAL_STOCK} units, {BUYERS} concurrent buyers\n");
    for protocol in [Protocol::Mysql2pl, Protocol::GroupLockingTxsql] {
        let (tps, aborted, final_stock) = run_sale(protocol);
        println!(
            "{:<22} {:>10.0} purchases/s   aborted attempts: {:>6}   final stock: {}",
            format!("{:?}", protocol),
            tps,
            aborted,
            final_stock
        );
        assert!(final_stock >= 0, "over-sold under {protocol:?}!");
    }
    println!("\nno over-selling under either protocol; TXSQL sustains the higher rate.");
}
