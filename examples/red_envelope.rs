//! WeChat red envelope: the paper's flagship production scenario (§2.3).
//!
//! A sender funds a red envelope (one hot balance row); a crowd of recipients
//! concurrently claim random slices until the envelope is empty.  Every claim
//! updates the hot envelope row and inserts a claim record.  At the end the
//! money must be conserved: claimed total + remaining balance == envelope
//! amount, and the run is audited with the serializability checker.
//!
//! ```bash
//! cargo run --release --example red_envelope
//! ```

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use txsql::prelude::*;

const ENVELOPES: TableId = TableId(1);
const CLAIMS: TableId = TableId(2);
const ENVELOPE_AMOUNT: i64 = 100_000; // cents
const RECIPIENTS: usize = 12;
const CLAIMS_PER_RECIPIENT: usize = 40;

fn main() -> Result<()> {
    let db = Database::new(
        EngineConfig::for_protocol(Protocol::GroupLockingTxsql)
            .with_hotspot_threshold(4)
            .with_history_recording(true),
    );
    db.create_table(TableSchema::new(ENVELOPES, "envelopes", 2))?;
    db.create_table(TableSchema::new(CLAIMS, "claims", 3))?;
    db.load_row(ENVELOPES, Row::from_ints(&[1, ENVELOPE_AMOUNT]))?;

    let db = Arc::new(db);
    let claimed_total = Arc::new(AtomicI64::new(0));
    let next_claim_id = Arc::new(AtomicI64::new(1));

    std::thread::scope(|scope| {
        for recipient in 0..RECIPIENTS {
            let db = Arc::clone(&db);
            let claimed_total = Arc::clone(&claimed_total);
            let next_claim_id = Arc::clone(&next_claim_id);
            scope.spawn(move || {
                let mut rng = txsql::common::rng::XorShiftRng::for_worker(2024, recipient as u64);
                for _ in 0..CLAIMS_PER_RECIPIENT {
                    let want = 1 + rng.next_bounded(50) as i64;
                    loop {
                        let mut txn = db.begin();
                        let attempt = (|| -> Result<Option<i64>> {
                            let envelope = db.select_for_update(&mut txn, ENVELOPES, 1)?;
                            let remaining = envelope.get_int(1).unwrap_or(0);
                            if remaining <= 0 {
                                return Ok(None);
                            }
                            let take = want.min(remaining);
                            db.update_add(&mut txn, ENVELOPES, 1, 1, -take)?;
                            let claim_id = next_claim_id.fetch_add(1, Ordering::Relaxed);
                            db.insert(
                                &mut txn,
                                CLAIMS,
                                Row::from_ints(&[claim_id, recipient as i64, take]),
                            )?;
                            Ok(Some(take))
                        })();
                        match attempt {
                            Ok(Some(take)) => {
                                if db.commit(txn).is_ok() {
                                    claimed_total.fetch_add(take, Ordering::Relaxed);
                                    break;
                                }
                            }
                            Ok(None) => {
                                db.rollback(txn, None);
                                return; // envelope empty
                            }
                            Err(err) if err.is_retryable() => db.rollback(txn, Some(&err)),
                            Err(err) => {
                                db.rollback(txn, Some(&err));
                                break;
                            }
                        }
                    }
                }
            });
        }
    });

    let record = db.record_id(ENVELOPES, 1)?;
    let remaining = db
        .storage()
        .read_committed(ENVELOPES, record)?
        .unwrap()
        .get_int(1)
        .unwrap();
    let claimed = claimed_total.load(Ordering::Relaxed);
    println!("envelope amount : {ENVELOPE_AMOUNT}");
    println!("claimed total   : {claimed}");
    println!("remaining       : {remaining}");
    assert_eq!(
        claimed + remaining,
        ENVELOPE_AMOUNT,
        "money was created or destroyed!"
    );

    let report = db.history().expect("history recording enabled").check();
    println!(
        "serializability : {} ({} committed transactions, {} graph edges)",
        if report.is_serializable() {
            "OK (acyclic serialization graph)"
        } else {
            "VIOLATED"
        },
        report.transactions,
        report.edges
    );
    assert!(report.is_serializable());

    let snapshot = db.snapshot_metrics(std::time::Duration::from_secs(1));
    println!(
        "hotspot groups  : {} formed, {} member updates",
        snapshot.groups_formed, snapshot.hotspot_group_entries
    );
    db.shutdown();
    Ok(())
}
