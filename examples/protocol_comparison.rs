//! Protocol comparison on the SysBench hotspot-update workload — a miniature
//! of Figure 8 that runs in a few seconds and prints one line per protocol.
//!
//! ```bash
//! cargo run --release --example protocol_comparison
//! ```

use std::time::Duration;
use txsql::prelude::*;

fn main() {
    let threads = 32;
    let workload = SysbenchWorkload::new(SysbenchVariant::HotspotUpdate, 10_000);
    let options = ClosedLoopOptions::default()
        .with_threads(threads)
        .with_durations(Duration::from_millis(200), Duration::from_millis(800));

    println!("SysBench hotspot update, {threads} client threads\n");
    println!(
        "{:<22} {:>12} {:>12} {:>14} {:>16}",
        "protocol", "TPS", "p95 (ms)", "abort ratio", "locks / query"
    );
    let mut baseline_tps = None;
    for protocol in [
        Protocol::Mysql2pl,
        Protocol::LightweightO1,
        Protocol::QueueLockingO2,
        Protocol::GroupLockingTxsql,
        Protocol::Bamboo,
        Protocol::Aria,
    ] {
        let db = Database::with_protocol(protocol);
        let snapshot = run_closed_loop(&db, &workload, &options);
        if protocol == Protocol::Mysql2pl {
            baseline_tps = Some(snapshot.tps);
        }
        let speedup = baseline_tps
            .map(|base| format!("{:.1}x vs MySQL", snapshot.tps / base.max(1.0)))
            .unwrap_or_default();
        println!(
            "{:<22} {:>12.0} {:>12.2} {:>13.1}% {:>16.3}   {}",
            format!("{protocol:?}"),
            snapshot.tps,
            snapshot.p95_latency_ms,
            snapshot.abort_ratio * 100.0,
            snapshot.locks_per_query,
            speedup
        );
        db.shutdown();
    }
    println!("\n(The paper's Figure 8 shape: TXSQL group locking dominates at high contention.)");
}
