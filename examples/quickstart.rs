//! Quickstart: create an engine, load a table, run a few transactions and
//! inspect the metrics.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use txsql::prelude::*;

fn main() -> Result<()> {
    // A TXSQL engine with group locking (the paper's full optimization set).
    let db = Database::with_protocol(Protocol::GroupLockingTxsql);

    // CREATE TABLE accounts (id BIGINT PRIMARY KEY, balance BIGINT);
    const ACCOUNTS: TableId = TableId(1);
    db.create_table(TableSchema::new(ACCOUNTS, "accounts", 2))?;
    for pk in 0..10 {
        db.load_row(ACCOUNTS, Row::from_ints(&[pk, 1_000]))?;
    }

    // Explicit session API: BEGIN; UPDATE ...; SELECT ...; COMMIT;
    let mut txn = db.begin();
    let new_balance = db.update_add(&mut txn, ACCOUNTS, 3, 1, 250)?;
    let row = db.read(&mut txn, ACCOUNTS, 3)?;
    println!("inside the transaction account 3 = {row} (new balance {new_balance})");
    db.commit(txn)?;

    // Declarative programs: what the workload drivers (and Aria) use.
    let transfer = TxnProgram::new(vec![
        Operation::UpdateAdd {
            table: ACCOUNTS,
            pk: 3,
            column: 1,
            delta: -100,
        },
        Operation::UpdateAdd {
            table: ACCOUNTS,
            pk: 7,
            column: 1,
            delta: 100,
        },
    ]);
    let outcome = db.execute_program(&transfer)?;
    println!("transfer committed: {}", outcome.committed);

    // A rolled-back transaction leaves no trace.
    let mut txn = db.begin();
    db.update_add(&mut txn, ACCOUNTS, 7, 1, 999_999)?;
    db.rollback(txn, None);

    for pk in [3, 7] {
        let record = db.record_id(ACCOUNTS, pk)?;
        let row = db.storage().read_committed(ACCOUNTS, record)?.unwrap();
        println!("account {pk}: {row}");
    }

    let snapshot = db.snapshot_metrics(std::time::Duration::from_secs(1));
    println!(
        "committed={} aborted={} locks_created={} (protocol {:?})",
        snapshot.committed,
        snapshot.aborted,
        snapshot.locks_created,
        db.protocol()
    );
    db.shutdown();
    Ok(())
}
