//! # txsql
//!
//! A from-scratch Rust reproduction of **"TXSQL: Lock Optimizations Towards
//! High Contented Workloads"** (SIGMOD 2025): a multi-threaded in-memory
//! transactional engine whose lock manager implements the paper's whole
//! optimization journey — lightweight locking, copy-free read views, queue
//! locking and group locking for hotspots — alongside the MySQL, Bamboo and
//! Aria baselines it is evaluated against.
//!
//! This crate is a thin facade: it re-exports the workspace crates so that a
//! downstream user (and the bundled examples) can depend on a single `txsql`
//! crate.
//!
//! ```
//! use txsql::prelude::*;
//!
//! let db = Database::with_protocol(Protocol::GroupLockingTxsql);
//! db.create_table(TableSchema::new(TableId(1), "counters", 2)).unwrap();
//! db.load_row(TableId(1), Row::from_ints(&[1, 0])).unwrap();
//!
//! let mut txn = db.begin();
//! db.update_add(&mut txn, TableId(1), 1, 1, 5).unwrap();
//! db.commit(txn).unwrap();
//!
//! let record = db.record_id(TableId(1), 1).unwrap();
//! let row = db.storage().read_committed(TableId(1), record).unwrap().unwrap();
//! assert_eq!(row.get_int(1), Some(5));
//! db.shutdown();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use txsql_common as common;
pub use txsql_core as core;
pub use txsql_lockmgr as lockmgr;
pub use txsql_replication as replication;
pub use txsql_storage as storage;
pub use txsql_txn as txn;
pub use txsql_workloads as workloads;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use txsql_common::latency::LatencyModel;
    pub use txsql_common::{Error, RecordId, Result, Row, TableId, TxnId, Value};
    pub use txsql_core::{Database, EngineConfig, Operation, ProgramOutcome, Protocol, TxnProgram};
    pub use txsql_replication::{ReplicationHook, ReplicationMode};
    pub use txsql_storage::TableSchema;
    pub use txsql_workloads::{
        run_closed_loop, run_fixed_tps, ClosedLoopOptions, FitWorkload, FixedTpsOptions,
        HotspotsTrace, SysbenchVariant, SysbenchWorkload, TpccWorkload, Workload,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn facade_round_trip() {
        let db = Database::with_protocol(Protocol::LightweightO1);
        db.create_table(TableSchema::new(TableId(1), "t", 2))
            .unwrap();
        db.load_row(TableId(1), Row::from_ints(&[1, 10])).unwrap();
        let outcome = db
            .execute_program(&TxnProgram::new(vec![Operation::UpdateAdd {
                table: TableId(1),
                pk: 1,
                column: 1,
                delta: 1,
            }]))
            .unwrap();
        assert!(outcome.committed);
        db.shutdown();
    }
}
