//! Simulated durability and replication latencies.
//!
//! The paper's headline effect — group locking pays off most when transaction
//! latency is high (Figure 2b, Figure 9) — depends on the time a transaction
//! holds its locks across the commit path: binlog flush, fsync, and for
//! semi-synchronous replication a network round trip to the replicas.  We do
//! not have the paper's SSDs or 1.033 ms datacentre network, so the commit
//! pipeline consumes a configurable [`LatencyModel`] instead.  Setting all
//! knobs to zero turns the engine into a pure in-memory system.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Latency knobs for the commit path and replication.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Simulated duration of a binlog/redo fsync (the Sync stage of the 2PC
    /// commit phase).  Group commit amortises this across a batch.
    pub fsync: Duration,
    /// Simulated one-way network latency to a replica.
    pub network_one_way: Duration,
    /// Extra CPU work per statement, used by workloads that model "think
    /// time" inside a transaction (e.g. the long-transaction sweeps).
    pub statement_overhead: Duration,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl LatencyModel {
    /// No artificial latency at all: pure in-memory execution.
    pub const fn in_memory() -> Self {
        Self {
            fsync: Duration::ZERO,
            network_one_way: Duration::ZERO,
            statement_overhead: Duration::ZERO,
        }
    }

    /// A "local SSD" profile: a cheap but non-zero fsync, no replication.
    /// Used by most figure harnesses as the asynchronous-replication setting.
    pub const fn local_ssd() -> Self {
        Self {
            fsync: Duration::from_micros(100),
            network_one_way: Duration::ZERO,
            statement_overhead: Duration::ZERO,
        }
    }

    /// A semi-synchronous replication profile approximating the paper's
    /// testbed (average network latency 1.033 ms between servers, §6.1).
    pub const fn semi_sync_replication() -> Self {
        Self {
            fsync: Duration::from_micros(100),
            network_one_way: Duration::from_micros(1_033),
            statement_overhead: Duration::ZERO,
        }
    }

    /// Round-trip time to a replica (ack required in semi-sync mode).
    pub fn network_round_trip(&self) -> Duration {
        self.network_one_way * 2
    }

    /// True when the commit path has any artificial latency at all.
    pub fn is_instant(&self) -> bool {
        self.fsync.is_zero() && self.network_one_way.is_zero() && self.statement_overhead.is_zero()
    }
}

/// Busy-waits (for sub-100µs pauses) or sleeps for `d`.
///
/// Thread sleeps on Linux have ~50µs+ of scheduler noise, which would swamp
/// the 100µs-scale fsync simulation; the hybrid spin keeps short pauses
/// accurate while long pauses (network RTT) still yield the CPU.
pub fn simulate_delay(d: Duration) {
    if d.is_zero() {
        return;
    }
    if let Some(handle) = txsql_sim::current() {
        // Under deterministic simulation the pause consumes *virtual* time
        // and becomes a preemption point instead of burning wall clock.  The
        // clock is a global resource: timing-dependent interleavings stay
        // fully explored under the POR filter.
        handle.advance(d);
        handle.yield_at(txsql_sim::Resource::global(txsql_sim::ResourceKind::Clock));
        return;
    }
    if d < Duration::from_micros(100) {
        let start = std::time::Instant::now();
        while start.elapsed() < d {
            std::hint::spin_loop();
        }
    } else {
        std::thread::sleep(d);
    }
}

/// The `ut_delay` helper from InnoDB (used in Algorithms 2 and 3): a short
/// calibrated busy loop, `units` of roughly one microsecond each.
pub fn ut_delay(units: u32) {
    if let Some(handle) = txsql_sim::current() {
        // A busy-wait in a spin-until-condition loop: under simulation the
        // yield gives whichever thread must change the condition a chance to
        // run, and the clock advance lets enclosing deadlines expire.
        handle.advance(Duration::from_micros(units as u64));
        handle.yield_at(txsql_sim::Resource::global(txsql_sim::ResourceKind::Clock));
        return;
    }
    let start = std::time::Instant::now();
    let target = Duration::from_micros(units as u64);
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn default_model_is_instant() {
        assert!(LatencyModel::default().is_instant());
        assert!(!LatencyModel::local_ssd().is_instant());
    }

    #[test]
    fn semi_sync_has_network_latency() {
        let m = LatencyModel::semi_sync_replication();
        assert_eq!(m.network_round_trip(), Duration::from_micros(2_066));
        assert!(m.network_round_trip() > m.fsync);
    }

    #[test]
    fn simulate_delay_zero_returns_immediately() {
        let start = Instant::now();
        simulate_delay(Duration::ZERO);
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn simulate_delay_waits_roughly_requested_time() {
        let start = Instant::now();
        simulate_delay(Duration::from_micros(200));
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_micros(200));
        assert!(elapsed < Duration::from_millis(50), "took {elapsed:?}");
    }

    #[test]
    fn ut_delay_spins_at_least_requested_micros() {
        let start = Instant::now();
        ut_delay(50);
        assert!(start.elapsed() >= Duration::from_micros(50));
    }

    #[test]
    fn latency_model_serialises() {
        let m = LatencyModel::semi_sync_replication();
        let json = serde_json::to_string(&m).unwrap();
        let back: LatencyModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
