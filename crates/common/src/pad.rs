//! Cache-line padding for sharded data structures.
//!
//! Neighbouring shard mutexes that share a cache line ping-pong the line
//! between cores on every acquisition — "false sharing" — which defeats the
//! point of sharding.  [`CachePadded`] aligns (and therefore pads) its
//! contents to 128 bytes: the upper bound of coherence-granule sizes on the
//! platforms we care about (64 B on most x86, 128 B on Apple silicon and on
//! Intel parts with adjacent-line prefetch).  Same contract as
//! `crossbeam_utils::CachePadded`, provided locally because the build
//! environment is offline.

use std::ops::{Deref, DerefMut};

/// Pads and aligns `T` to 128 bytes so neighbouring values never share a
/// cache line.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in padding.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_values_are_cache_line_apart() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
        let v: Vec<CachePadded<u64>> = (0..4).map(CachePadded::new).collect();
        let a = &*v[0] as *const u64 as usize;
        let b = &*v[1] as *const u64 as usize;
        assert!(b - a >= 128);
    }

    #[test]
    fn deref_round_trips() {
        let mut p = CachePadded::new(41u32);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }
}
