//! A small, fast, seedable PRNG (xorshift64*) used by workload generators.
//!
//! The workloads need millions of cheap random draws per second on every
//! worker thread; a tiny xorshift generator keeps that off the profile while
//! remaining fully deterministic given a seed, so that every figure harness
//! can be reproduced bit-for-bit.  The quality is more than enough for
//! workload key selection (we are not doing cryptography or Monte-Carlo
//! integration).

/// xorshift64* pseudo random number generator.
#[derive(Debug, Clone)]
pub struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    /// Creates a generator from a seed.  A zero seed is mapped to a fixed
    /// non-zero constant because xorshift has a fixed point at zero.
    pub fn new(seed: u64) -> Self {
        let state = if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        };
        Self { state }
    }

    /// Derives a generator for worker `index` from a base seed, so that worker
    /// streams are decorrelated but reproducible.
    pub fn for_worker(base_seed: u64, index: u64) -> Self {
        // SplitMix64 step to spread the worker index across the state space.
        let mut z = base_seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self::new(z ^ (z >> 31))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.  `bound` must be non-zero.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded generation (Lemire); slight modulo bias at
        // these bound sizes is irrelevant for workload key selection.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn next_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_bounded(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = XorShiftRng::new(42);
        let mut b = XorShiftRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = XorShiftRng::new(0);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn bounded_values_respect_bound() {
        let mut rng = XorShiftRng::new(7);
        for _ in 0..10_000 {
            assert!(rng.next_bounded(10) < 10);
            let v = rng.next_range_inclusive(5, 9);
            assert!((5..=9).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = XorShiftRng::new(123);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn worker_streams_differ() {
        let mut a = XorShiftRng::for_worker(1, 0);
        let mut b = XorShiftRng::for_worker(1, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = XorShiftRng::new(99);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bernoulli_matches_probability_roughly() {
        let mut rng = XorShiftRng::new(5);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.next_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "observed {frac}");
    }
}
