//! Row/value model.
//!
//! The workloads in the paper (SysBench, TPC-C, FiT) only need integer,
//! decimal-as-integer, and short string columns, so the value model is kept
//! deliberately small: a [`Value`] enum and a [`Row`] of values.  Keeping rows
//! small and cheap to clone matters because MVCC keeps one copy per version.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single column value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer (ids, counters, money in cents).
    Int(i64),
    /// UTF-8 string (SysBench pad/c columns, TPC-C names).
    Str(String),
    /// SQL NULL.
    Null,
}

impl Value {
    /// Returns the integer payload, or an engine error if the value is not an
    /// integer.  Used by workloads that do arithmetic on balances/stock.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string payload if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True when the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate in-memory size in bytes, used by the storage engine to
    /// account for page fill and by recovery to size log records.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Int(_) => 8,
            Value::Str(s) => s.len(),
            Value::Null => 0,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

/// A row: an ordered list of column values.  Column 0 is the primary key by
/// convention in every schema this workspace defines.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Row {
    columns: Vec<Value>,
}

impl Row {
    /// Creates a row from column values.
    pub fn new(columns: Vec<Value>) -> Self {
        Self { columns }
    }

    /// Convenience constructor for all-integer rows (the common case in the
    /// SysBench and FiT schemas).
    pub fn from_ints(ints: &[i64]) -> Self {
        Self {
            columns: ints.iter().copied().map(Value::Int).collect(),
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the row has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Borrow a column value.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.columns.get(idx)
    }

    /// Integer value of a column (None if out of range or not an integer).
    pub fn get_int(&self, idx: usize) -> Option<i64> {
        self.columns.get(idx).and_then(Value::as_int)
    }

    /// Replaces a column value.  Panics if the index is out of range — rows in
    /// this engine have a fixed arity determined by their table schema.
    pub fn set(&mut self, idx: usize, value: Value) {
        self.columns[idx] = value;
    }

    /// Adds `delta` to an integer column, returning the new value.
    /// This is the primitive behind `UPDATE t SET val = val + 1`.
    pub fn add_int(&mut self, idx: usize, delta: i64) -> Option<i64> {
        match self.columns.get_mut(idx) {
            Some(Value::Int(v)) => {
                *v = v.wrapping_add(delta);
                Some(*v)
            }
            _ => None,
        }
    }

    /// Iterator over column values.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.columns.iter()
    }

    /// The primary key (column 0 as an integer), if present.
    pub fn primary_key(&self) -> Option<i64> {
        self.get_int(0)
    }

    /// Approximate in-memory size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.columns.iter().map(Value::size_bytes).sum::<usize>() + 8
    }

    /// Consumes the row returning its columns.
    pub fn into_columns(self) -> Vec<Value> {
        self.columns
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl std::ops::Index<usize> for Row {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        &self.columns[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_ints_builds_integer_row() {
        let row = Row::from_ints(&[1, 2, 3]);
        assert_eq!(row.len(), 3);
        assert_eq!(row.get_int(0), Some(1));
        assert_eq!(row.get_int(2), Some(3));
        assert_eq!(row.primary_key(), Some(1));
    }

    #[test]
    fn add_int_updates_in_place() {
        let mut row = Row::from_ints(&[10, 100]);
        assert_eq!(row.add_int(1, 5), Some(105));
        assert_eq!(row.get_int(1), Some(105));
        // Non-integer and out-of-range columns return None.
        row.set(1, Value::Str("x".into()));
        assert_eq!(row.add_int(1, 1), None);
        assert_eq!(row.add_int(9, 1), None);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Str("a".into()).as_str(), Some("a"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::from("abc").size_bytes(), 3);
        assert_eq!(Value::from(1i64).size_bytes(), 8);
    }

    #[test]
    fn display_formats() {
        let row = Row::new(vec![Value::Int(1), Value::Str("hi".into()), Value::Null]);
        assert_eq!(row.to_string(), "(1, 'hi', NULL)");
    }

    #[test]
    fn wrapping_add_does_not_panic_on_overflow() {
        let mut row = Row::from_ints(&[i64::MAX]);
        assert_eq!(row.add_int(0, 1), Some(i64::MIN));
    }

    #[test]
    fn index_operator_borrows_columns() {
        let row = Row::from_ints(&[4, 5]);
        assert_eq!(row[1], Value::Int(5));
    }
}
