//! Lock-free metrics used to reproduce the paper's measurements.
//!
//! The evaluation section reports, per protocol and configuration:
//! throughput (TPS), 95th-percentile latency, the *lock-wait share* of that
//! latency (Figure 6c), the number of locks created per query (Figure 6d),
//! CPU utilisation (Figure 6b — we report a useful-work ratio instead, see
//! `DESIGN.md`), abort and cascading-abort ratios (Figure 10) and failure
//! rate over time (Figure 11).  [`EngineMetrics`] collects all of those with
//! relaxed atomics so that metrics collection itself does not become a point
//! of contention.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A relaxed atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// A sampled gauge: mirrors the current size of a live structure (e.g.
/// lock-registry entries), written by `set` from the structure's own
/// (sharded) counts rather than maintained with hot-path arithmetic.
/// Unlike [`Counter`] it is *not* reset between measurement windows — it
/// reflects live state, not per-window traffic.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// New gauge at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the value with a freshly sampled one.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: sub-microsecond to ~8.9 minutes in
/// power-of-two steps, which is plenty for transaction latencies.
const BUCKETS: usize = 40;

/// A log2-bucketed latency histogram supporting approximate percentiles.
///
/// Recording is a single relaxed `fetch_add`, so worker threads can record
/// every transaction without measurable overhead.  Percentile resolution is
/// one power of two, refined by linear interpolation inside the bucket, which
/// is accurate enough to reproduce the paper's p95 curves.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for LatencyHistogram {
    /// Snapshots the atomics (relaxed, so a clone taken while writers are
    /// active is a consistent-enough point-in-time copy for reporting).
    fn clone(&self) -> Self {
        let copy = Self::new();
        for (dst, src) in copy.buckets.iter().zip(self.buckets.iter()) {
            dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        copy.count
            .store(self.count.load(Ordering::Relaxed), Ordering::Relaxed);
        copy.sum_micros
            .store(self.sum_micros.load(Ordering::Relaxed), Ordering::Relaxed);
        copy.max_micros
            .store(self.max_micros.load(Ordering::Relaxed), Ordering::Relaxed);
        copy
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }

    #[inline]
    fn bucket_for(micros: u64) -> usize {
        // bucket i holds values in [2^i, 2^(i+1)) microseconds; bucket 0 holds 0–1us.
        (64 - micros.leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Records one latency observation.
    #[inline]
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.record_micros(micros);
    }

    /// Records a latency expressed in microseconds.
    #[inline]
    pub fn record_micros(&self, micros: u64) {
        self.buckets[Self::bucket_for(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 if empty).
    pub fn mean_micros(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum_micros.load(Ordering::Relaxed) as f64 / count as f64
        }
    }

    /// Maximum observed latency in microseconds.
    pub fn max_micros(&self) -> u64 {
        self.max_micros.load(Ordering::Relaxed)
    }

    /// Approximate percentile (`q` in `[0,1]`) in microseconds.
    pub fn percentile_micros(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let in_bucket = bucket.load(Ordering::Relaxed);
            if in_bucket == 0 {
                continue;
            }
            if seen + in_bucket >= target {
                let lo = if i == 0 { 0u64 } else { 1u64 << (i - 1) };
                let hi = 1u64 << i;
                let within = (target - seen) as f64 / in_bucket as f64;
                return lo + ((hi - lo) as f64 * within) as u64;
            }
            seen += in_bucket;
        }
        self.max_micros()
    }

    /// Arbitrary percentile in milliseconds.
    pub fn percentile_millis(&self, q: f64) -> f64 {
        self.percentile_micros(q) as f64 / 1_000.0
    }

    /// Median latency in milliseconds.
    pub fn p50_millis(&self) -> f64 {
        self.percentile_millis(0.50)
    }

    /// 95th percentile latency in milliseconds — the unit the paper plots.
    pub fn p95_millis(&self) -> f64 {
        self.percentile_millis(0.95)
    }

    /// 99th percentile latency in milliseconds (tail the workload grid records).
    pub fn p99_millis(&self) -> f64 {
        self.percentile_millis(0.99)
    }

    /// Resets all buckets.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_micros.store(0, Ordering::Relaxed);
        self.max_micros.store(0, Ordering::Relaxed);
    }

    /// Merges another histogram into this one (used when each worker keeps a
    /// thread-local histogram).
    pub fn merge(&self, other: &LatencyHistogram) {
        for (i, b) in other.buckets.iter().enumerate() {
            self.buckets[i].fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum_micros
            .fetch_add(other.sum_micros.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_micros
            .fetch_max(other.max_micros(), Ordering::Relaxed);
    }
}

/// Where the lock system's *per-cycle* hot-path counts go.
///
/// The uncontended acquire/release cycle used to pay 2+ relaxed atomic RMWs
/// (and 4 more per grant-scan histogram record) straight into
/// [`EngineMetrics`].  The hot paths now write through this trait instead:
/// the engine hands them the transaction's [`MetricsScratch`] (plain `Cell`
/// arithmetic, flushed to the shared counters once per statement/commit),
/// while stand-alone callers keep passing [`EngineMetrics`] itself, which
/// implements the trait by doing the atomic increment immediately.
///
/// Only the counters that fire on *every* cycle are routed this way; the
/// wait/deadlock/latency paths are already rare enough that they record into
/// [`EngineMetrics`] directly.
pub trait MetricsSink {
    /// One lock object was created (Figure 6d numerator).
    fn on_lock_created(&self);
    /// `n` record locks were released.
    fn on_locks_released(&self, n: u64);
    /// One release-path shard mutex acquisition (lock table or registry).
    fn on_release_shard_lock(&self);
    /// One grant scan examined `len` requests.
    fn on_grant_scan(&self, len: u64);
}

impl MetricsSink for EngineMetrics {
    #[inline]
    fn on_lock_created(&self) {
        self.locks_created.inc();
    }
    #[inline]
    fn on_locks_released(&self, n: u64) {
        self.locks_released.add(n);
    }
    #[inline]
    fn on_release_shard_lock(&self) {
        self.release_shard_locks.inc();
    }
    #[inline]
    fn on_grant_scan(&self, len: u64) {
        self.grant_scan_len.record_micros(len);
    }
}

/// A single-owner (per-transaction or per-bench-thread) scratch pad for the
/// hot-path lock counters.
///
/// All fields are `Cell`s: recording is plain integer arithmetic with no
/// atomics and no sharing.  [`MetricsScratch::flush`] drains the accumulated
/// counts into an [`EngineMetrics`] with one batch of atomic operations —
/// the owner calls it at a statement boundary or commit (the engine's
/// `TxnMetrics` wrapper additionally flushes on drop so abort paths cannot
/// lose counts).  Grant-scan lengths keep full histogram fidelity: the
/// scratch accumulates per-bucket counts and the flush merges them bucket by
/// bucket.
#[derive(Debug)]
pub struct MetricsScratch {
    locks_created: Cell<u64>,
    locks_released: Cell<u64>,
    release_shard_locks: Cell<u64>,
    grant_scan_buckets: [Cell<u64>; BUCKETS],
    grant_scan_count: Cell<u64>,
    grant_scan_sum: Cell<u64>,
    grant_scan_max: Cell<u64>,
}

impl Default for MetricsScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsScratch {
    /// Creates an empty scratch pad.
    pub fn new() -> Self {
        Self {
            locks_created: Cell::new(0),
            locks_released: Cell::new(0),
            release_shard_locks: Cell::new(0),
            grant_scan_buckets: std::array::from_fn(|_| Cell::new(0)),
            grant_scan_count: Cell::new(0),
            grant_scan_sum: Cell::new(0),
            grant_scan_max: Cell::new(0),
        }
    }

    /// True when nothing has been recorded since the last flush.
    pub fn is_empty(&self) -> bool {
        self.locks_created.get() == 0
            && self.locks_released.get() == 0
            && self.release_shard_locks.get() == 0
            && self.grant_scan_count.get() == 0
    }

    /// Locks created recorded since the last flush (test observability).
    pub fn pending_locks_created(&self) -> u64 {
        self.locks_created.get()
    }

    /// Locks released recorded since the last flush (test observability).
    pub fn pending_locks_released(&self) -> u64 {
        self.locks_released.get()
    }

    /// Release-path shard acquisitions since the last flush.
    pub fn pending_release_shard_locks(&self) -> u64 {
        self.release_shard_locks.get()
    }

    /// Drains every accumulated count into `metrics`, leaving the scratch
    /// empty.  One atomic operation per non-zero counter/bucket.
    pub fn flush(&self, metrics: &EngineMetrics) {
        let created = self.locks_created.take();
        if created > 0 {
            metrics.locks_created.add(created);
        }
        let released = self.locks_released.take();
        if released > 0 {
            metrics.locks_released.add(released);
        }
        let shard = self.release_shard_locks.take();
        if shard > 0 {
            metrics.release_shard_locks.add(shard);
        }
        if self.grant_scan_count.take() > 0 {
            for (i, bucket) in self.grant_scan_buckets.iter().enumerate() {
                let n = bucket.take();
                if n > 0 {
                    metrics.grant_scan_len.buckets[i].fetch_add(n, Ordering::Relaxed);
                    metrics.grant_scan_len.count.fetch_add(n, Ordering::Relaxed);
                }
            }
            metrics
                .grant_scan_len
                .sum_micros
                .fetch_add(self.grant_scan_sum.take(), Ordering::Relaxed);
            metrics
                .grant_scan_len
                .max_micros
                .fetch_max(self.grant_scan_max.take(), Ordering::Relaxed);
        }
    }
}

impl MetricsSink for MetricsScratch {
    #[inline]
    fn on_lock_created(&self) {
        self.locks_created.set(self.locks_created.get() + 1);
    }
    #[inline]
    fn on_locks_released(&self, n: u64) {
        self.locks_released.set(self.locks_released.get() + n);
    }
    #[inline]
    fn on_release_shard_lock(&self) {
        self.release_shard_locks
            .set(self.release_shard_locks.get() + 1);
    }
    #[inline]
    fn on_grant_scan(&self, len: u64) {
        let bucket = &self.grant_scan_buckets[LatencyHistogram::bucket_for(len)];
        bucket.set(bucket.get() + 1);
        self.grant_scan_count.set(self.grant_scan_count.get() + 1);
        self.grant_scan_sum.set(self.grant_scan_sum.get() + len);
        self.grant_scan_max.set(self.grant_scan_max.get().max(len));
    }
}

/// Labelled abort counters, keyed by [`crate::error::Error::label`].
#[derive(Debug, Default)]
pub struct AbortCounters {
    inner: Mutex<Vec<(&'static str, u64)>>,
}

impl AbortCounters {
    /// Records one abort with the given label.
    pub fn record(&self, label: &'static str) {
        let mut inner = self.inner.lock();
        if let Some(entry) = inner.iter_mut().find(|(l, _)| *l == label) {
            entry.1 += 1;
        } else {
            inner.push((label, 1));
        }
    }

    /// Snapshot of `(label, count)` pairs.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        self.inner.lock().clone()
    }

    /// Total aborts across all labels.
    pub fn total(&self) -> u64 {
        self.inner.lock().iter().map(|(_, c)| *c).sum()
    }

    /// Count for a specific label.
    pub fn get(&self, label: &str) -> u64 {
        self.inner
            .lock()
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// Clears all counters.
    pub fn reset(&self) {
        self.inner.lock().clear();
    }
}

/// Structured abort-reason breakdown for one measurement window.
///
/// The raw [`AbortCounters`] list is keyed by `Error::label` strings; this
/// struct folds those labels into the classes the paper's contention analysis
/// distinguishes (deadlock vs wait-timeout vs Aria conflict vs cascade), plus
/// the driver-side retry count, so every recorded benchmark cell states *why*
/// its aborted share aborted without string matching at read time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AbortBreakdown {
    /// Wait-for-graph deadlock victims (`deadlock`).
    pub deadlocks: u64,
    /// Lock-wait timeouts (`lock_wait_timeout`), the §3.2 hot-row mechanism.
    pub wait_timeouts: u64,
    /// Proactive hot/non-hot deadlock rollbacks (`hotspot_deadlock_prevented`).
    pub hotspot_prevented: u64,
    /// Group-locking cascades (`cascading_abort`).
    pub cascading: u64,
    /// Bamboo dirty-read cascades (`dirty_read_aborted`).
    pub dirty_reads: u64,
    /// Aria batch-validation conflicts (`aria_validation_failed`).
    pub aria_conflicts: u64,
    /// Explicit / injected rollbacks (`explicit_rollback`).
    pub explicit_rollbacks: u64,
    /// Front-door admission sheds (`overloaded`): the transaction was
    /// rejected by a full hot-key admission queue before reaching the lock
    /// table.
    #[serde(default)]
    pub overloaded: u64,
    /// Aborts with any other label (integrity errors surfaced mid-run, ...).
    pub other: u64,
    /// Driver-side retries after a retryable abort — the front-door
    /// admission-retry traffic a scheduling layer would absorb.  Counted by
    /// the workload drivers, not the engine, so it is *not* a subset of the
    /// abort totals above: one transaction can retry many times.
    pub admission_retries: u64,
}

impl AbortBreakdown {
    /// Folds `(label, count)` pairs into the structured classes.
    pub fn from_causes(causes: &[(String, u64)], admission_retries: u64) -> Self {
        let mut breakdown = AbortBreakdown {
            admission_retries,
            ..Default::default()
        };
        for (label, count) in causes {
            match label.as_str() {
                "deadlock" => breakdown.deadlocks += count,
                "lock_wait_timeout" => breakdown.wait_timeouts += count,
                "hotspot_deadlock_prevented" => breakdown.hotspot_prevented += count,
                "cascading_abort" => breakdown.cascading += count,
                "dirty_read_aborted" => breakdown.dirty_reads += count,
                "aria_validation_failed" => breakdown.aria_conflicts += count,
                "explicit_rollback" => breakdown.explicit_rollbacks += count,
                "overloaded" => breakdown.overloaded += count,
                _ => breakdown.other += count,
            }
        }
        breakdown
    }

    /// Total engine-side aborts across all classes (excludes driver retries).
    pub fn total(&self) -> u64 {
        self.deadlocks
            + self.wait_timeouts
            + self.hotspot_prevented
            + self.cascading
            + self.dirty_reads
            + self.aria_conflicts
            + self.explicit_rollbacks
            + self.overloaded
            + self.other
    }
}

/// All metrics the engine maintains while running a workload.
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// Committed transactions.
    pub committed: Counter,
    /// Aborted transactions (all causes).
    pub aborted: Counter,
    /// Aborts that were part of a cascade (Figure 10 left).
    pub cascading_aborts: Counter,
    /// Per-cause abort counters.
    pub abort_causes: AbortCounters,
    /// End-to-end transaction latency.
    pub txn_latency: LatencyHistogram,
    /// Time spent waiting for locks (the inner bar of Figure 6c).
    pub lock_wait_latency: LatencyHistogram,
    /// Number of `lock_t` objects created (Figure 6d numerator).
    pub locks_created: Counter,
    /// Record locks released (individually or via release-all), making
    /// bookkeeping churn observable next to `locks_created`.
    pub locks_released: Counter,
    /// Live `(txn, record)` entries across the sharded lock registries —
    /// the decentralized successor of the global `txn_locks` map.  Sampled
    /// from the registries' per-shard counts at snapshot time (never updated
    /// on the lock hot path).  A non-zero value with no active transactions
    /// indicates leaked bookkeeping.
    pub lock_registry_entries: Gauge,
    /// Number of lock requests that had to wait.
    pub lock_waits: Counter,
    /// Driver-side retries after a retryable abort: each time a closed-loop
    /// or fixed-TPS worker re-submits a transaction that aborted on
    /// contention.  This is the retry-storm traffic arriving at the front
    /// door — the signal the ROADMAP's admission-control layer will consume.
    pub admission_retries: Counter,
    /// Transactions that waited in a hot-key admission queue before being
    /// admitted (the front-door serialization the admission layer applies to
    /// declared-hot-key transactions).
    pub admission_queued: Counter,
    /// Transactions shed by admission control: rejected with
    /// `Error::Overloaded` because a hot-key queue was at capacity or inside
    /// its post-shed hysteresis window.
    pub admission_shed: Counter,
    /// Driver-side retry loops that gave up because their retry budget was
    /// exhausted (the transaction is reported failed instead of retried).
    pub retry_budget_exhausted: Counter,
    /// Backoff sleeps taken by the drivers' budgeted retry loops (one per
    /// retry that waited before re-submitting).
    pub backoff_waits: Counter,
    /// Live waiters across all hot-key admission queues.  Sampled by the
    /// admission controller on enqueue/dequeue; like the other gauges it is
    /// *not* reset between windows — a non-zero value after a burst drains
    /// means a wedged queue.
    pub admission_queue_depth: Gauge,
    /// Shard-mutex acquisitions on the lock **release** paths: one per page
    /// (or row-shard) group drained by the lock tables and one per registry
    /// batch (`forget_records` / `take_all`).  The denominator for release
    /// batching: batching early releases to statement boundaries amortizes
    /// these, so takes-per-released-lock should drop as batch size grows.
    pub release_shard_locks: Counter,
    /// Group-table entry-map shard acquisitions on the leader's **commit
    /// handover** path (prepare + handover).  The denominator for handover
    /// batching: collecting a leader's hot records and fetching their group
    /// entries shard by shard amortizes these, so takes-per-hot-record should
    /// drop below 1.0 as the records-per-commit count grows (vs 2.0 for the
    /// per-record prepare+handover sequence).
    pub handover_shard_locks: Counter,
    /// Length of each grant scan (requests examined per scan), recorded via
    /// `record_micros(len)` — the log2 buckets hold request counts here, not
    /// times.  With per-record wait queues this must stay bounded by the
    /// queue on *one* record; growth with page population indicates the
    /// O(page) scan regression the queue layout exists to prevent.
    pub grant_scan_len: LatencyHistogram,
    /// Number of queries (statements) executed (Figure 6d denominator).
    pub queries: Counter,
    /// Number of deadlock-detector runs.
    pub deadlock_checks: Counter,
    /// Number of transactions that entered a hotspot group (leader or follower).
    pub hotspot_group_entries: Counter,
    /// Number of groups formed by group locking.
    pub groups_formed: Counter,
    /// Nanoseconds spent doing useful work (executing statements / commit logic).
    pub busy_nanos: Counter,
    /// Nanoseconds spent blocked (waiting for locks, queues or group wake-ups).
    pub blocked_nanos: Counter,
    /// Group-commit batches flushed by the commit pipeline.
    pub commit_batches: Counter,
    /// Transactions that went through the binlog sync stage.
    pub commit_synced: Counter,
    /// Injected crash points that fired (fault-injection runs only).
    pub crash_injected: Counter,
    /// Fsync attempts retried after a transient injected error.
    pub fsync_retries: Counter,
    /// Redo records replayed by `Database::restart_from_crash`.
    pub recovery_replayed: Counter,
    /// Redo records dropped by checkpoint-time log truncation.
    pub wal_truncated_records: Counter,
    /// Semi-sync ack waits that hit the `rpl_semi_sync`-style timeout and
    /// degraded the pipeline to asynchronous shipping.
    pub semi_sync_timeouts: Counter,
    /// Commits acknowledged to the client while the pipeline was degraded
    /// (shipped asynchronously, no replica ack backing them).
    pub degraded_commits: Counter,
    /// Degraded→semi-sync transitions: the replicas caught back up within
    /// the configured re-sync lag and ack waiting resumed.
    pub semi_sync_resyncs: Counter,
    /// Batches shed because the bounded asynchronous shipping queue was
    /// full (the replicas recover the gap from the retained binlog buffer).
    pub ship_queue_full: Counter,
    /// Shipping attempts retried after a transient injected ship error.
    pub ship_retries: Counter,
    /// Replica lag in binlog batches: retained binlog length minus the
    /// slowest replica's acknowledged position.  A live gauge sampled on
    /// the shipping path, not reset between windows.
    pub replica_lag: Gauge,
}

impl EngineMetrics {
    /// Creates a fresh metrics registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// CPU-utilisation proxy: fraction of worker time spent doing useful work
    /// rather than being blocked (see the substitution table in `DESIGN.md`).
    pub fn utilization(&self) -> f64 {
        let busy = self.busy_nanos.get() as f64;
        let blocked = self.blocked_nanos.get() as f64;
        if busy + blocked == 0.0 {
            0.0
        } else {
            busy / (busy + blocked)
        }
    }

    /// Locks created per executed query (Figure 6d).
    pub fn locks_per_query(&self) -> f64 {
        let q = self.queries.get();
        if q == 0 {
            0.0
        } else {
            self.locks_created.get() as f64 / q as f64
        }
    }

    /// Abort ratio: aborts / (aborts + commits).
    pub fn abort_ratio(&self) -> f64 {
        let a = self.aborted.get() as f64;
        let c = self.committed.get() as f64;
        if a + c == 0.0 {
            0.0
        } else {
            a / (a + c)
        }
    }

    /// Cascade abort ratio: cascading aborts / (aborts + commits).
    pub fn cascade_abort_ratio(&self) -> f64 {
        let a = self.aborted.get() as f64;
        let c = self.committed.get() as f64;
        if a + c == 0.0 {
            0.0
        } else {
            self.cascading_aborts.get() as f64 / (a + c)
        }
    }

    /// Resets every metric (used between benchmark measurement windows).
    pub fn reset(&self) {
        self.committed.take();
        self.aborted.take();
        self.cascading_aborts.take();
        self.abort_causes.reset();
        self.txn_latency.reset();
        self.lock_wait_latency.reset();
        self.locks_created.take();
        self.locks_released.take();
        // lock_registry_entries is deliberately not reset: it is a live gauge,
        // and in-flight transactions still own their registry entries.
        self.lock_waits.take();
        self.admission_retries.take();
        self.admission_queued.take();
        self.admission_shed.take();
        self.retry_budget_exhausted.take();
        self.backoff_waits.take();
        // admission_queue_depth is deliberately not reset: it is a live gauge
        // of waiters currently parked in the hot-key queues.
        self.release_shard_locks.take();
        self.handover_shard_locks.take();
        self.grant_scan_len.reset();
        self.queries.take();
        self.deadlock_checks.take();
        self.hotspot_group_entries.take();
        self.groups_formed.take();
        self.busy_nanos.take();
        self.blocked_nanos.take();
        self.commit_batches.take();
        self.commit_synced.take();
        self.crash_injected.take();
        self.fsync_retries.take();
        self.recovery_replayed.take();
        self.wal_truncated_records.take();
        self.semi_sync_timeouts.take();
        self.degraded_commits.take();
        self.semi_sync_resyncs.take();
        self.ship_queue_full.take();
        self.ship_retries.take();
        // replica_lag is deliberately not reset: like lock_registry_entries
        // it mirrors live state (how far the slowest replica trails).
    }

    /// Structured abort-reason breakdown of the current window.
    pub fn abort_breakdown(&self) -> AbortBreakdown {
        let causes: Vec<(String, u64)> = self
            .abort_causes
            .snapshot()
            .into_iter()
            .map(|(l, c)| (l.to_owned(), c))
            .collect();
        AbortBreakdown::from_causes(&causes, self.admission_retries.get())
    }

    /// Takes a serialisable snapshot, computing TPS over `elapsed`.
    pub fn snapshot(&self, elapsed: Duration) -> MetricsSnapshot {
        let secs = elapsed.as_secs_f64().max(1e-9);
        MetricsSnapshot {
            elapsed_secs: elapsed.as_secs_f64(),
            committed: self.committed.get(),
            aborted: self.aborted.get(),
            cascading_aborts: self.cascading_aborts.get(),
            tps: self.committed.get() as f64 / secs,
            abort_ratio: self.abort_ratio(),
            cascade_abort_ratio: self.cascade_abort_ratio(),
            p50_latency_ms: self.txn_latency.p50_millis(),
            p99_latency_ms: self.txn_latency.p99_millis(),
            p95_latency_ms: self.txn_latency.p95_millis(),
            mean_latency_ms: self.txn_latency.mean_micros() / 1_000.0,
            p95_lock_wait_ms: self.lock_wait_latency.p95_millis(),
            mean_lock_wait_ms: self.lock_wait_latency.mean_micros() / 1_000.0,
            locks_created: self.locks_created.get(),
            locks_released: self.locks_released.get(),
            lock_registry_entries: self.lock_registry_entries.get(),
            locks_per_query: self.locks_per_query(),
            lock_waits: self.lock_waits.get(),
            release_shard_locks: self.release_shard_locks.get(),
            handover_shard_locks: self.handover_shard_locks.get(),
            mean_grant_scan_len: self.grant_scan_len.mean_micros(),
            max_grant_scan_len: self.grant_scan_len.max_micros(),
            deadlock_checks: self.deadlock_checks.get(),
            hotspot_group_entries: self.hotspot_group_entries.get(),
            groups_formed: self.groups_formed.get(),
            utilization: self.utilization(),
            commit_batches: self.commit_batches.get(),
            crash_injected: self.crash_injected.get(),
            fsync_retries: self.fsync_retries.get(),
            recovery_replayed: self.recovery_replayed.get(),
            wal_truncated_records: self.wal_truncated_records.get(),
            semi_sync_timeouts: self.semi_sync_timeouts.get(),
            degraded_commits: self.degraded_commits.get(),
            semi_sync_resyncs: self.semi_sync_resyncs.get(),
            ship_queue_full: self.ship_queue_full.get(),
            ship_retries: self.ship_retries.get(),
            replica_lag: self.replica_lag.get(),
            admission_retries: self.admission_retries.get(),
            admission_queued: self.admission_queued.get(),
            admission_shed: self.admission_shed.get(),
            retry_budget_exhausted: self.retry_budget_exhausted.get(),
            backoff_waits: self.backoff_waits.get(),
            admission_queue_depth: self.admission_queue_depth.get(),
            abort_breakdown: self.abort_breakdown(),
            abort_causes: self
                .abort_causes
                .snapshot()
                .into_iter()
                .map(|(l, c)| (l.to_owned(), c))
                .collect(),
        }
    }
}

/// A point-in-time, serialisable view of [`EngineMetrics`].
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct MetricsSnapshot {
    /// Measurement window length in seconds.
    pub elapsed_secs: f64,
    /// Committed transactions in the window.
    pub committed: u64,
    /// Aborted transactions in the window.
    pub aborted: u64,
    /// Cascading aborts in the window.
    pub cascading_aborts: u64,
    /// Transactions per second.
    pub tps: f64,
    /// aborted / (aborted + committed).
    pub abort_ratio: f64,
    /// cascading aborts / (aborted + committed).
    pub cascade_abort_ratio: f64,
    /// Median end-to-end latency (ms).
    pub p50_latency_ms: f64,
    /// 99th percentile end-to-end latency (ms).
    pub p99_latency_ms: f64,
    /// 95th percentile end-to-end latency (ms).
    pub p95_latency_ms: f64,
    /// Mean end-to-end latency (ms).
    pub mean_latency_ms: f64,
    /// 95th percentile lock-wait time (ms).
    pub p95_lock_wait_ms: f64,
    /// Mean lock-wait time (ms).
    pub mean_lock_wait_ms: f64,
    /// Total lock objects created.
    pub locks_created: u64,
    /// Record locks released.
    pub locks_released: u64,
    /// Live lock-registry entries at snapshot time.
    pub lock_registry_entries: u64,
    /// Lock objects created per query.
    pub locks_per_query: f64,
    /// Lock requests that had to wait.
    pub lock_waits: u64,
    /// Shard-mutex acquisitions on the release paths (lock tables + registry).
    pub release_shard_locks: u64,
    /// Group-table shard acquisitions on the leader commit-handover path.
    pub handover_shard_locks: u64,
    /// Mean grant-scan length (requests examined per scan).
    pub mean_grant_scan_len: f64,
    /// Longest grant scan observed (requests examined).
    pub max_grant_scan_len: u64,
    /// Deadlock detector invocations.
    pub deadlock_checks: u64,
    /// Transactions that joined hotspot groups.
    pub hotspot_group_entries: u64,
    /// Hotspot groups formed.
    pub groups_formed: u64,
    /// Useful-work ratio (CPU utilisation proxy).
    pub utilization: f64,
    /// Group-commit batches.
    pub commit_batches: u64,
    /// Injected crash points that fired.
    pub crash_injected: u64,
    /// Fsync attempts retried after transient injected errors.
    pub fsync_retries: u64,
    /// Redo records replayed during crash restart.
    pub recovery_replayed: u64,
    /// Redo records dropped by checkpoint truncation.
    pub wal_truncated_records: u64,
    /// Semi-sync ack waits that timed out and degraded the pipeline.
    pub semi_sync_timeouts: u64,
    /// Commits acknowledged while the pipeline was degraded to async.
    pub degraded_commits: u64,
    /// Degraded→semi-sync re-sync transitions.
    pub semi_sync_resyncs: u64,
    /// Batches shed by the bounded asynchronous shipping queue.
    pub ship_queue_full: u64,
    /// Shipping attempts retried after transient ship errors.
    pub ship_retries: u64,
    /// Replica lag in binlog batches at snapshot time.
    pub replica_lag: u64,
    /// Driver-side retries after retryable aborts.
    pub admission_retries: u64,
    /// Transactions that waited in a hot-key admission queue.
    #[serde(default)]
    pub admission_queued: u64,
    /// Transactions shed by admission control (`Error::Overloaded`).
    #[serde(default)]
    pub admission_shed: u64,
    /// Retry loops that exhausted their budget and gave up.
    #[serde(default)]
    pub retry_budget_exhausted: u64,
    /// Backoff sleeps taken by the budgeted retry loops.
    #[serde(default)]
    pub backoff_waits: u64,
    /// Live admission-queue waiters at snapshot time.
    #[serde(default)]
    pub admission_queue_depth: u64,
    /// Structured abort-reason breakdown (see [`AbortBreakdown`]).
    pub abort_breakdown: AbortBreakdown,
    /// Per-cause abort counts.
    pub abort_causes: Vec<(String, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basic_operations() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_percentiles_are_monotonic() {
        let h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record_micros(i);
        }
        let p50 = h.percentile_micros(0.5);
        let p95 = h.percentile_micros(0.95);
        let p99 = h.percentile_micros(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 <= h.max_micros().next_power_of_two());
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn histogram_percentile_is_roughly_accurate() {
        let h = LatencyHistogram::new();
        // 95% of observations at ~100us, 5% at ~10000us.
        for _ in 0..9_500 {
            h.record_micros(100);
        }
        for _ in 0..500 {
            h.record_micros(10_000);
        }
        let p50 = h.percentile_micros(0.50);
        let p99 = h.percentile_micros(0.99);
        assert!((64..=256).contains(&p50), "p50={p50}");
        assert!(p99 >= 8_192, "p99={p99}");
    }

    #[test]
    fn histogram_merge_accumulates() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record_micros(10);
        b.record_micros(1_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.max_micros() >= 1_000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile_micros(0.95), 0);
        assert_eq!(h.mean_micros(), 0.0);
    }

    #[test]
    fn abort_counters_accumulate_by_label() {
        let a = AbortCounters::default();
        a.record("deadlock");
        a.record("deadlock");
        a.record("lock_wait_timeout");
        assert_eq!(a.get("deadlock"), 2);
        assert_eq!(a.get("lock_wait_timeout"), 1);
        assert_eq!(a.get("other"), 0);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn engine_metrics_ratios() {
        let m = EngineMetrics::new();
        m.committed.add(90);
        m.aborted.add(10);
        m.cascading_aborts.add(5);
        m.queries.add(200);
        m.locks_created.add(100);
        m.busy_nanos.add(750);
        m.blocked_nanos.add(250);
        assert!((m.abort_ratio() - 0.1).abs() < 1e-9);
        assert!((m.cascade_abort_ratio() - 0.05).abs() < 1e-9);
        assert!((m.locks_per_query() - 0.5).abs() < 1e-9);
        assert!((m.utilization() - 0.75).abs() < 1e-9);
        let snap = m.snapshot(Duration::from_secs(2));
        assert!((snap.tps - 45.0).abs() < 1e-9);
        m.reset();
        assert_eq!(m.committed.get(), 0);
        assert_eq!(m.abort_ratio(), 0.0);
    }

    #[test]
    fn scratch_accumulates_locally_and_flushes_once() {
        let m = EngineMetrics::new();
        let scratch = MetricsScratch::new();
        scratch.on_lock_created();
        scratch.on_lock_created();
        scratch.on_locks_released(3);
        scratch.on_release_shard_lock();
        scratch.on_grant_scan(1);
        scratch.on_grant_scan(5);
        // Nothing reaches the shared counters until the flush.
        assert_eq!(m.locks_created.get(), 0);
        assert_eq!(m.grant_scan_len.count(), 0);
        assert!(!scratch.is_empty());
        assert_eq!(scratch.pending_locks_created(), 2);
        scratch.flush(&m);
        assert!(scratch.is_empty());
        assert_eq!(m.locks_created.get(), 2);
        assert_eq!(m.locks_released.get(), 3);
        assert_eq!(m.release_shard_locks.get(), 1);
        assert_eq!(m.grant_scan_len.count(), 2);
        assert_eq!(m.grant_scan_len.max_micros(), 5);
        assert!((m.grant_scan_len.mean_micros() - 3.0).abs() < 1e-9);
        // A second flush is a no-op.
        scratch.flush(&m);
        assert_eq!(m.grant_scan_len.count(), 2);
    }

    #[test]
    fn engine_metrics_is_a_passthrough_sink() {
        let m = EngineMetrics::new();
        MetricsSink::on_lock_created(&m);
        MetricsSink::on_locks_released(&m, 2);
        MetricsSink::on_release_shard_lock(&m);
        MetricsSink::on_grant_scan(&m, 7);
        assert_eq!(m.locks_created.get(), 1);
        assert_eq!(m.locks_released.get(), 2);
        assert_eq!(m.release_shard_locks.get(), 1);
        assert_eq!(m.grant_scan_len.count(), 1);
        assert_eq!(m.grant_scan_len.max_micros(), 7);
    }

    #[test]
    fn abort_breakdown_folds_labels_into_classes() {
        let m = EngineMetrics::new();
        m.abort_causes.record("deadlock");
        m.abort_causes.record("deadlock");
        m.abort_causes.record("lock_wait_timeout");
        m.abort_causes.record("aria_validation_failed");
        m.abort_causes.record("cascading_abort");
        m.abort_causes.record("dirty_read_aborted");
        m.abort_causes.record("hotspot_deadlock_prevented");
        m.abort_causes.record("explicit_rollback");
        m.abort_causes.record("duplicate_key");
        m.abort_causes.record("overloaded");
        m.admission_retries.add(17);
        let b = m.abort_breakdown();
        assert_eq!(b.deadlocks, 2);
        assert_eq!(b.wait_timeouts, 1);
        assert_eq!(b.aria_conflicts, 1);
        assert_eq!(b.cascading, 1);
        assert_eq!(b.dirty_reads, 1);
        assert_eq!(b.hotspot_prevented, 1);
        assert_eq!(b.explicit_rollbacks, 1);
        assert_eq!(b.overloaded, 1);
        assert_eq!(b.other, 1);
        assert_eq!(b.admission_retries, 17);
        assert_eq!(b.total(), 10, "driver retries are not engine aborts");
        // The breakdown rides along in the serialisable snapshot.
        let snap = m.snapshot(Duration::from_secs(1));
        assert_eq!(snap.abort_breakdown, b);
        assert_eq!(snap.admission_retries, 17);
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.abort_breakdown.deadlocks, 2);
        // Resetting clears the retry counter with the rest of the window.
        m.reset();
        assert_eq!(m.abort_breakdown().total(), 0);
        assert_eq!(m.admission_retries.get(), 0);
    }

    #[test]
    fn admission_counters_reset_but_depth_gauge_persists() {
        let m = EngineMetrics::new();
        m.admission_queued.inc();
        m.admission_shed.add(2);
        m.retry_budget_exhausted.inc();
        m.backoff_waits.add(3);
        m.admission_queue_depth.set(4);
        let snap = m.snapshot(Duration::from_secs(1));
        assert_eq!(snap.admission_queued, 1);
        assert_eq!(snap.admission_shed, 2);
        assert_eq!(snap.retry_budget_exhausted, 1);
        assert_eq!(snap.backoff_waits, 3);
        assert_eq!(snap.admission_queue_depth, 4);
        m.reset();
        assert_eq!(m.admission_queued.get(), 0);
        assert_eq!(m.admission_shed.get(), 0);
        assert_eq!(m.retry_budget_exhausted.get(), 0);
        assert_eq!(m.backoff_waits.get(), 0);
        assert_eq!(
            m.admission_queue_depth.get(),
            4,
            "live gauge survives the window reset"
        );
    }

    #[test]
    fn snapshot_percentiles_are_ordered() {
        let m = EngineMetrics::new();
        for i in 1..=1_000u64 {
            m.txn_latency.record_micros(i * 100);
        }
        let snap = m.snapshot(Duration::from_secs(1));
        assert!(snap.p50_latency_ms > 0.0);
        assert!(snap.p50_latency_ms <= snap.p95_latency_ms);
        assert!(snap.p95_latency_ms <= snap.p99_latency_ms);
    }

    #[test]
    fn snapshot_serialises_to_json() {
        let m = EngineMetrics::new();
        m.committed.add(1);
        let snap = m.snapshot(Duration::from_secs(1));
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"tps\""));
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.committed, 1);
    }
}
