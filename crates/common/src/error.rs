//! Error types shared across the engine.
//!
//! The variants mirror the abort reasons the paper distinguishes:
//! lock-wait timeouts (§3.2 uses timeouts instead of deadlock detection on hot
//! rows), detected deadlocks (vanilla 2PL), the *prevented* hot/non-hot
//! deadlock rollback (§4.5), cascading aborts caused by group locking (§4.4),
//! and Aria's batch-validation aborts.

use crate::ids::{RecordId, TableId, TxnId};
use std::fmt;

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Engine-wide error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A lock wait exceeded the configured timeout and the transaction must
    /// abort (the paper's preferred mechanism for hot rows, §3.2 / §4.5).
    LockWaitTimeout {
        /// Transaction that timed out.
        txn: TxnId,
        /// Record it was waiting for.
        record: RecordId,
    },
    /// The wait-for-graph deadlock detector chose this transaction as victim.
    Deadlock {
        /// Victim transaction.
        txn: TxnId,
    },
    /// Deadlock *prevention* on hotspots (§4.5): the blocked transaction and
    /// its blocker both updated the same hot row, so we proactively roll back
    /// rather than wait for a timeout.
    HotspotDeadlockPrevented {
        /// Transaction that is rolled back.
        txn: TxnId,
        /// The hot row both transactions updated.
        hot_record: RecordId,
        /// The transaction currently blocking us.
        blocker: TxnId,
    },
    /// The transaction was aborted because a transaction it depends on (an
    /// earlier uncommitted hotspot update it read from) rolled back — a
    /// cascading abort (§4.4).
    CascadingAbort {
        /// Aborted transaction.
        txn: TxnId,
        /// The transaction whose rollback triggered the cascade.
        cause: TxnId,
    },
    /// Aria batch validation failed (RAW/WAW conflict inside the batch).
    AriaValidationFailed {
        /// Aborted transaction.
        txn: TxnId,
    },
    /// Bamboo-style dirty-read cascade: a lock the transaction inherited early
    /// was invalidated by the holder's abort.
    DirtyReadAborted {
        /// Aborted transaction.
        txn: TxnId,
        /// The aborted holder it read from.
        cause: TxnId,
    },
    /// The user requested an explicit rollback (injected aborts in Figure 10).
    ExplicitRollback {
        /// Rolled-back transaction.
        txn: TxnId,
    },
    /// Referenced table does not exist.
    UnknownTable {
        /// The missing table.
        table: TableId,
    },
    /// Referenced row does not exist.
    UnknownRecord {
        /// The missing record.
        record: RecordId,
    },
    /// A primary-key lookup failed.
    KeyNotFound {
        /// Table searched.
        table: TableId,
        /// Key searched for.
        key: i64,
    },
    /// Attempt to insert a duplicate primary key.
    DuplicateKey {
        /// Table the insert targeted.
        table: TableId,
        /// The duplicate key.
        key: i64,
    },
    /// The transaction was already finished (committed or rolled back).
    TransactionClosed {
        /// The finished transaction.
        txn: TxnId,
    },
    /// Admission control shed the transaction at the front door: the
    /// admission queue for a hot record it declared was at capacity (or in
    /// its post-shed hysteresis window), so the transaction was rejected
    /// *before* touching the lock table rather than queueing unboundedly.
    Overloaded {
        /// The hot record whose admission queue rejected the transaction.
        record: RecordId,
    },
    /// The engine is shutting down; new work is rejected.
    ShuttingDown,
    /// An injected crash fired: the simulated process died at the named crash
    /// point.  Everything after this error is the crash image — the only
    /// legitimate continuation is recovery (`Database::restart_from_crash`).
    Crashed {
        /// The crash point that fired (see `txsql_storage::fault::CrashPoint`).
        point: &'static str,
    },
    /// The engine degraded to read-only (a persistent fsync failure): reads
    /// keep working, writes and flushes are rejected.
    ReadOnly {
        /// Why the engine degraded.
        reason: &'static str,
    },
    /// Recovery found a corrupt or truncated log record.
    CorruptLog {
        /// Human-readable description of the corruption.
        reason: String,
    },
    /// Generic invariant violation (programming error surfaced gracefully).
    Internal {
        /// Description of the violated invariant.
        reason: String,
    },
}

impl Error {
    /// Returns true when the error is one of the abort classes after which a
    /// client is expected to retry the whole transaction (every contention-
    /// related abort in the paper's experiments is retried by the driver).
    /// An admission shed ([`Error::Overloaded`]) is retryable too, but only
    /// *after* backing off — the drivers' retry budget and adaptive backoff
    /// enforce that a shed client waits instead of hammering the queue.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::LockWaitTimeout { .. }
                | Error::Deadlock { .. }
                | Error::HotspotDeadlockPrevented { .. }
                | Error::CascadingAbort { .. }
                | Error::AriaValidationFailed { .. }
                | Error::DirtyReadAborted { .. }
                | Error::Overloaded { .. }
        )
    }

    /// Returns true when the abort is part of a cascade (used by Figure 10's
    /// cascade-abort-ratio measurement).
    pub fn is_cascading(&self) -> bool {
        matches!(
            self,
            Error::CascadingAbort { .. } | Error::DirtyReadAborted { .. }
        )
    }

    /// Short machine-readable label used by the metrics registry.
    pub fn label(&self) -> &'static str {
        match self {
            Error::LockWaitTimeout { .. } => "lock_wait_timeout",
            Error::Deadlock { .. } => "deadlock",
            Error::HotspotDeadlockPrevented { .. } => "hotspot_deadlock_prevented",
            Error::CascadingAbort { .. } => "cascading_abort",
            Error::AriaValidationFailed { .. } => "aria_validation_failed",
            Error::DirtyReadAborted { .. } => "dirty_read_aborted",
            Error::ExplicitRollback { .. } => "explicit_rollback",
            Error::UnknownTable { .. } => "unknown_table",
            Error::UnknownRecord { .. } => "unknown_record",
            Error::KeyNotFound { .. } => "key_not_found",
            Error::DuplicateKey { .. } => "duplicate_key",
            Error::TransactionClosed { .. } => "transaction_closed",
            Error::Overloaded { .. } => "overloaded",
            Error::ShuttingDown => "shutting_down",
            Error::Crashed { .. } => "crash_injected",
            Error::ReadOnly { .. } => "read_only",
            Error::CorruptLog { .. } => "corrupt_log",
            Error::Internal { .. } => "internal",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::LockWaitTimeout { txn, record } => {
                write!(f, "{txn} timed out waiting for a lock on {record}")
            }
            Error::Deadlock { txn } => write!(f, "{txn} chosen as deadlock victim"),
            Error::HotspotDeadlockPrevented { txn, hot_record, blocker } => write!(
                f,
                "{txn} rolled back to prevent a deadlock on hot row {hot_record} (blocked by {blocker})"
            ),
            Error::CascadingAbort { txn, cause } => {
                write!(f, "{txn} aborted in cascade caused by rollback of {cause}")
            }
            Error::AriaValidationFailed { txn } => {
                write!(f, "{txn} failed Aria batch validation")
            }
            Error::DirtyReadAborted { txn, cause } => {
                write!(f, "{txn} aborted because it read dirty data from aborted {cause}")
            }
            Error::ExplicitRollback { txn } => write!(f, "{txn} explicitly rolled back"),
            Error::UnknownTable { table } => write!(f, "unknown {table}"),
            Error::UnknownRecord { record } => write!(f, "unknown {record}"),
            Error::KeyNotFound { table, key } => write!(f, "key {key} not found in {table}"),
            Error::DuplicateKey { table, key } => write!(f, "duplicate key {key} in {table}"),
            Error::TransactionClosed { txn } => write!(f, "{txn} is already finished"),
            Error::Overloaded { record } => {
                write!(f, "shed by admission control: queue for hot {record} is full")
            }
            Error::ShuttingDown => write!(f, "engine is shutting down"),
            Error::Crashed { point } => write!(f, "injected crash fired at {point}"),
            Error::ReadOnly { reason } => write!(f, "engine is read-only: {reason}"),
            Error::CorruptLog { reason } => write!(f, "corrupt log: {reason}"),
            Error::Internal { reason } => write!(f, "internal error: {reason}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RecordId;

    #[test]
    fn retryable_classification() {
        let timeout = Error::LockWaitTimeout {
            txn: TxnId(1),
            record: RecordId::new(1, 1, 1),
        };
        let deadlock = Error::Deadlock { txn: TxnId(1) };
        let dup = Error::DuplicateKey {
            table: TableId(1),
            key: 7,
        };
        assert!(timeout.is_retryable());
        assert!(deadlock.is_retryable());
        assert!(!dup.is_retryable());
    }

    #[test]
    fn overloaded_is_retryable_after_backoff() {
        let shed = Error::Overloaded {
            record: RecordId::new(1, 2, 3),
        };
        assert!(shed.is_retryable(), "a shed client retries after backoff");
        assert!(!shed.is_cascading());
        assert_eq!(shed.label(), "overloaded");
        assert!(shed.to_string().contains("admission"));
    }

    #[test]
    fn crash_and_read_only_are_terminal() {
        // Neither error class may be retried by a workload driver: the only
        // legitimate continuation is a restart (crash) or an operator
        // intervention (read-only degradation).
        let crashed = Error::Crashed { point: "mid_flush" };
        let read_only = Error::ReadOnly {
            reason: "fsync failed persistently",
        };
        assert!(!crashed.is_retryable());
        assert!(!read_only.is_retryable());
        assert_eq!(crashed.label(), "crash_injected");
        assert_eq!(read_only.label(), "read_only");
        assert!(crashed.to_string().contains("mid_flush"));
        assert!(read_only.to_string().contains("fsync"));
    }

    #[test]
    fn cascading_classification() {
        let cascade = Error::CascadingAbort {
            txn: TxnId(2),
            cause: TxnId(1),
        };
        let dirty = Error::DirtyReadAborted {
            txn: TxnId(2),
            cause: TxnId(1),
        };
        let timeout = Error::LockWaitTimeout {
            txn: TxnId(1),
            record: RecordId::new(1, 1, 1),
        };
        assert!(cascade.is_cascading());
        assert!(dirty.is_cascading());
        assert!(!timeout.is_cascading());
    }

    #[test]
    fn labels_are_distinct_for_abort_classes() {
        let errors = [
            Error::Deadlock { txn: TxnId(1) },
            Error::LockWaitTimeout {
                txn: TxnId(1),
                record: RecordId::new(0, 0, 0),
            },
            Error::CascadingAbort {
                txn: TxnId(1),
                cause: TxnId(2),
            },
            Error::AriaValidationFailed { txn: TxnId(1) },
        ];
        let labels: std::collections::HashSet<_> = errors.iter().map(|e| e.label()).collect();
        assert_eq!(labels.len(), errors.len());
    }

    #[test]
    fn display_is_human_readable() {
        let err = Error::HotspotDeadlockPrevented {
            txn: TxnId(3),
            hot_record: RecordId::new(1, 2, 3),
            blocker: TxnId(4),
        };
        let s = err.to_string();
        assert!(s.contains("trx#3"));
        assert!(s.contains("rec(1,2,3)"));
        assert!(s.contains("trx#4"));
    }
}
