//! Zipfian key-skew generator.
//!
//! SysBench-style workloads in the paper select rows with a Zipf distribution
//! (default skew factor 0.7; Figure 10 sweeps 0.7–0.99).  We use the classic
//! Gray et al. rejection-free inverse-CDF approximation (the same algorithm
//! YCSB uses), which supports large key spaces without materialising the full
//! probability table.

use crate::rng::XorShiftRng;

/// Zipf-distributed generator over `{0, 1, ..., n-1}` with exponent `theta`.
///
/// `theta = 0` degenerates to the uniform distribution; larger values skew the
/// distribution towards low-numbered items (item 0 is the most popular).
#[derive(Debug, Clone)]
pub struct ZipfGenerator {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl ZipfGenerator {
    /// Creates a generator over `n` items with skew `theta`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is not finite / negative / `>= 1.0 &&
    /// == 1.0` exactly (the harmonic exponent 1.0 is approximated by 0.9999
    /// to avoid the divergent zeta term, matching common benchmark practice).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf over an empty key space");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "invalid zipf theta {theta}"
        );
        let theta = if (theta - 1.0).abs() < 1e-9 {
            0.9999
        } else {
            theta
        };
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
        }
    }

    /// Incremental zeta: `sum_{i=1..n} 1/i^theta`.
    fn zeta(n: u64, theta: f64) -> f64 {
        // For large n this loop is the dominant construction cost; the figure
        // harnesses construct generators once per run so an O(n) setup with a
        // cap on exact summation is acceptable.  Beyond the cap we use the
        // Euler–Maclaurin continuation which is accurate to ~1e-6 for the n
        // used in the paper's workloads.
        const EXACT_CAP: u64 = 10_000_000;
        if n <= EXACT_CAP {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=EXACT_CAP).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            // integral continuation of x^-theta from EXACT_CAP to n
            let a = EXACT_CAP as f64;
            let b = n as f64;
            head + (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
        }
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew factor.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws the next item in `[0, n)`; item 0 is the hottest.
    pub fn next(&self, rng: &mut XorShiftRng) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = ((self.eta * u - self.eta + 1.0).powf(self.alpha) * self.n as f64) as u64;
        v.min(self.n - 1)
    }

    /// The probability mass of the hottest item — used by tests and by the
    /// hotspot-detection heuristics to reason about expected queue lengths.
    pub fn hottest_mass(&self) -> f64 {
        1.0 / self.zetan
    }

    /// Exposes the zeta(2, theta) constant (used in unit tests to validate the
    /// internal constants stay consistent after refactors).
    pub fn zeta2theta(&self) -> f64 {
        self.zeta2theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(theta: f64, n: u64, draws: usize) -> Vec<usize> {
        let gen = ZipfGenerator::new(n, theta);
        let mut rng = XorShiftRng::new(0xC0FFEE);
        let mut counts = vec![0usize; n as usize];
        for _ in 0..draws {
            counts[gen.next(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn all_draws_in_range() {
        let gen = ZipfGenerator::new(1000, 0.9);
        let mut rng = XorShiftRng::new(1);
        for _ in 0..100_000 {
            assert!(gen.next(&mut rng) < 1000);
        }
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let counts = histogram(0.0, 16, 160_000);
        let expected = 10_000.0;
        for (i, c) in counts.iter().enumerate() {
            let dev = (*c as f64 - expected).abs() / expected;
            assert!(dev < 0.15, "bucket {i} deviates {dev}");
        }
    }

    #[test]
    fn higher_theta_concentrates_mass_on_item_zero() {
        let low = histogram(0.7, 1024, 200_000);
        let high = histogram(0.99, 1024, 200_000);
        assert!(
            high[0] > low[0],
            "item 0 should be hotter with theta=0.99 ({}) than 0.7 ({})",
            high[0],
            low[0]
        );
        // With theta=0.99 the top item should receive a visible share.
        assert!(high[0] as f64 / 200_000.0 > 0.05);
    }

    #[test]
    fn hottest_mass_matches_empirical_frequency() {
        let gen = ZipfGenerator::new(256, 0.9);
        let mut rng = XorShiftRng::new(7);
        let draws = 400_000;
        let hits = (0..draws).filter(|_| gen.next(&mut rng) == 0).count();
        let empirical = hits as f64 / draws as f64;
        let predicted = gen.hottest_mass();
        assert!(
            (empirical - predicted).abs() / predicted < 0.15,
            "empirical {empirical} vs predicted {predicted}"
        );
    }

    #[test]
    fn theta_one_is_remapped_not_divergent() {
        let gen = ZipfGenerator::new(100, 1.0);
        assert!(gen.theta() < 1.0);
        let mut rng = XorShiftRng::new(3);
        for _ in 0..10_000 {
            assert!(gen.next(&mut rng) < 100);
        }
    }

    #[test]
    #[should_panic(expected = "empty key space")]
    fn zero_items_panics() {
        let _ = ZipfGenerator::new(0, 0.5);
    }
}
