//! A small FxHash implementation (the rustc hash) plus map/set aliases.
//!
//! The engine's hot paths are keyed by small integers (packed [`crate::ids::RecordId`]s,
//! transaction ids, page ids).  SipHash — the std default — is measurably slow
//! for those keys, so we use the Fx algorithm, implemented locally to keep the
//! dependency set to the crates allowed by the project brief.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hashing algorithm as used inside rustc: a multiply-rotate mix of
/// each word of input.  Not HashDoS resistant; only use for trusted keys.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Convenience: hash a single `u64` key (used to pick `lock_sys` shards).
#[inline]
pub fn hash_u64(key: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(key);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_inputs_hash_identically() {
        assert_eq!(hash_u64(42), hash_u64(42));
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello world, txsql");
        b.write(b"hello world, txsql");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_inputs_usually_hash_differently() {
        // Not a cryptographic guarantee, but these specific values must not
        // collide for the shard distribution tests below to be meaningful.
        assert_ne!(hash_u64(1), hash_u64(2));
        assert_ne!(hash_u64(0), hash_u64(u64::MAX));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }

    #[test]
    fn sequential_keys_spread_across_shards() {
        // The lock_sys uses `hash % n_shards`; sequential page numbers must not
        // all land on the same shard.
        let n_shards = 64u64;
        let mut counts = vec![0usize; n_shards as usize];
        for page in 0..4096u64 {
            counts[(hash_u64(page) % n_shards) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(min > 0, "some shard received no keys");
        assert!(
            max < 4096 / 8,
            "keys are heavily skewed to one shard: max={max}"
        );
    }

    #[test]
    fn partial_tail_bytes_affect_hash() {
        let mut a = FxHasher::default();
        a.write(b"abcdefghi"); // 9 bytes: one full word + 1 tail byte
        let mut b = FxHasher::default();
        b.write(b"abcdefghj");
        assert_ne!(a.finish(), b.finish());
    }
}
