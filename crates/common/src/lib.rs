//! # txsql-common
//!
//! Shared substrate for the TXSQL reproduction.
//!
//! This crate provides the low-level building blocks every other crate in the
//! workspace relies on:
//!
//! * [`ids`] — strongly-typed identifiers.  Rows are addressed exactly as in
//!   InnoDB / the paper (§2.2): a `(space_id, page_no, heap_no)` triple
//!   ([`ids::RecordId`]); transactions, tables and log sequence numbers get
//!   their own newtypes.
//! * [`value`] — a small dynamically-typed [`value::Value`] / [`value::Row`]
//!   model, enough to express the SysBench, TPC-C and FiT schemas.
//! * [`error`] — the crate-wide [`error::Error`] type (lock wait timeouts,
//!   deadlocks, hotspot aborts, …).
//! * [`fxhash`] — an FxHash implementation and the [`fxhash::FxHashMap`] /
//!   [`fxhash::FxHashSet`] aliases used on hot paths (integer-keyed tables).
//! * [`zipf`] — a Zipfian generator used by the skewed workloads (Figure 10).
//! * [`metrics`] — lock-free counters and log-scaled latency histograms used
//!   to produce the paper's TPS / p95-latency / lock-wait breakdowns.
//! * [`pad`] — [`pad::CachePadded`], cache-line padding for sharded lock and
//!   bookkeeping structures (kills false sharing between shard mutexes).
//! * [`latency`] — the [`latency::LatencyModel`] that substitutes for the
//!   paper's real fsync and replica network round-trips (see `DESIGN.md`,
//!   substitution table).
//! * [`rng`] — a tiny, fast, seedable PRNG (xorshift*) used by workloads so
//!   experiments are reproducible without pulling extra dependencies onto hot
//!   paths.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod error;
pub mod fxhash;
pub mod ids;
pub mod latency;
pub mod metrics;
pub mod pad;
pub mod rng;
pub mod time;
pub mod value;
pub mod zipf;

pub use error::{Error, Result};
pub use ids::{HeapNo, Lsn, PageNo, RecordId, SpaceId, TableId, TxnId};
pub use pad::CachePadded;
pub use value::{Row, Value};
