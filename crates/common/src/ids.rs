//! Strongly-typed identifiers used throughout the engine.
//!
//! The paper (§2.2) identifies a row by the triple
//! `<space_id, page_no, heap_no>`: the tablespace, the page inside the
//! tablespace and the record slot inside the page.  The lock hash table
//! (`lock_sys`) is keyed by `(space_id, page_no)` — i.e. a whole page — while
//! the lightweight `trx_lock_wait` map and the hotspot hash are keyed by the
//! full [`RecordId`].  We preserve that distinction because it drives the
//! contention behaviour the paper measures (page-level shard mutexes vs
//! row-level queues).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a tablespace (one per table in this engine).
pub type SpaceId = u32;
/// Page number inside a tablespace.
pub type PageNo = u32;
/// Record slot ("heap number") inside a page.
pub type HeapNo = u16;

/// Identifier of a user table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table#{}", self.0)
    }
}

/// Transaction identifier.  Monotonically increasing, assigned at `BEGIN`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct TxnId(pub u64);

impl TxnId {
    /// The "invalid"/sentinel transaction id (no transaction).
    pub const INVALID: TxnId = TxnId(0);

    /// Returns true when this is a real transaction id.
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trx#{}", self.0)
    }
}

/// Log sequence number in the redo log / binlog.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Lsn(pub u64);

impl Lsn {
    /// LSN zero — used for "nothing durable yet".
    pub const ZERO: Lsn = Lsn(0);
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

/// The `(space_id, page_no)` pair that keys the `lock_sys` hash table.
///
/// InnoDB (and hence the paper) shards lock-manager state by page, so two hot
/// rows on the same page contend on the same shard mutex — an effect Figure 6c
/// attributes a large share of lock-wait time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageId {
    /// Tablespace id.
    pub space_id: SpaceId,
    /// Page number within the tablespace.
    pub page_no: PageNo,
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page({},{})", self.space_id, self.page_no)
    }
}

/// Unique identifier of a row: `<space_id, page_no, heap_no>` (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RecordId {
    /// Tablespace id.
    pub space_id: SpaceId,
    /// Page number within the tablespace.
    pub page_no: PageNo,
    /// Record slot within the page.
    pub heap_no: HeapNo,
}

impl RecordId {
    /// Builds a record id from its three components.
    #[inline]
    pub const fn new(space_id: SpaceId, page_no: PageNo, heap_no: HeapNo) -> Self {
        Self {
            space_id,
            page_no,
            heap_no,
        }
    }

    /// The page this record lives on — the `lock_sys` hash key.
    #[inline]
    pub const fn page(&self) -> PageId {
        PageId {
            space_id: self.space_id,
            page_no: self.page_no,
        }
    }

    /// Packs the record id into a single `u64` (used as an FxHash-friendly key
    /// for the lightweight `trx_lock_wait` and hotspot hash tables).
    #[inline]
    pub const fn packed(&self) -> u64 {
        ((self.space_id as u64) << 48) | ((self.page_no as u64) << 16) | self.heap_no as u64
    }

    /// Reverses [`RecordId::packed`].
    #[inline]
    pub const fn from_packed(packed: u64) -> Self {
        Self {
            space_id: (packed >> 48) as SpaceId,
            page_no: ((packed >> 16) & 0xFFFF_FFFF) as PageNo,
            heap_no: (packed & 0xFFFF) as HeapNo,
        }
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rec({},{},{})",
            self.space_id, self.page_no, self.heap_no
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_id_round_trips_through_packed() {
        let rid = RecordId::new(7, 123_456, 42);
        assert_eq!(RecordId::from_packed(rid.packed()), rid);
    }

    #[test]
    fn packed_is_unique_for_distinct_components() {
        let a = RecordId::new(1, 2, 3).packed();
        let b = RecordId::new(1, 3, 2).packed();
        let c = RecordId::new(2, 2, 3).packed();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn page_id_extraction() {
        let rid = RecordId::new(5, 10, 99);
        assert_eq!(
            rid.page(),
            PageId {
                space_id: 5,
                page_no: 10
            }
        );
    }

    #[test]
    fn txn_id_validity() {
        assert!(!TxnId::INVALID.is_valid());
        assert!(TxnId(1).is_valid());
    }

    #[test]
    fn display_impls_are_stable() {
        assert_eq!(TxnId(9).to_string(), "trx#9");
        assert_eq!(Lsn(4).to_string(), "lsn:4");
        assert_eq!(TableId(2).to_string(), "table#2");
        assert_eq!(RecordId::new(1, 2, 3).to_string(), "rec(1,2,3)");
        assert_eq!(
            PageId {
                space_id: 1,
                page_no: 2
            }
            .to_string(),
            "page(1,2)"
        );
    }

    #[test]
    fn ordering_follows_component_order() {
        let a = RecordId::new(1, 1, 1);
        let b = RecordId::new(1, 1, 2);
        let c = RecordId::new(1, 2, 0);
        let d = RecordId::new(2, 0, 0);
        assert!(a < b && b < c && c < d);
    }
}
