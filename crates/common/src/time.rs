//! Sim-aware time for engine deadlines.
//!
//! Every deadline the engine computes (lock-wait timeouts, hotspot wait
//! timeouts, commit-order waits) uses [`SimInstant`] instead of
//! `std::time::Instant`: outside a `txsql-sim` run it *is* the real monotonic
//! clock; inside one it reads the scheduler's virtual clock, so timeout paths
//! fire deterministically under schedule exploration instead of depending on
//! wall-clock races.

pub use txsql_sim::SimInstant;
