//! Deterministic schedule exploration of the lock manager (`txsql-sim`).
//!
//! Every test here runs the *production* lock-manager code under the
//! cooperative scheduler: shim `Mutex`/`RwLock` acquisitions and
//! `OsEvent::wait/set` are the preemption points, and timeouts fire on the
//! virtual clock.  A failing seed prints a replayable failure artifact; see
//! `crates/sim/README.md` for how to replay it.
//!
//! The seed set is `TXSQL_SIM_SEEDS`-overridable (CI pins `0..200`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txsql_common::latency::ut_delay;
use txsql_common::metrics::EngineMetrics;
use txsql_common::{RecordId, Result, TxnId};
use txsql_lockmgr::event::OsEvent;
use txsql_lockmgr::group_lock::{
    CancelOutcome, GroupLockConfig, GroupLockTable, HotExecution, WokenRole,
};
use txsql_lockmgr::lightweight::{LightweightConfig, LightweightLockTable};
use txsql_lockmgr::lock_sys::{DeadlockPolicy, LockSys, LockSysConfig};
use txsql_lockmgr::modes::LockMode;
use txsql_lockmgr::queue_lock::{QueueAdmission, QueueLockTable};

const HOT: RecordId = RecordId {
    space_id: 1,
    page_no: 0,
    heap_no: 0,
};

/// Runs one seeded schedule and panics with the replayable artifact on
/// failure (deadlock, lost wakeup, or an assertion inside a sim thread).
fn run_seed(seed: u64, build: impl Fn(&mut txsql_sim::Sim)) {
    let report = txsql_sim::run_with_seed(seed, build);
    if let Some(failure) = report.failure {
        panic!(
            "seed {seed} failed: {failure}\nschedule: {:?}\nreproduce: txsql_sim::replay(&schedule, build)",
            report.schedule
        );
    }
}

fn group_table() -> GroupLockTable {
    GroupLockTable::new(
        GroupLockConfig {
            hot_wait_timeout: Duration::from_millis(100),
            ..GroupLockConfig::default()
        },
        Arc::new(EngineMetrics::new()),
    )
}

// ---------------------------------------------------------------------------
// group_lock entry()/maybe_gc lifecycle race (ROADMAP pre-existing bug)
// ---------------------------------------------------------------------------

/// Drives the fetch → deschedule → gc → enqueue interleaving that used to
/// orphan hot-row state: `begin_hot_update` fetched the `GroupEntry` Arc from
/// the shard map, and if the committing leader's `finish_commit` ran
/// `maybe_gc` before the joiner locked the entry's state, the joiner elected
/// itself leader of (or parked on) an entry no longer reachable through the
/// map — invisible to every later `entry()` lookup.
///
/// On the pre-fix code this fails within the first few seeds in two ways:
/// the joiner's `leader_of(HOT)` assertion sees `None`/a stale leader because
/// its leadership lives on the orphaned entry, or the joiner times out in
/// `wait_for_grant` because its wait slot is queued where no granter will
/// ever look (the artifact then shows `LockWaitTimeout` after a virtual-clock
/// jump).  Post-fix, `with_state` re-validates the entry after locking (the
/// `dead` generation mark), so every seed passes.
#[test]
fn group_entry_gc_race_is_closed_under_exploration() {
    for seed in txsql_sim::ci_seeds(200) {
        let g = Arc::new(group_table());
        const T1: TxnId = TxnId(1);
        const T2: TxnId = TxnId(2);
        // T1 is an established leader that has finished its update and is
        // about to commit (the state in which finish_commit can GC).
        assert!(matches!(g.begin_hot_update(T1, HOT), HotExecution::Leader));
        g.register_update(T1, HOT);
        g.finish_update(T1, HOT, true);

        let committer = Arc::clone(&g);
        let joiner = Arc::clone(&g);
        run_seed(seed, move |sim| {
            let g1 = Arc::clone(&committer);
            sim.spawn("committer", move || {
                g1.leader_prepare_commit(T1, HOT);
                g1.wait_commit_turn(T1, HOT).unwrap();
                g1.finish_commit(T1, HOT); // may remove the map entry
                g1.leader_handover(T1, HOT);
            });
            let g2 = Arc::clone(&joiner);
            sim.spawn("joiner", move || {
                let role = match g2.begin_hot_update(T2, HOT) {
                    HotExecution::Leader => WokenRole::NewLeader,
                    HotExecution::Follower => WokenRole::Follower,
                    HotExecution::Wait(slot) => g2.wait_for_grant(T2, HOT, &slot).unwrap(),
                };
                g2.register_update(T2, HOT);
                if role == WokenRole::NewLeader {
                    // Leadership must be visible through the shard map: a
                    // leader recorded on an orphaned entry is the bug.
                    assert_eq!(
                        g2.leader_of(HOT),
                        Some(T2),
                        "joiner's leadership is not visible through the entry map"
                    );
                }
                assert!(
                    g2.dep_list(HOT).contains(&T2),
                    "joiner's update landed on an orphaned dependency list"
                );
                g2.finish_update(T2, HOT, role == WokenRole::NewLeader);
                if role == WokenRole::NewLeader {
                    g2.leader_prepare_commit(T2, HOT);
                }
                g2.wait_commit_turn(T2, HOT).unwrap();
                g2.finish_commit(T2, HOT);
                if role == WokenRole::NewLeader {
                    g2.leader_handover(T2, HOT);
                }
            });
        });

        // Whatever the schedule, the hot row must end fully drained.
        assert!(
            g.dep_list(HOT).is_empty(),
            "seed {seed}: dep list not drained"
        );
        assert_eq!(g.leader_of(HOT), None, "seed {seed}: leader not cleared");
        assert!(!g.has_activity(HOT), "seed {seed}: entry still live");
    }
}

// ---------------------------------------------------------------------------
// Batched commit handover (PR 5): one promotion per hot row, timeout-safe
// ---------------------------------------------------------------------------

/// The batched leader commit (`begin_leader_commit` + `finish_leader_handover`
/// across several hot rows at once) must behave exactly like the per-record
/// sequence under every interleaving with waiter timeouts:
///
/// * **exactly one new leader per hot row** — each parked waiter is either
///   promoted (role `NewLeader`, leadership visible through the entry map) or
///   it cancels out on timeout and the row is left leaderless (dynamic batch),
///   never both and never two leaders;
/// * **no lost promotion** — a waiter that stays queued through the handover
///   is always woken (a lost wake surfaces as a virtual-clock timeout with the
///   waiter still queued, or a sim deadlock artifact);
/// * **no double-leader when a follower times out mid-handover** — the
///   `cancel_hot_wait` vs `promote_next_leader` race resolves to one side:
///   `AlreadyGranted(NewLeader)` (the waiter proceeds as the promoted leader)
///   or `Cancelled` (the promotion never happened; the queue entry is gone).
///
/// The committing leader's `ut_delay` lines the handover up against the
/// waiters' wait deadline so both orders of the race are explored across the
/// seed set.
#[test]
fn batched_handover_promotes_exactly_one_leader_per_row_under_exploration() {
    const ROWS: usize = 2;
    const LEADER: TxnId = TxnId(1);
    for seed in txsql_sim::ci_seeds(200) {
        let g = Arc::new(GroupLockTable::new(
            GroupLockConfig {
                hot_wait_timeout: Duration::from_millis(100),
                ..GroupLockConfig::default()
            },
            Arc::new(EngineMetrics::new()),
        ));
        // Same page on purpose: the batched fetch takes the entry shard once.
        let records: Vec<RecordId> = (0..ROWS).map(|h| RecordId::new(1, 0, h as u16)).collect();
        for record in &records {
            assert!(matches!(
                g.begin_hot_update(LEADER, *record),
                HotExecution::Leader
            ));
            g.register_update(LEADER, *record);
            g.finish_update(LEADER, *record, true);
        }
        // Per row: how often the waiter acted as a leader (promoted by the
        // handover, or fresh leader of the next group), executed as a
        // follower of the old group, or cancelled out on timeout.
        let led = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
        let followed = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
        let cancelled = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);

        let gt = Arc::clone(&g);
        let led2 = Arc::clone(&led);
        let followed2 = Arc::clone(&followed);
        let cancelled2 = Arc::clone(&cancelled);
        let rs = records.clone();
        run_seed(seed, move |sim| {
            for (i, record) in rs.iter().enumerate() {
                let g2 = Arc::clone(&gt);
                let led = Arc::clone(&led2);
                let followed = Arc::clone(&followed2);
                let cancelled = Arc::clone(&cancelled2);
                let record = *record;
                let txn = TxnId(10 + i as u64);
                sim.spawn(format!("waiter-{i}"), move || {
                    let commit_as_leader = |g: &GroupLockTable| {
                        // The write path's leader shape: leadership must be
                        // visible through the entry map (a leader recorded on
                        // an orphaned/duplicate entry is the double-leader
                        // bug), then the full Algorithm-2 commit.
                        assert_eq!(
                            g.leader_of(record),
                            Some(txn),
                            "leadership not visible through the entry map"
                        );
                        g.register_update(txn, record);
                        g.finish_update(txn, record, true);
                        g.leader_prepare_commit(txn, record);
                        g.leader_handover(txn, record);
                        g.wait_commit_turn(txn, record).unwrap();
                        g.finish_commit(txn, record);
                    };
                    match g2.begin_hot_update(txn, record) {
                        // Arrived after the whole handover drained the row
                        // (dynamic batch left it leaderless): fresh group.
                        HotExecution::Leader => {
                            led[i].fetch_add(1, Ordering::Relaxed);
                            commit_as_leader(&g2);
                        }
                        // Arrived while the old group's leader was idle
                        // before its commit: granted follower execution.
                        HotExecution::Follower => {
                            followed[i].fetch_add(1, Ordering::Relaxed);
                            g2.register_update(txn, record);
                            g2.finish_update(txn, record, false);
                            g2.wait_commit_turn(txn, record).unwrap();
                            g2.finish_commit(txn, record);
                        }
                        HotExecution::Wait(slot) => {
                            match g2.wait_for_grant(txn, record, &slot) {
                                Ok(WokenRole::NewLeader) => {
                                    led[i].fetch_add(1, Ordering::Relaxed);
                                    commit_as_leader(&g2);
                                }
                                Ok(WokenRole::Follower) => {
                                    panic!("a commit handover must promote, not grant a follower")
                                }
                                Err(err) => {
                                    assert!(
                                        matches!(err, txsql_common::Error::LockWaitTimeout { .. }),
                                        "unexpected waiter error: {err:?}"
                                    );
                                    cancelled[i].fetch_add(1, Ordering::Relaxed);
                                    // A cancelled waiter must not be (or
                                    // become) the leader — that would be the
                                    // double-leader bug.
                                    assert_ne!(
                                        g2.leader_of(record),
                                        Some(txn),
                                        "cancelled waiter still recorded as leader"
                                    );
                                }
                            }
                        }
                    }
                });
            }
            let g2 = Arc::clone(&gt);
            let rs2 = rs.clone();
            sim.spawn("committer", move || {
                // Prepare first: a waiter arriving after this parks
                // (`switching_new_leader`); one arriving before executes as a
                // follower of the old group — both orders occur across seeds.
                let prepared = g2.begin_leader_commit(LEADER, &rs2);
                assert_eq!(prepared.record_count(), ROWS);
                // Stall mid-handover past the waiters' 100 ms deadline: their
                // timeouts fire on the virtual clock *while* the handover is
                // pending, so `cancel_hot_wait` races `promote_next_leader`
                // in both orders across the seed set.
                ut_delay(105_000);
                let promotions = g2.finish_leader_handover(LEADER, prepared);
                assert_eq!(promotions.len(), ROWS);
                for record in &rs2 {
                    g2.finish_commit(LEADER, *record);
                }
            });
        });

        for (i, record) in records.iter().enumerate() {
            let l = led[i].load(Ordering::Relaxed);
            let f = followed[i].load(Ordering::Relaxed);
            let c = cancelled[i].load(Ordering::Relaxed);
            assert_eq!(
                l + f + c,
                1,
                "seed {seed}, row {record}: waiter must lead XOR follow XOR cancel \
                 (led={l}, followed={f}, cancelled={c})"
            );
            // Whatever the race outcome, the row must end fully drained: no
            // leader, no parked waiter, no dependency-list residue.  A lost
            // promotion would leave the waiter parked (or surface above as
            // its timeout); a double promotion would trip the leader_of
            // assertions inside the threads.
            assert_eq!(
                g.waiting_len(*record),
                0,
                "seed {seed}, row {record}: lost promotion left a parked waiter"
            );
            if c == 1 {
                assert_eq!(
                    g.leader_of(*record),
                    None,
                    "seed {seed}, row {record}: cancelled row must be leaderless"
                );
            }
            assert!(
                g.dep_list(*record).is_empty(),
                "seed {seed}, row {record}: dep list not drained"
            );
            assert!(
                !g.has_activity(*record),
                "seed {seed}, row {record}: entry still live"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// grant_waiters FIFO / compatibility invariants (both lock tables)
// ---------------------------------------------------------------------------

/// The slice of the two lock tables' APIs the schedule tests exercise.
trait LockTable: Send + Sync + 'static {
    fn lock(&self, txn: TxnId, record: RecordId, mode: LockMode) -> Result<()>;
    fn release_all(&self, txn: TxnId);
    fn release_batch(&self, txn: TxnId, records: &[RecordId]);
    fn wait_queue_len(&self, record: RecordId) -> usize;
    fn holders_of(&self, record: RecordId) -> Vec<TxnId>;
    /// Records the registry tracks for `txn` (granted or waiting).  Under
    /// the timeout-only policy the registry entry is written immediately
    /// before the wait deadline is captured (no yield point in between —
    /// detection would add the graph's event-attach lock there), so tests
    /// can gate on it to order virtual-clock deadlines deterministically.
    fn tracked_locks(&self, txn: TxnId) -> usize;
}

impl LockTable for LockSys {
    fn lock(&self, txn: TxnId, record: RecordId, mode: LockMode) -> Result<()> {
        self.lock_record(txn, record, mode)
    }
    fn release_all(&self, txn: TxnId) {
        LockSys::release_all(self, txn)
    }
    fn release_batch(&self, txn: TxnId, records: &[RecordId]) {
        self.release_record_locks(txn, records)
    }
    fn wait_queue_len(&self, record: RecordId) -> usize {
        LockSys::wait_queue_len(self, record)
    }
    fn holders_of(&self, record: RecordId) -> Vec<TxnId> {
        LockSys::holders_of(self, record)
    }
    fn tracked_locks(&self, txn: TxnId) -> usize {
        self.registry().record_count_of(txn)
    }
}

impl LockTable for LightweightLockTable {
    fn lock(&self, txn: TxnId, record: RecordId, mode: LockMode) -> Result<()> {
        self.lock_record(txn, record, mode)
    }
    fn release_all(&self, txn: TxnId) {
        LightweightLockTable::release_all(self, txn)
    }
    fn release_batch(&self, txn: TxnId, records: &[RecordId]) {
        self.release_record_locks(txn, records)
    }
    fn wait_queue_len(&self, record: RecordId) -> usize {
        LightweightLockTable::wait_queue_len(self, record)
    }
    fn holders_of(&self, record: RecordId) -> Vec<TxnId> {
        LightweightLockTable::holders_of(self, record)
    }
    fn tracked_locks(&self, txn: TxnId) -> usize {
        self.registry().record_count_of(txn)
    }
}

fn lock_sys_table() -> Arc<LockSys> {
    Arc::new(LockSys::new(
        LockSysConfig {
            n_shards: 8,
            deadlock_policy: DeadlockPolicy::TimeoutOnly,
            lock_wait_timeout: Duration::from_millis(200),
            ..Default::default()
        },
        Arc::new(EngineMetrics::new()),
    ))
}

fn lightweight_table() -> Arc<LightweightLockTable> {
    Arc::new(LightweightLockTable::new(
        LightweightConfig {
            n_shards: 64,
            deadlock_policy: DeadlockPolicy::TimeoutOnly,
            lock_wait_timeout: Duration::from_millis(200),
            ..Default::default()
        },
        Arc::new(EngineMetrics::new()),
    ))
}

/// Exclusive waiters staged in a known arrival order must be granted in that
/// order, and none may be lost: a lost wakeup surfaces as either a
/// virtual-clock timeout (`unwrap` fails) or a sim deadlock artifact.
fn fifo_grant_order<T: LockTable>(table: Arc<T>, seed: u64) {
    const WAITERS: usize = 3;
    let order = Arc::new(parking_lot::Mutex::new(Vec::<usize>::new()));
    let holder_txn = TxnId(1);
    // The holder takes the lock before any sim thread runs.
    table.lock(holder_txn, HOT, LockMode::Exclusive).unwrap();

    let t = Arc::clone(&table);
    let o = Arc::clone(&order);
    run_seed(seed, move |sim| {
        for i in 0..WAITERS {
            let table = Arc::clone(&t);
            let order = Arc::clone(&o);
            sim.spawn(format!("waiter-{i}"), move || {
                let h = txsql_sim::current().unwrap();
                // Stage arrivals: waiter i enqueues only once i earlier
                // waiters are already parked in the queue.
                while table.wait_queue_len(HOT) != i {
                    h.yield_now();
                }
                table
                    .lock(TxnId(10 + i as u64), HOT, LockMode::Exclusive)
                    .unwrap();
                order.lock().push(i);
                table.release_all(TxnId(10 + i as u64));
            });
        }
        let table = Arc::clone(&t);
        sim.spawn("releaser", move || {
            let h = txsql_sim::current().unwrap();
            while table.wait_queue_len(HOT) != WAITERS {
                h.yield_now();
            }
            table.release_all(holder_txn);
        });
    });

    assert_eq!(
        *order.lock(),
        (0..WAITERS).collect::<Vec<_>>(),
        "seed {seed}: grants out of FIFO order"
    );
}

#[test]
fn fifo_grant_order_under_exploration_lock_sys() {
    for seed in txsql_sim::ci_seeds(200) {
        fifo_grant_order(lock_sys_table(), seed);
    }
}

#[test]
fn fifo_grant_order_under_exploration_lightweight() {
    for seed in txsql_sim::ci_seeds(200) {
        fifo_grant_order(lightweight_table(), seed);
    }
}

/// A Shared waiter queued behind an earlier conflicting Exclusive waiter must
/// not jump the queue while the Exclusive wait is pending — but when that
/// front waiter *times out*, the timeout cleanup must re-run the grant scan
/// and wake the compatible waiter behind it (no lost wakeup on the timeout
/// path).  The virtual clock makes the timeout fire deterministically in
/// every explored schedule.
fn timeout_grants_compatible_waiter_behind<T: LockTable>(table: Arc<T>, seed: u64) {
    let holder_txn = TxnId(1);
    table.lock(holder_txn, HOT, LockMode::Shared).unwrap();
    let granted_shared = Arc::new(AtomicUsize::new(0));

    let t = Arc::clone(&table);
    let g = Arc::clone(&granted_shared);
    run_seed(seed, move |sim| {
        let table = Arc::clone(&t);
        sim.spawn("exclusive-waiter", move || {
            // Conflicts with the Shared holder; nobody releases, so this wait
            // can only end through the (virtual-clock) timeout.
            let err = table.lock(TxnId(2), HOT, LockMode::Exclusive).unwrap_err();
            assert!(
                matches!(err, txsql_common::Error::LockWaitTimeout { .. }),
                "unexpected error: {err:?}"
            );
        });
        let table = Arc::clone(&t);
        let granted = Arc::clone(&g);
        sim.spawn("shared-waiter", move || {
            let h = txsql_sim::current().unwrap();
            // Enqueue strictly behind the Exclusive waiter, with a later
            // virtual-clock deadline: gate on the registry entry (written
            // just before the Exclusive waiter captures its deadline, with
            // no yield point in between) so the ut_delay below advances the
            // clock strictly after that capture.
            while table.wait_queue_len(HOT) != 1 || table.tracked_locks(TxnId(2)) != 1 {
                h.yield_now();
            }
            ut_delay(1_000);
            // FIFO fairness keeps us waiting behind the Exclusive request;
            // its timeout cleanup must then grant us.
            table.lock(TxnId(3), HOT, LockMode::Shared).unwrap();
            granted.fetch_add(1, Ordering::Relaxed);
            table.release_all(TxnId(3));
        });
    });

    assert_eq!(
        granted_shared.load(Ordering::Relaxed),
        1,
        "seed {seed}: compatible waiter was never granted"
    );
    table.release_all(holder_txn);
}

/// Two hot heap_nos on ONE page: FIFO and compatibility invariants must hold
/// independently per record, and one record's timeout churn must never wake
/// (or time out) the other record's waiters.  On the page-sharded `lock_sys`
/// both records share a shard mutex, so this is exactly the per-record-queue
/// guarantee; the record-keyed lightweight table gets it structurally.
///
/// Virtual-clock layout: record A's waiter captures its 200 ms deadline
/// first; record B's two waiters push the clock forward (150 ms / 10 ms)
/// before queueing, so firing A's timeout (the +60 ms jump at 220 ms) leaves
/// B's deadlines (350 ms / 360 ms) unexpired — B's waiters can only proceed
/// through a genuine grant.
fn per_record_queues_are_independent<T: LockTable>(table: Arc<T>, seed: u64) {
    const A: RecordId = RecordId {
        space_id: 1,
        page_no: 0,
        heap_no: 0,
    };
    const B: RecordId = RecordId {
        space_id: 1,
        page_no: 0,
        heap_no: 1,
    };
    let holder_a = TxnId(1);
    let holder_b = TxnId(2);
    table.lock(holder_a, A, LockMode::Exclusive).unwrap();
    table.lock(holder_b, B, LockMode::Exclusive).unwrap();
    let order = Arc::new(parking_lot::Mutex::new(Vec::<u64>::new()));
    let a_timed_out = Arc::new(AtomicUsize::new(0));

    let t = Arc::clone(&table);
    let o = Arc::clone(&order);
    let flag = Arc::clone(&a_timed_out);
    run_seed(seed, move |sim| {
        // A's waiter: its holder never releases, so only the virtual-clock
        // timeout can end this wait — and its cleanup (the grant scan on A)
        // must not leak into B's queue.
        let table = Arc::clone(&t);
        let flag2 = Arc::clone(&flag);
        sim.spawn("a-waiter", move || {
            let err = table.lock(TxnId(3), A, LockMode::Exclusive).unwrap_err();
            assert!(
                matches!(err, txsql_common::Error::LockWaitTimeout { .. }),
                "A's waiter must end by timeout, got {err:?}"
            );
            flag2.store(1, Ordering::Relaxed);
        });
        // B's first waiter queues after A's deadline is captured, with a
        // +150 ms clock push so its own deadline lands well past A's.
        let table = Arc::clone(&t);
        let order = Arc::clone(&o);
        sim.spawn("b-waiter-4", move || {
            let h = txsql_sim::current().unwrap();
            while table.wait_queue_len(A) != 1 || table.tracked_locks(TxnId(3)) != 1 {
                h.yield_now();
            }
            ut_delay(150_000);
            table.lock(TxnId(4), B, LockMode::Exclusive).unwrap();
            order.lock().push(4);
            table.release_all(TxnId(4));
        });
        // B's second waiter queues strictly behind the first (FIFO).
        let table = Arc::clone(&t);
        let order = Arc::clone(&o);
        sim.spawn("b-waiter-5", move || {
            let h = txsql_sim::current().unwrap();
            while table.wait_queue_len(B) != 1 {
                h.yield_now();
            }
            ut_delay(10_000);
            table.lock(TxnId(5), B, LockMode::Exclusive).unwrap();
            order.lock().push(5);
            table.release_all(TxnId(5));
        });
        // The driver: once everyone queued, fire A's timeout, verify B's
        // queue survived the churn untouched, then release B for real.
        let table = Arc::clone(&t);
        let order = Arc::clone(&o);
        let a_flag = Arc::clone(&flag);
        sim.spawn("b-releaser", move || {
            let h = txsql_sim::current().unwrap();
            while table.wait_queue_len(A) != 1 || table.wait_queue_len(B) != 2 {
                h.yield_now();
            }
            // Jump to 220 ms: past A's 200 ms deadline, short of B's 350 ms.
            ut_delay(60_000);
            while a_flag.load(Ordering::Relaxed) == 0 {
                h.yield_now();
            }
            // A's timeout cleanup ran its grant scan; B must be untouched.
            assert_eq!(
                table.holders_of(B),
                vec![holder_b],
                "seed {seed}: A's timeout churn must not change B's holders"
            );
            assert_eq!(
                table.wait_queue_len(B),
                2,
                "seed {seed}: A's timeout churn must not wake B's waiters"
            );
            assert!(
                order.lock().is_empty(),
                "seed {seed}: no B waiter may be granted before B is released"
            );
            table.release_all(holder_b);
        });
    });

    assert_eq!(
        *order.lock(),
        vec![4, 5],
        "seed {seed}: B's grants out of FIFO order"
    );
    assert_eq!(
        table.holders_of(A),
        vec![holder_a],
        "seed {seed}: A's holder must survive all the churn"
    );
    assert_eq!(table.wait_queue_len(A), 0);
    table.release_all(holder_a);
}

/// A statement-boundary **batched** release (`release_record_locks` over
/// several records at once — the wider Bamboo early-release batch) must wake
/// every eligible waiter exactly once: no lost wakeup (every waiter is
/// granted — a lost one would surface as a virtual-clock timeout or a sim
/// deadlock artifact) and no double grant (each exclusive grantee observes
/// itself as the record's only holder).  On the page-sharded table all
/// records share one page, so the whole batch drains under a single shard
/// acquisition — exactly the path the statement-boundary flush exercises.
fn batched_release_wakes_each_waiter_exactly_once<T: LockTable>(table: Arc<T>, seed: u64) {
    const RECORDS: usize = 3;
    let records: Vec<RecordId> = (0..RECORDS)
        .map(|heap| RecordId::new(1, 0, heap as u16))
        .collect();
    let holder = TxnId(1);
    for record in &records {
        table.lock(holder, *record, LockMode::Exclusive).unwrap();
    }
    let grants = Arc::new(AtomicUsize::new(0));

    let t = Arc::clone(&table);
    let g = Arc::clone(&grants);
    let rs = records.clone();
    run_seed(seed, move |sim| {
        for (i, record) in rs.iter().enumerate() {
            let table = Arc::clone(&t);
            let grants = Arc::clone(&g);
            let record = *record;
            let txn = TxnId(10 + i as u64);
            sim.spawn(format!("waiter-{i}"), move || {
                table.lock(txn, record, LockMode::Exclusive).unwrap();
                // Exactly-once: an exclusive grant must be the sole holder;
                // a double grant would show a second transaction here.
                assert_eq!(
                    table.holders_of(record),
                    vec![txn],
                    "double grant on {record}"
                );
                grants.fetch_add(1, Ordering::Relaxed);
                table.release_all(txn);
            });
        }
        let table = Arc::clone(&t);
        let rs2 = rs.clone();
        sim.spawn("batch-releaser", move || {
            let h = txsql_sim::current().unwrap();
            while rs2.iter().any(|r| table.wait_queue_len(*r) != 1) {
                h.yield_now();
            }
            table.release_batch(holder, &rs2);
        });
    });

    assert_eq!(
        grants.load(Ordering::Relaxed),
        RECORDS,
        "seed {seed}: every waiter must be woken exactly once by the batch"
    );
    for record in &records {
        assert!(
            table.holders_of(*record).is_empty(),
            "seed {seed}: {record} must drain"
        );
    }
    assert_eq!(table.tracked_locks(holder), 0, "seed {seed}: registry leak");
}

#[test]
fn batched_release_wakes_each_waiter_exactly_once_lock_sys() {
    for seed in txsql_sim::ci_seeds(200) {
        batched_release_wakes_each_waiter_exactly_once(lock_sys_table(), seed);
    }
}

#[test]
fn batched_release_wakes_each_waiter_exactly_once_lightweight() {
    for seed in txsql_sim::ci_seeds(200) {
        batched_release_wakes_each_waiter_exactly_once(lightweight_table(), seed);
    }
}

#[test]
fn per_record_queue_independence_under_exploration_lock_sys() {
    for seed in txsql_sim::ci_seeds(200) {
        per_record_queues_are_independent(lock_sys_table(), seed);
    }
}

#[test]
fn per_record_queue_independence_under_exploration_lightweight() {
    for seed in txsql_sim::ci_seeds(200) {
        per_record_queues_are_independent(lightweight_table(), seed);
    }
}

#[test]
fn timeout_wakes_compatible_waiter_lock_sys() {
    for seed in txsql_sim::ci_seeds(200) {
        timeout_grants_compatible_waiter_behind(lock_sys_table(), seed);
    }
}

#[test]
fn timeout_wakes_compatible_waiter_lightweight() {
    for seed in txsql_sim::ci_seeds(200) {
        timeout_grants_compatible_waiter_behind(lightweight_table(), seed);
    }
}

// ---------------------------------------------------------------------------
// POR coverage win (explorer comparison)
// ---------------------------------------------------------------------------

/// Fixed-budget coverage comparison between the random explorer (the pre-v2
/// behaviour) and the POR explorer on this suite's contention shape:
/// transactions of *different sizes* alternate thread-private work
/// (commuting — the POR filter skips those switches) with locking one shared
/// hot record (dependent — both explorers must order it).
///
/// Why POR wins here: the schedule class hashes only the dependent-access
/// order, and the order in which staggered transactions arrive at the hot
/// record is what varies it.  The random walker advances every thread at the
/// same average rate (one yield per pick), so arrival order barely deviates
/// from the deterministic lockstep order — reordering two arrivals `gap`
/// yields apart needs ~`gap` consecutive same-way picks.  POR compresses the
/// private work to zero random picks (commuting skips move a thread a whole
/// chunk per decision), so the same deviation costs ~`gap / chunk` decisions
/// — deep arrival reorderings that random almost never aligns are cheap.
#[test]
fn por_reaches_more_schedule_classes_than_random() {
    fn build(explorer: txsql_sim::Explorer) -> impl Fn(&mut txsql_sim::Sim) {
        move |sim: &mut txsql_sim::Sim| {
            sim.set_explorer(explorer);
            let table = lock_sys_table();
            // Per-thread private work between hot accesses: deliberately
            // different, so lockstep arrival order is nontrivial to reorder.
            const CHURN: [usize; 3] = [40, 95, 150];
            for i in 0..3u64 {
                let table = Arc::clone(&table);
                sim.spawn(format!("txn-{i}"), move || {
                    let txn = TxnId(10 + i);
                    let handle = txsql_sim::current().expect("sim thread");
                    // A genuinely thread-private resource: churn on it never
                    // conflicts, so the POR filter may skip every switch.
                    let local = [0u8; 1];
                    let res = txsql_sim::Resource::new(
                        txsql_sim::ResourceKind::Lock,
                        txsql_sim::key_of(&local),
                    );
                    for _round in 0..3 {
                        for _ in 0..CHURN[i as usize] {
                            handle.yield_at(res);
                        }
                        // The dependent access both explorers must order.
                        table.lock(txn, HOT, LockMode::Exclusive).unwrap();
                        table.release_all(txn);
                    }
                });
            }
        }
    }
    let budget: Vec<u64> = (0..200).collect();
    let random = txsql_sim::explore_collect(budget.clone(), build(txsql_sim::Explorer::Random));
    let por = txsql_sim::explore_collect(budget, build(txsql_sim::Explorer::Por));
    println!("{}", random.line("sim_lock/random"));
    println!("{}", por.line("sim_lock/por"));
    assert_eq!(
        random.commuting_skips, 0,
        "the random explorer must not filter"
    );
    assert!(
        por.commuting_skips > 0,
        "the private-record churn must give the POR filter switches to skip"
    );
    assert!(
        por.distinct_classes > random.distinct_classes,
        "POR must reach strictly more schedule classes at a fixed budget \
         (por {} vs random {})",
        por.distinct_classes,
        random.distinct_classes
    );
}

// ---------------------------------------------------------------------------
// Event-pool draining on the timeout / cancellation paths
// ---------------------------------------------------------------------------

/// A cancelled group-lock wait must drain its pooled event back to the
/// thread-local free list: cancellation removes the queue's `WaitSlot` clone,
/// so the waiter's drop is the last one and recycles the (unique) event.
#[test]
fn cancelled_group_wait_drains_event_to_pool() {
    let g = group_table();
    assert!(matches!(
        g.begin_hot_update(TxnId(1), HOT),
        HotExecution::Leader
    ));
    g.register_update(TxnId(1), HOT);
    let slot = match g.begin_hot_update(TxnId(2), HOT) {
        HotExecution::Wait(slot) => slot,
        other => panic!("expected Wait, got {other:?}"),
    };
    let before = OsEvent::pooled_count();
    assert_eq!(g.cancel_hot_wait(TxnId(2), HOT), CancelOutcome::Cancelled);
    drop(slot);
    assert_eq!(
        OsEvent::pooled_count(),
        before + 1,
        "cancelled wait slot must recycle its event"
    );
}

/// A slot whose granter still holds a clone must NOT recycle a shared event:
/// the unique-`Arc` rule protects the pool from stale wakes.
#[test]
fn granted_slot_event_is_not_pooled_while_shared() {
    let g = group_table();
    let _ = g.begin_hot_update(TxnId(1), HOT);
    g.register_update(TxnId(1), HOT);
    let slot = match g.begin_hot_update(TxnId(2), HOT) {
        HotExecution::Wait(slot) => slot,
        other => panic!("expected Wait, got {other:?}"),
    };
    let stale_granter_clone = Arc::clone(slot.event());
    g.finish_update(TxnId(1), HOT, true); // grants T2, queue drops its slot clone
    let before = OsEvent::pooled_count();
    drop(slot);
    assert_eq!(
        OsEvent::pooled_count(),
        before,
        "event with an outstanding granter clone must not be pooled"
    );
    drop(stale_granter_clone);
}

/// A timed-out queue-lock wait must be recyclable after `cancel_wait`
/// removed the queue's clone.
#[test]
fn cancelled_queue_wait_drains_event_to_pool() {
    let q = QueueLockTable::new(Duration::from_millis(10));
    assert!(matches!(q.admit(TxnId(1), HOT), QueueAdmission::Proceed));
    let event = match q.admit(TxnId(2), HOT) {
        QueueAdmission::Wait(event) => event,
        other => panic!("expected Wait, got {other:?}"),
    };
    assert!(q.cancel_wait(TxnId(2), HOT));
    let before = OsEvent::pooled_count();
    OsEvent::recycle(event);
    assert_eq!(OsEvent::pooled_count(), before + 1);
    q.release(TxnId(1), HOT);
}

/// A commit-turn wait that times out under an explored schedule must retire
/// its event (remove the state's clone) instead of leaking one commit-waiter
/// entry per 50 ms poll — observable as a stable waiter list and a recycled
/// event even though nobody ever woke the waiter.
#[test]
fn timed_out_commit_wait_retires_its_event_under_sim() {
    for seed in txsql_sim::ci_seeds(20) {
        let g = Arc::new(GroupLockTable::new(
            GroupLockConfig {
                hot_wait_timeout: Duration::from_millis(20),
                ..GroupLockConfig::default()
            },
            Arc::new(EngineMetrics::new()),
        ));
        const T1: TxnId = TxnId(1);
        const T2: TxnId = TxnId(2);
        // T1 precedes T2 in the dependency list and never commits, so T2's
        // commit turn can only end in a (virtual clock) timeout.
        let _ = g.begin_hot_update(T1, HOT);
        g.register_update(T1, HOT);
        g.finish_update(T1, HOT, true);
        assert!(matches!(
            g.begin_hot_update(T2, HOT),
            HotExecution::Follower
        ));
        g.register_update(T2, HOT);
        g.finish_update(T2, HOT, false);

        let gt = Arc::clone(&g);
        run_seed(seed, move |sim| {
            let g2 = Arc::clone(&gt);
            sim.spawn("commit-waiter", move || {
                let pooled_before = OsEvent::pooled_count();
                let err = g2.wait_commit_turn(T2, HOT).unwrap_err();
                assert!(matches!(err, txsql_common::Error::LockWaitTimeout { .. }));
                // The retired events went back to this thread's pool (capped
                // by the pool size); at minimum the last one must be there.
                assert!(
                    OsEvent::pooled_count() > pooled_before.saturating_sub(1),
                    "retired commit-turn event was not recycled"
                );
            });
        });
        // No abandoned commit-waiter entries may survive the timeout.
        g.finish_rollback(T2, HOT);
        g.finish_rollback(T1, HOT);
        assert!(!g.has_activity(HOT), "seed {seed}: entry still live");
    }
}
