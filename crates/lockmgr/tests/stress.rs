//! Concurrent stress test of the decentralized lock bookkeeping.
//!
//! N threads hammer one hot record plus disjoint cold records through both
//! [`LockSys`] and [`LightweightLockTable`], asserting:
//!
//! * no lost grants — every successful exclusive acquisition of the hot
//!   record observes and increments a shared counter exactly once, so the
//!   final counter equals the number of grants;
//! * no duplicate holders — while a thread holds the hot record
//!   exclusively, it must be the only holder the table reports;
//! * bookkeeping drains — after every thread has issued `release_all`, the
//!   per-transaction registry and the wait-for graph are empty (this is the
//!   race the timeout-removal vs grant-scan interplay can leak on);
//! * grant scans stay per-record — every cold record lives on one shared
//!   page, so a layout that scanned the whole page's request population
//!   would show up as growth in the `grant_scan_len` histogram; with
//!   per-heap_no queues (the shared `record_queue` core both tables now
//!   route through) it must stay bounded by one record's queue depth, and
//!   the batched `release_record_locks` path the cold records go through
//!   must keep it flat too;
//! * the per-transaction metrics scratch loses no counts — every worker
//!   drives the tables through its own `MetricsScratch` (the engine shape:
//!   `lock_record_in` / `release_record_locks_in` / `release_all_in`) and
//!   flushes at the end, so the `locks_released` totals asserted below
//!   would come up short if any scratch count were dropped, and the
//!   grant-scan flatness assertions prove histogram fidelity survives the
//!   scratch's bucketed accumulation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txsql_common::metrics::{EngineMetrics, MetricsScratch};
use txsql_common::{RecordId, TxnId};
use txsql_lockmgr::lightweight::{LightweightConfig, LightweightLockTable};
use txsql_lockmgr::lock_sys::{DeadlockPolicy, LockSys, LockSysConfig};
use txsql_lockmgr::modes::LockMode;
use txsql_lockmgr::registry::TxnLockRegistry;

const HOT: RecordId = RecordId {
    space_id: 9,
    page_no: 0,
    heap_no: 0,
};
const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 200;

/// Facade over the two lock-table generations so one driver exercises both.
/// The lock/release entry points take the worker's `MetricsScratch`, the
/// exact shape the engine drives the tables in.
trait Table: Send + Sync {
    fn lock(&self, txn: TxnId, record: RecordId, mode: LockMode, scratch: &MetricsScratch) -> bool;
    fn release_all(&self, txn: TxnId, scratch: &MetricsScratch);
    fn release_batch(&self, txn: TxnId, records: &[RecordId], scratch: &MetricsScratch);
    fn holders_of(&self, record: RecordId) -> Vec<TxnId>;
    fn registry(&self) -> &Arc<TxnLockRegistry>;
    fn waiting_count(&self) -> usize;
}

impl Table for LockSys {
    fn lock(&self, txn: TxnId, record: RecordId, mode: LockMode, scratch: &MetricsScratch) -> bool {
        self.lock_record_in(txn, record, mode, scratch).is_ok()
    }
    fn release_all(&self, txn: TxnId, scratch: &MetricsScratch) {
        self.release_all_in(txn, scratch);
    }
    fn release_batch(&self, txn: TxnId, records: &[RecordId], scratch: &MetricsScratch) {
        self.release_record_locks_in(txn, records, scratch);
    }
    fn holders_of(&self, record: RecordId) -> Vec<TxnId> {
        LockSys::holders_of(self, record)
    }
    fn registry(&self) -> &Arc<TxnLockRegistry> {
        LockSys::registry(self)
    }
    fn waiting_count(&self) -> usize {
        self.wait_for_graph().waiting_count()
    }
}

impl Table for LightweightLockTable {
    fn lock(&self, txn: TxnId, record: RecordId, mode: LockMode, scratch: &MetricsScratch) -> bool {
        self.lock_record_in(txn, record, mode, scratch).is_ok()
    }
    fn release_all(&self, txn: TxnId, scratch: &MetricsScratch) {
        self.release_all_in(txn, scratch);
    }
    fn release_batch(&self, txn: TxnId, records: &[RecordId], scratch: &MetricsScratch) {
        self.release_record_locks_in(txn, records, scratch);
    }
    fn holders_of(&self, record: RecordId) -> Vec<TxnId> {
        LightweightLockTable::holders_of(self, record)
    }
    fn registry(&self) -> &Arc<TxnLockRegistry> {
        LightweightLockTable::registry(self)
    }
    fn waiting_count(&self) -> usize {
        self.wait_for_graph().waiting_count()
    }
}

fn stress(table: Arc<dyn Table>, metrics: &EngineMetrics) {
    let counter = Arc::new(AtomicU64::new(0));
    let grants = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(std::sync::Barrier::new(THREADS));

    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let table = Arc::clone(&table);
            let counter = Arc::clone(&counter);
            let grants = Arc::clone(&grants);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                barrier.wait();
                // The worker's private metrics scratch — per-cycle counts
                // accumulate here and flush in one batch at the end (the
                // engine flushes per transaction; one flush per worker makes
                // any lost count equally visible in the totals below).
                let scratch = MetricsScratch::new();
                let mut txn_no = ((worker as u64) + 1) << 32;
                for op in 0..OPS_PER_THREAD {
                    txn_no += 1;
                    let txn = TxnId(txn_no);
                    // Two disjoint cold records per thread, always
                    // uncontended — but all cold records share ONE page, so
                    // a page-global grant scan would see every thread's
                    // requests (and a page-global release would churn them).
                    let base = (worker * OPS_PER_THREAD + op) * 2;
                    let cold_a = RecordId::new(9, 1, (base % 4_096) as u16);
                    let cold_b = RecordId::new(9, 1, ((base + 1) % 4_096) as u16);
                    for cold in [cold_a, cold_b] {
                        assert!(
                            table.lock(txn, cold, LockMode::Exclusive, &scratch),
                            "cold record acquisition must never fail"
                        );
                    }
                    // The shared hot record: may time out under contention,
                    // but a grant must be exclusive.
                    if table.lock(txn, HOT, LockMode::Exclusive, &scratch) {
                        let holders = table.holders_of(HOT);
                        assert_eq!(
                            holders,
                            vec![txn],
                            "exclusive grant must be the only holder"
                        );
                        counter.fetch_add(1, Ordering::Relaxed);
                        grants.fetch_add(1, Ordering::Relaxed);
                    }
                    // The cold records go through the statement-boundary
                    // batched early-release path (one shard-group drain +
                    // one registry batch), the hot one through release_all.
                    table.release_batch(txn, &[cold_a, cold_b], &scratch);
                    assert!(table.holders_of(cold_a).is_empty());
                    table.release_all(txn, &scratch);
                }
                scratch.flush(metrics);
            });
        }
    });

    assert_eq!(
        counter.load(Ordering::Relaxed),
        grants.load(Ordering::Relaxed),
        "every grant increments the shared counter exactly once"
    );
    assert!(
        grants.load(Ordering::Relaxed) > 0,
        "at least some hot acquisitions must succeed"
    );
    assert!(
        table.holders_of(HOT).is_empty(),
        "hot record must end with no holders"
    );
    assert!(
        table.registry().is_empty(),
        "registry must be empty after all release_all calls (left {} entries)",
        table.registry().total_entries()
    );
    assert_eq!(table.waiting_count(), 0, "wait-for graph must drain");
    // Grant scans must stay per-record: at most the hot record's one holder
    // plus THREADS-1 waiters.  All cold records live on one page, so a scan
    // that grew with page population would blow through this bound.
    assert!(
        metrics.grant_scan_len.max_micros() <= THREADS as u64 + 1,
        "grant scan examined {} requests — scans must not scale with page population",
        metrics.grant_scan_len.max_micros()
    );
}

#[test]
fn lock_sys_hot_and_cold_stress() {
    let metrics = Arc::new(EngineMetrics::new());
    let sys = LockSys::new(
        LockSysConfig {
            n_shards: 16,
            deadlock_policy: DeadlockPolicy::TimeoutOnly,
            lock_wait_timeout: Duration::from_millis(10),
            ..Default::default()
        },
        Arc::clone(&metrics),
    );
    stress(Arc::new(sys), &metrics);
}

#[test]
fn lightweight_hot_and_cold_stress() {
    let metrics = Arc::new(EngineMetrics::new());
    let table = LightweightLockTable::new(
        LightweightConfig {
            n_shards: 128,
            deadlock_policy: DeadlockPolicy::TimeoutOnly,
            lock_wait_timeout: Duration::from_millis(10),
            ..Default::default()
        },
        Arc::clone(&metrics),
    );
    stress(Arc::new(table), &metrics);
    // Lightweight only creates lock objects for waits; releases must cover
    // every registry entry ever created (two batched cold releases plus the
    // hot record per op).
    assert_eq!(
        metrics.locks_released.get(),
        (THREADS * OPS_PER_THREAD) as u64 * 3
    );
}

#[test]
fn deadlock_detection_survives_concurrent_churn() {
    // With detection enabled and short timeouts, cross-thread cycles on two
    // records must resolve as deadlock or timeout — never hang — and the
    // graph must drain afterwards.
    let metrics = Arc::new(EngineMetrics::new());
    let table = Arc::new(LightweightLockTable::new(
        LightweightConfig {
            n_shards: 64,
            deadlock_policy: DeadlockPolicy::Detect,
            lock_wait_timeout: Duration::from_millis(20),
            ..Default::default()
        },
        metrics,
    ));
    let a = RecordId::new(3, 0, 0);
    let b = RecordId::new(3, 0, 1);
    std::thread::scope(|scope| {
        for worker in 0..4usize {
            let table = Arc::clone(&table);
            scope.spawn(move || {
                let mut txn_no = ((worker as u64) + 1) << 40;
                for _ in 0..100 {
                    txn_no += 1;
                    let txn = TxnId(txn_no);
                    // Half the workers lock a->b, half b->a: real deadlock
                    // cycles form and must be broken.
                    let (first, second) = if worker % 2 == 0 { (a, b) } else { (b, a) };
                    if table.lock_record(txn, first, LockMode::Exclusive).is_ok() {
                        let _ = table.lock_record(txn, second, LockMode::Exclusive);
                    }
                    table.release_all(txn);
                }
            });
        }
    });
    assert!(table.holders_of(a).is_empty());
    assert!(table.holders_of(b).is_empty());
    assert!(table.registry().is_empty());
    assert_eq!(table.wait_for_graph().waiting_count(), 0);
    assert_eq!(table.wait_for_graph().edge_count(), 0);
}
