//! Lock modes and the conflict matrix.
//!
//! Record locks come in shared (`S`, taken by `SELECT ... FOR SHARE` /
//! serializable reads) and exclusive (`X`, taken by `UPDATE`, `DELETE`,
//! `SELECT ... FOR UPDATE`) flavours.  Table-level intention modes (`IS`,
//! `IX`) are included for completeness of the 2PL substrate — workloads in
//! the paper take an `IX` table lock before every row update, exactly as
//! InnoDB does, although the contention the paper studies is entirely on the
//! record locks.

/// A lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared record (or table) lock.
    Shared,
    /// Exclusive record (or table) lock.
    Exclusive,
    /// Intention-shared table lock.
    IntentionShared,
    /// Intention-exclusive table lock.
    IntentionExclusive,
}

impl LockMode {
    /// Returns true when two locks in these modes can be held simultaneously
    /// by *different* transactions on the same object.
    pub fn is_compatible_with(self, other: LockMode) -> bool {
        use LockMode::*;
        match (self, other) {
            // Intention locks are compatible with each other.
            (IntentionShared, IntentionShared)
            | (IntentionShared, IntentionExclusive)
            | (IntentionExclusive, IntentionShared)
            | (IntentionExclusive, IntentionExclusive) => true,
            // IS is compatible with S.
            (IntentionShared, Shared) | (Shared, IntentionShared) => true,
            // S with S.
            (Shared, Shared) => true,
            // Everything involving X (or IX vs S/X) conflicts.
            _ => false,
        }
    }

    /// Returns true when a lock held in `self` mode already covers a request
    /// in `requested` mode by the *same* transaction (no upgrade needed).
    pub fn covers(self, requested: LockMode) -> bool {
        use LockMode::*;
        matches!(
            (self, requested),
            (Exclusive, _)
                | (Shared, Shared)
                | (Shared, IntentionShared)
                | (IntentionExclusive, IntentionExclusive)
                | (IntentionExclusive, IntentionShared)
                | (IntentionShared, IntentionShared)
        )
    }

    /// True for record-level modes.
    pub fn is_record_mode(self) -> bool {
        matches!(self, LockMode::Shared | LockMode::Exclusive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::*;

    #[test]
    fn shared_locks_are_compatible() {
        assert!(Shared.is_compatible_with(Shared));
        assert!(!Shared.is_compatible_with(Exclusive));
        assert!(!Exclusive.is_compatible_with(Shared));
        assert!(!Exclusive.is_compatible_with(Exclusive));
    }

    #[test]
    fn intention_locks_follow_the_standard_matrix() {
        assert!(IntentionShared.is_compatible_with(IntentionExclusive));
        assert!(IntentionExclusive.is_compatible_with(IntentionExclusive));
        assert!(IntentionShared.is_compatible_with(Shared));
        assert!(!IntentionExclusive.is_compatible_with(Shared));
        assert!(!IntentionExclusive.is_compatible_with(Exclusive));
        assert!(!IntentionShared.is_compatible_with(Exclusive));
    }

    #[test]
    fn compatibility_is_symmetric() {
        let modes = [Shared, Exclusive, IntentionShared, IntentionExclusive];
        for &a in &modes {
            for &b in &modes {
                assert_eq!(
                    a.is_compatible_with(b),
                    b.is_compatible_with(a),
                    "{a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn exclusive_covers_everything() {
        for &m in &[Shared, Exclusive, IntentionShared, IntentionExclusive] {
            assert!(Exclusive.covers(m));
        }
        assert!(!Shared.covers(Exclusive));
        assert!(Shared.covers(Shared));
        assert!(!IntentionShared.covers(IntentionExclusive));
    }

    #[test]
    fn record_mode_classification() {
        assert!(Shared.is_record_mode());
        assert!(Exclusive.is_record_mode());
        assert!(!IntentionShared.is_record_mode());
        assert!(!IntentionExclusive.is_record_mode());
    }
}
