//! # txsql-lockmgr
//!
//! The lock manager of the TXSQL reproduction — the subsystem the paper's
//! optimizations actually live in.
//!
//! The crate contains four generations of locking machinery, matching the
//! paper's narrative:
//!
//! 1. [`lock_sys`] — the vanilla InnoDB-style lock system: a hash table
//!    sharded by *page* (`<space_id, page_no>`), a `lock_t`-like request
//!    object created for **every** acquisition, FIFO wait queues, and
//!    wait-for-graph deadlock detection that scans the queue while holding
//!    the shard mutex.  This is the "MySQL" baseline whose collapse under
//!    hotspot load motivates the paper (Figure 2a).
//! 2. [`lightweight`] — the general lock optimization (§3.1.1, "O1"): a
//!    record-keyed `trx_lock_wait` map with many more shards, which only
//!    materialises lock objects when a conflict actually exists.
//! 3. [`queue_lock`] — queue locking for hotspots (§3.2, "O2"): detected hot
//!    rows get a FIFO of waiting transactions *in front of* the lock manager,
//!    woken one at a time by the committing predecessor, with timeouts
//!    instead of deadlock detection.
//! 4. [`group_lock`] — group locking (§3.3/§4, "TXSQL"): leader/follower
//!    groups executing serially on uncommitted data without locking, the
//!    dependency list that fixes commit and rollback order, and the
//!    dynamic-batch-size latency optimization.
//!
//! Supporting modules: [`event`] (the `os_event` wait/wake primitive),
//! [`modes`] (lock modes and conflict matrix), [`deadlock`] (the wait-for
//! graph) and [`hotspot`] (hotspot detection and the `hot_row_hash`
//! registry shared by queue and group locking).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod deadlock;
pub mod event;
pub mod group_lock;
pub mod hotspot;
pub mod lightweight;
pub mod lock_sys;
pub mod modes;
pub mod queue_lock;

pub use deadlock::WaitForGraph;
pub use event::OsEvent;
pub use group_lock::{GroupLockTable, HotExecution};
pub use hotspot::{HotspotConfig, HotspotRegistry};
pub use lightweight::LightweightLockTable;
pub use lock_sys::{DeadlockPolicy, LockSys, LockSysConfig};
pub use modes::LockMode;
pub use queue_lock::QueueLockTable;
