//! # txsql-lockmgr
//!
//! The lock manager of the TXSQL reproduction — the subsystem the paper's
//! optimizations actually live in.
//!
//! The crate contains four generations of locking machinery, matching the
//! paper's narrative:
//!
//! 1. [`lock_sys`] — the vanilla InnoDB-style lock system: a hash table
//!    sharded by *page* (`<space_id, page_no>`), a `lock_t`-like request
//!    entry created for **every** acquisition, FIFO wait queues, and
//!    wait-for-graph deadlock detection run while holding the shard mutex.
//!    This is the "MySQL" baseline whose collapse under hotspot load
//!    motivates the paper (Figure 2a).  Within a page, requests live in
//!    **per-`heap_no` record queues** (holders split from the waiter FIFO),
//!    so conflict checks and grant scans are O(requests on that record)
//!    rather than O(all requests on the page) — the page-level shard mutex
//!    remains the faithful bottleneck, but nothing scans other records'
//!    requests any more.
//! 2. [`lightweight`] — the general lock optimization (§3.1.1, "O1"): a
//!    record-keyed `trx_lock_wait` map with many more shards, which only
//!    materialises lock objects when a conflict actually exists.
//! 3. [`queue_lock`] — queue locking for hotspots (§3.2, "O2"): detected hot
//!    rows get a FIFO of waiting transactions *in front of* the lock manager,
//!    woken one at a time by the committing predecessor, with timeouts
//!    instead of deadlock detection.
//! 4. [`group_lock`] — group locking (§3.3/§4, "TXSQL"): leader/follower
//!    groups executing serially on uncommitted data without locking, the
//!    dependency list that fixes commit and rollback order, and the
//!    dynamic-batch-size latency optimization.
//!
//! ## One queue core, two lock tables
//!
//! Generations 1 and 2 implement the same per-record grant/wait machinery —
//! the holder/waiter split, the mode-compatibility conflict check, the
//! from-front FIFO grant scan, timeout/cancel removal, and the doom-aware
//! wait loop.  That machinery is **single-source** in [`record_queue`]:
//! both tables route through [`record_queue::RecordQueue`] and
//! [`record_queue::wait_until_granted`], and differ only in what
//! [`record_queue::QueuePolicy`] and their [`record_queue::QueueAccess`]
//! impls encode — sharding key (page vs. record), upgrade fairness (the
//! baseline's FIFO `S→X` rule vs. O1's holder-only check) and
//! `locks_created` accounting (per acquisition vs. per conflict).  A grant,
//! doom or wake fix lands once and both tables get it; the sim suites prove
//! the equivalence across hundreds of seeded schedules.
//!
//! ## Decentralized bookkeeping
//!
//! Whatever the locking generation, the *bookkeeping around* lock state must
//! not become the bottleneck itself (paper §3, Figure 6c/6d; Ren et al. make
//! the same point for multicore OLTP generally).  Three design rules keep
//! every hot path free of global mutexes:
//!
//! * **Per-transaction lock lists are sharded by `TxnId`** in the
//!   [`registry::TxnLockRegistry`]: acquisition appends `(txn, record)` to
//!   the transaction's own cache-padded shard (an unsorted append log — the
//!   page-major sort is deferred to release), and `release_all` takes the
//!   whole entry out with one shard lock, sorting and deduplicating it once
//!   — there is no global `txn_locks` map to serialize on.  The
//!   registry also tracks which tables a transaction intention-locked, so
//!   table-lock release visits only those shards instead of scanning every
//!   table.  Registry size is observable via the
//!   `lock_registry_entries` gauge and `locks_released` counter in
//!   `EngineMetrics`.
//! * **Release is batched per shard group**: `take_all` hands records back
//!   pre-grouped by page, so the page-sharded `lock_sys` takes each page's
//!   shard mutex at most once per `release_all` (the lightweight table
//!   groups by row shard the same way), and the `release_record_locks`
//!   batch APIs (Bamboo's early lock release) drain lock-table state per
//!   shard group and registry bookkeeping with one shard lock per batch
//!   ([`registry::TxnLockRegistry::forget_records`]).  The engine's write
//!   path widens those batches to **statement boundaries**: early releases
//!   accumulate in the transaction's pending buffer and flush through one
//!   batched call (the `early_release_batch` engine knob), and the
//!   `release_shard_locks` counter in `EngineMetrics` makes the
//!   amortization observable.
//! * **The wait-for graph is sharded by waiter** ([`deadlock`]): a
//!   transaction waits for at most one lock at a time, so its out-edge set
//!   lives in a per-waiter-shard slot; `set_waits_for` / `clear_waits_of`
//!   never contend across unrelated waiters, and the cycle DFS takes
//!   per-shard guards one node at a time instead of freezing the whole
//!   graph.  Detection reports the full cycle membership, and
//!   [`deadlock::VictimPolicy`] decides who dies: the requester (baseline)
//!   or, by default, the member with the fewest registry-tracked locks
//!   (ties to the youngest id); a remote victim is woken through the event
//!   parked in its graph entry and aborts out of its own wait.
//! * **Uncontended grants allocate nothing**: a request that does not wait
//!   carries no `OsEvent` (waiters-only request objects in `lock_sys`'s
//!   record queues, holder ids only in `lightweight`), and requests that
//!   *do* wait draw their event from a thread-local free list
//!   ([`event::OsEvent::acquire_pooled`] / [`event::OsEvent::recycle`]) —
//!   an event is only pooled again once its `Arc` is unique, so a recycled
//!   event can never receive a stale wake.
//!
//! Every grant scan records how many requests it examined in the
//! `grant_scan_len` histogram; with per-record queues this stays bounded by
//! one record's queue depth, so growth with page population is a layout
//! regression (the stress tests assert flatness).
//!
//! ## The uncontended fast path
//!
//! The zero-conflict acquire/release cycle — the path every cold record
//! takes, and the one the contended optimizations must not tax — is kept
//! allocation- and contention-minimal end to end:
//!
//! * **inline holders, lazy waiters**: a [`record_queue::RecordQueue`]
//!   stores its single holder inline (no `Vec` until a second *shared*
//!   holder appears) and has no waiter deque at all until the first conflict
//!   boxes one into existence — an uncontended acquire/release cycle
//!   performs **zero heap allocations** in either lock table;
//! * **per-transaction metrics scratch**: the per-cycle counters
//!   (`locks_created`, `locks_released`, `release_shard_locks`, grant-scan
//!   lengths) flow through a
//!   [`MetricsSink`](txsql_common::metrics::MetricsSink) — the engine passes
//!   each transaction's `Cell`-based scratch (`txsql_txn::TxnMetrics`,
//!   flushed to `EngineMetrics` once per commit and on drop, so abort paths
//!   lose nothing) instead of hammering shared atomics 2+ times per cycle;
//!   the lock tables' `*_in` entry points (`lock_record_in`,
//!   `release_all_in`, `release_record_locks_in`) accept the sink, and the
//!   sink-less names remain as shared-metrics conveniences;
//! * **append-log registry inserts**: [`registry::TxnLockRegistry`] records
//!   an acquisition with a plain `Vec::push`; the page-major sort the
//!   grouped release paths rely on is deferred to `take_all` — paid once per
//!   transaction at release, where batching already amortizes everything
//!   else, instead of a sorted insert on every acquisition.
//!
//! The same pass made the **wake-outside-lock** rule uniform and checked:
//! every path that wakes a waiter (grant scans, batched release, the group
//! tables' follower grants, leader handover and commit-waiter wakes)
//! collects its events under the shard/state guard and fires them after
//! dropping it, and `OsEvent::set` debug-asserts the calling thread holds no
//! lockmgr guard (the private `wake_check` module).
//!
//! The other end of the lifecycle is batched too: a group-locking leader's
//! commit-time handover of several hot rows fetches their group entries with
//! one entry-map shard lock per shard and promotes all successor leaders
//! before firing any wake-up — see
//! [`group_lock::GroupLockTable::begin_leader_commit`] and the
//! `handover_shard_locks` counter.
//!
//! Supporting modules: [`record_queue`] (the shared per-record queue core),
//! [`event`] (the `os_event` wait/wake primitive and its pool), [`modes`]
//! (lock modes and conflict matrix), [`deadlock`] (the sharded wait-for
//! graph), [`registry`] (the per-transaction lock registry) and [`hotspot`]
//! (hotspot detection and the `hot_row_hash` registry shared by queue and
//! group locking).
//!
//! ## Deterministic testing
//!
//! Everything in this crate is interleaving-sensitive, and a 1-CPU CI box
//! essentially never preempts a microsecond critical section — organic
//! dangerous schedules simply do not occur.  The crate is therefore fully
//! explorable under the `txsql-sim` cooperative scheduler:
//!
//! * blocking acquisitions of the `parking_lot` shim's `Mutex`/`RwLock` are
//!   yield points, and contended acquisitions park the logical thread in the
//!   scheduler instead of the OS;
//! * [`event::OsEvent::wait`]/`wait_for`/`set` route the same way, with timed
//!   waits parked on the scheduler's **virtual clock**;
//! * every deadline in this crate (`lock_wait_timeout`, `hot_wait_timeout`
//!   and their multiples) is computed with `txsql_common::time::SimInstant`,
//!   which reads the virtual clock inside a sim run — timeout paths fire
//!   deterministically instead of depending on wall-clock races.
//!
//! There is no `#[cfg]` split: the exact code that ships is the code the
//! simulator schedules.  `crates/lockmgr/tests/sim_lock.rs` explores the
//! grant/timeout/GC interleavings (including regression tests for the
//! `group_lock` entry-lifecycle race) across hundreds of seeded schedules;
//! see `crates/sim/README.md` for how to write a sim test and replay a
//! failing seed.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod deadlock;
pub mod event;
pub mod group_lock;
pub mod hotspot;
pub mod lightweight;
pub mod lock_sys;
pub mod modes;
pub mod queue_lock;
pub mod record_queue;
pub mod registry;
mod wake_check;

pub use deadlock::{VictimPolicy, WaitForGraph};
pub use event::OsEvent;
pub use group_lock::{GroupLockTable, HotExecution};
pub use hotspot::{HotspotConfig, HotspotRegistry};
pub use lightweight::LightweightLockTable;
pub use lock_sys::{DeadlockPolicy, LockSys, LockSysConfig};
pub use modes::LockMode;
pub use queue_lock::QueueLockTable;
pub use record_queue::{QueuePolicy, RecordQueue};
pub use registry::{TxnLockRegistry, TxnLocks};
