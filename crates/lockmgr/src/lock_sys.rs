//! The vanilla, InnoDB-style lock system (`lock_sys`) — the MySQL baseline.
//!
//! Structure (paper §2.2): a hash table keyed by `(space_id, page_no)` whose
//! value holds the lock requests on that page.  Every acquisition creates a
//! request entry, even without contention — the first shortcoming §3.1.1
//! calls out.  The table is sharded, but a hot page still funnels every
//! acquisition, release, grant scan *and* deadlock check through one shard
//! mutex, which is the second shortcoming (Figure 6c).
//!
//! What is deliberately **kept** faithful to the baseline: the page-level
//! sharding (two hot rows on the same page still contend on one mutex), the
//! per-acquisition request accounting (`locks_created` counts one per
//! acquisition) and the FIFO queue discipline.  What is decentralized (this
//! engine has to scale even in baseline mode):
//!
//! * **per-`heap_no` record queues**: a page's requests live in
//!   `FxHashMap<HeapNo, RecordQueue>` with granted holders split from the
//!   waiter FIFO, so conflict checks, the grant scan, `wait_queue_len` and
//!   `holders_of` are O(requests on that record) instead of O(all requests
//!   on the page) — the flat `Vec<lock_t>` rescans (the O(queue²) grant scan
//!   under the hottest mutex in the system) are gone, while the shard mutex
//!   itself still serializes the page exactly like the baseline;
//! * **batched release**: the registry hands `release_all` its records
//!   pre-grouped by page, so commit/rollback takes each page's shard mutex
//!   once per page (not once per record), and
//!   [`LockSys::release_record_locks`] batches early lock release (Bamboo)
//!   the same way — page shard and registry shard are each locked once per
//!   batch;
//! * per-transaction bookkeeping lives in the sharded
//!   [`TxnLockRegistry`] instead of one
//!   global `txn_locks` mutex;
//! * table locks are sharded by `TableId`, and release-all visits only the
//!   tables the transaction actually locked (tracked by the registry)
//!   instead of scanning every table's holder list;
//! * shard mutexes are cache-padded, and an uncontended grant allocates no
//!   `OsEvent` — events exist only for requests that actually wait, drawn
//!   from a thread-local pool ([`OsEvent::acquire_pooled`](crate::event::OsEvent::acquire_pooled)).
//!
//! Waiting requests park on an [`OsEvent`](crate::event::OsEvent); the releasing transaction grants
//! from the front of the record's FIFO whatever no longer conflicts, and
//! every grant scan records its length in the `grant_scan_len` histogram
//! (flat-by-construction here; an O(page) regression would show up as
//! growth with page population).  Deadlock handling is configurable
//! ([`DeadlockPolicy`]): wait-for-graph detection run at every wait (MySQL
//! default) or a plain timeout (what the paper's hotspot paths prefer,
//! §3.2).  Under detection, the victim is chosen by [`VictimPolicy`]
//! (weight-based by default — fewest registry-tracked locks, ties to the
//! youngest transaction); a victim other than the requester is woken through
//! its graph-parked event and aborts out of its own wait.
//!
//! ## Shared queue core vs. table-specific shell
//!
//! The per-record machinery itself — conflict check, try-acquire,
//! from-front FIFO grant scan, deadlock check on wait, and the doom-aware
//! wait loop — is **not** implemented here: it lives in
//! [`crate::record_queue`] and is shared verbatim with the lightweight
//! table, so grant/doom/wake fixes are single-source.  This module owns only
//! what is genuinely baseline-specific: the page-keyed sharding (the
//! [`crate::record_queue::QueueAccess`] impl that navigates
//! `page → heap_no`, including the empty-shell accounting behind
//! [`LockSysConfig::shell_sweep_limit`]), the
//! [`crate::record_queue::QueuePolicy`] choices (`upgrade_respects_queue` —
//! an `S→X` upgrade may not jump earlier queued waiters, and
//! `count_uncontended_grants` — one `lock_t`-like object per acquisition,
//! the Figure-6d accounting), the table locks, and the page-grouped release
//! batching.

use crate::deadlock::{VictimPolicy, WaitForGraph};
use crate::record_queue::{
    deadlock_check_on_wait, wait_until_granted, AcquireOutcome, QueueAccess, QueuePolicy,
    RecordQueue, WaitParams,
};
use crate::registry::TxnLockRegistry;
use crate::wake_check::GuardScope;
use crate::LockMode;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;
use txsql_common::fxhash::{self, FxHashMap};
use txsql_common::ids::{HeapNo, PageId};
use txsql_common::metrics::{EngineMetrics, MetricsSink};
use txsql_common::pad::CachePadded;
use txsql_common::{Error, RecordId, Result, TableId, TxnId};

/// Number of table-lock shards.  Tables are few and intention modes almost
/// never conflict; 16 shards removes the global choke point without bloating
/// the structure.
const TABLE_SHARDS: usize = 16;

/// How the lock system deals with deadlocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlockPolicy {
    /// Run wait-for-graph detection on every wait (InnoDB default).
    Detect,
    /// Rely on lock-wait timeouts only (no detection).
    TimeoutOnly,
}

/// Configuration of [`LockSys`].
#[derive(Debug, Clone)]
pub struct LockSysConfig {
    /// Number of hash shards (InnoDB uses a small fixed number; the paper's
    /// baseline keeps page-level sharding).
    pub n_shards: usize,
    /// Deadlock handling policy.
    pub deadlock_policy: DeadlockPolicy,
    /// How the victim is chosen when detection finds a cycle.
    pub victim_policy: VictimPolicy,
    /// Lock wait timeout.
    pub lock_wait_timeout: Duration,
    /// Empty-shell eviction budget, per shard (the ROADMAP "shell sweep").
    ///
    /// `None` (default) retains every `PageLocks` shell forever: a page
    /// that saw locking once will see it again, and reusing the shell's map
    /// allocation keeps the uncontended acquire/release cycle
    /// allocation-free in steady state — memory is then bounded by the
    /// number of distinct pages that ever carried a lock (~100 bytes per
    /// shell).  `Some(limit)` caps the number of *empty* shells a shard may
    /// retain: when a release empties a shell and pushes the shard past the
    /// limit, the shard sweeps every empty shell in one `retain` pass.  The
    /// trade: truly huge key spaces stay bounded, but a swept page pays one
    /// map allocation when locking next touches it, so hot steady-state
    /// workloads should keep this disabled or generous.
    pub shell_sweep_limit: Option<usize>,
}

impl Default for LockSysConfig {
    fn default() -> Self {
        Self {
            n_shards: 64,
            deadlock_policy: DeadlockPolicy::Detect,
            victim_policy: VictimPolicy::default(),
            lock_wait_timeout: Duration::from_millis(200),
            shell_sweep_limit: None,
        }
    }
}

/// The table-specific [`QueuePolicy`]: the baseline keeps InnoDB's FIFO
/// upgrade fairness (an upgrade may not jump an earlier waiting request) and
/// counts one created lock object per acquisition (Figure 6d).
const POLICY: QueuePolicy = QueuePolicy {
    upgrade_respects_queue: true,
    count_uncontended_grants: true,
};

/// Lock state of one page: per-`heap_no` [`RecordQueue`]s (the shared queue
/// core).  Record queues are pruned as soon as they drain; what happens to
/// the emptied `PageLocks` shell is governed by
/// [`LockSysConfig::shell_sweep_limit`] (retained by default so steady state
/// stays allocation-free, swept under a per-shard cap when configured).
#[derive(Debug, Default)]
struct PageLocks {
    records: FxHashMap<HeapNo, RecordQueue>,
}

#[derive(Debug, Default)]
struct Shard {
    pages: FxHashMap<PageId, PageLocks>,
    /// Number of retained empty `PageLocks` shells in this shard, maintained
    /// only when shell sweeping is enabled (guarded by the shard mutex, so
    /// it costs nothing extra on the hot path).
    empty_shells: usize,
}

type TableShard = FxHashMap<TableId, Vec<(TxnId, LockMode)>>;

/// The page-sharded lock system.
#[derive(Debug)]
pub struct LockSys {
    config: LockSysConfig,
    shards: Box<[CachePadded<Mutex<Shard>>]>,
    graph: WaitForGraph,
    /// Sharded per-transaction bookkeeping — needed for release-all.
    registry: Arc<TxnLockRegistry>,
    /// Table-level locks (intention modes in practice), sharded by table.
    table_shards: Box<[CachePadded<Mutex<TableShard>>]>,
    metrics: Arc<EngineMetrics>,
}

impl LockSys {
    /// Creates a lock system with its own private lock registry.
    pub fn new(config: LockSysConfig, metrics: Arc<EngineMetrics>) -> Self {
        let registry = Arc::new(TxnLockRegistry::with_metrics(
            config.n_shards,
            Arc::clone(&metrics),
        ));
        Self::with_registry(config, metrics, registry)
    }

    /// Creates a lock system sharing an externally owned registry (the
    /// engine threads the same registry through `TrxSys` so transaction
    /// teardown can verify bookkeeping drained).
    pub fn with_registry(
        config: LockSysConfig,
        metrics: Arc<EngineMetrics>,
        registry: Arc<TxnLockRegistry>,
    ) -> Self {
        let n = config.n_shards.max(1);
        Self {
            config,
            shards: (0..n)
                .map(|_| CachePadded::new(Mutex::new(Shard::default())))
                .collect(),
            graph: WaitForGraph::new(),
            registry,
            table_shards: (0..TABLE_SHARDS)
                .map(|_| CachePadded::new(Mutex::new(TableShard::default())))
                .collect(),
            metrics,
        }
    }

    /// The configured lock-wait timeout.
    pub fn lock_wait_timeout(&self) -> Duration {
        self.config.lock_wait_timeout
    }

    /// The per-transaction lock registry backing release-all.
    pub fn registry(&self) -> &Arc<TxnLockRegistry> {
        &self.registry
    }

    #[inline]
    fn shard_for(&self, page: PageId) -> &Mutex<Shard> {
        let key = ((page.space_id as u64) << 32) | page.page_no as u64;
        let idx = (fxhash::hash_u64(key) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    #[inline]
    fn table_shard_for(&self, table: TableId) -> &Mutex<TableShard> {
        let idx = (fxhash::hash_u64(table.0 as u64) % TABLE_SHARDS as u64) as usize;
        &self.table_shards[idx]
    }

    /// Sweeps a shard's empty `PageLocks` shells when the configured budget
    /// is exceeded (no-op while `shell_sweep_limit` is `None`).
    fn maybe_sweep_shells(&self, shard: &mut Shard) {
        if let Some(limit) = self.config.shell_sweep_limit {
            if shard.empty_shells > limit {
                shard.pages.retain(|_, p| !p.records.is_empty());
                shard.empty_shells = 0;
            }
        }
    }

    /// Acquires a record lock, blocking until granted, deadlock or timeout,
    /// counting the hot-path metrics straight into the shared
    /// [`EngineMetrics`].
    pub fn lock_record(&self, txn: TxnId, record: RecordId, mode: LockMode) -> Result<()> {
        self.lock_record_in(txn, record, mode, &*self.metrics)
    }

    /// Acquires a record lock, blocking until granted, deadlock or timeout.
    /// The grant/wait machinery is the shared [`crate::record_queue`] core;
    /// this method only navigates the page-keyed sharding and applies the
    /// baseline's [`QueuePolicy`].  `sink` receives the per-cycle counters
    /// (`locks_created`) — the engine passes the transaction's metrics
    /// scratch so the uncontended fast path performs no atomic RMW.
    pub fn lock_record_in<S: MetricsSink + ?Sized>(
        &self,
        txn: TxnId,
        record: RecordId,
        mode: LockMode,
        sink: &S,
    ) -> Result<()> {
        debug_assert!(mode.is_record_mode());
        let event;
        let mut doom_victim = None;
        {
            let shard = self.shard_for(record.page());
            let mut guard = shard.lock();
            let _scope = GuardScope::enter();
            let shard_ref = &mut *guard;
            if self.config.shell_sweep_limit.is_some() {
                // Re-animating an empty shell: it stops counting toward the
                // sweep budget (every path below leaves the queue non-empty).
                if shard_ref
                    .pages
                    .get(&record.page())
                    .is_some_and(|p| p.records.is_empty())
                {
                    shard_ref.empty_shells = shard_ref.empty_shells.saturating_sub(1);
                }
            }
            let page = shard_ref.pages.entry(record.page()).or_default();
            let queue = page.records.entry(record.heap_no).or_default();

            match queue.try_acquire(txn, mode, POLICY, sink) {
                AcquireOutcome::AlreadyHeld | AcquireOutcome::Upgraded => return Ok(()),
                AcquireOutcome::Granted => {
                    // Uncontended grant: no OsEvent, no global bookkeeping —
                    // just the holder entry and the transaction's registry
                    // shard (updated after the page guard drops).
                    drop(_scope);
                    drop(guard);
                    self.registry.remember_record(txn, record);
                    return Ok(());
                }
                AcquireOutcome::MustWait(blockers) => {
                    // A requester chosen as deadlock victim returns before
                    // any lock entry or wait is recorded, so the Figure-6d
                    // counters stay truthful; a *remote* victim is doomed
                    // after the guard drops.
                    if self.config.deadlock_policy == DeadlockPolicy::Detect {
                        doom_victim = deadlock_check_on_wait(
                            queue,
                            &self.graph,
                            &self.registry,
                            &self.metrics,
                            self.config.victim_policy,
                            txn,
                            blockers,
                        )?;
                    }
                    event = queue.enqueue_waiter(txn, mode, &self.metrics);
                }
            }
        }
        self.registry.remember_record(txn, record);
        if self.config.deadlock_policy == DeadlockPolicy::Detect {
            // Park our event in the graph so a later detection pass can doom
            // us, then doom the victim this pass chose (if it stopped
            // waiting meanwhile the evidence was stale — our own timeout is
            // the backstop).
            self.graph.attach_waiter_event(txn, Arc::clone(&event));
            if let Some(victim) = doom_victim {
                self.graph.doom(victim);
            }
        }
        wait_until_granted(
            WaitParams {
                txn,
                record,
                mode,
                event,
                detect: self.config.deadlock_policy == DeadlockPolicy::Detect,
                timeout: self.config.lock_wait_timeout,
                graph: &self.graph,
                registry: &self.registry,
                metrics: &self.metrics,
            },
            &PageSlot { sys: self, record },
        )
    }

    /// Acquires a table lock.  Intention modes never conflict in the paper's
    /// workloads; a genuine conflict is reported as an immediate timeout
    /// rather than blocking (full table locks are outside the evaluated
    /// scenarios).
    pub fn lock_table(&self, txn: TxnId, table: TableId, mode: LockMode) -> Result<()> {
        let mut tables = self.table_shard_for(table).lock();
        let _scope = GuardScope::enter();
        let holders = tables.entry(table).or_default();
        if holders
            .iter()
            .any(|(t, m)| *t != txn && !m.is_compatible_with(mode))
        {
            return Err(Error::LockWaitTimeout {
                txn,
                record: RecordId::new(table.0, u32::MAX, 0),
            });
        }
        if !holders.iter().any(|(t, m)| *t == txn && m.covers(mode)) {
            holders.push((txn, mode));
            drop(tables);
            self.registry.remember_table(txn, table);
            self.metrics.locks_created.inc();
        }
        Ok(())
    }

    /// Releases a single record lock held by `txn` and grants any waiters
    /// that no longer conflict.
    pub fn release_record_lock(&self, txn: TxnId, record: RecordId) {
        self.release_record_locks(txn, std::slice::from_ref(&record));
    }

    /// [`LockSys::release_record_locks`] counting into the shared metrics.
    pub fn release_record_locks(&self, txn: TxnId, records: &[RecordId]) {
        self.release_record_locks_in(txn, records, &*self.metrics);
    }

    /// Releases a batch of record locks (Bamboo's early lock release):
    /// records are grouped by page so each page's shard mutex is taken once
    /// per page, and the registry bookkeeping drains with one shard lock for
    /// the whole batch.  Release-path counters (`release_shard_locks`,
    /// `locks_released`, grant-scan lengths) go through `sink`.
    pub fn release_record_locks_in<S: MetricsSink + ?Sized>(
        &self,
        txn: TxnId,
        records: &[RecordId],
        sink: &S,
    ) {
        match records {
            [] => return,
            [single] => {
                self.release_page_locks(txn, single.page(), std::iter::once(single.heap_no), sink);
            }
            _ => {
                // Sort the batch page-major (RecordId's ordering) so each
                // page forms one contiguous run — cheaper than a hash-map
                // group-by for statement-sized batches.
                let mut sorted = records.to_vec();
                sorted.sort_unstable();
                for chunk in sorted.chunk_by(|a, b| a.page() == b.page()) {
                    self.release_page_locks(
                        txn,
                        chunk[0].page(),
                        chunk.iter().map(|r| r.heap_no),
                        sink,
                    );
                }
            }
        }
        self.registry.forget_records_in(txn, records, sink);
    }

    /// Removes `txn`'s requests on the given heap_nos of one page under a
    /// single shard-lock acquisition, granting whatever unblocks.
    fn release_page_locks<S: MetricsSink + ?Sized>(
        &self,
        txn: TxnId,
        page_id: PageId,
        heaps: impl IntoIterator<Item = HeapNo>,
        sink: &S,
    ) {
        let mut woken = Vec::new();
        {
            let shard = self.shard_for(page_id);
            let mut guard = shard.lock();
            let _scope = GuardScope::enter();
            sink.on_release_shard_lock();
            let shard_ref = &mut *guard;
            let mut emptied_page = false;
            if let Some(page) = shard_ref.pages.get_mut(&page_id) {
                let had_records = !page.records.is_empty();
                for heap_no in heaps {
                    if let Some(queue) = page.records.get_mut(&heap_no) {
                        queue.remove_requests_of(txn);
                        queue.grant_from_front(&self.graph, sink, &mut woken);
                        if queue.is_empty() {
                            page.records.remove(&heap_no);
                        }
                    }
                }
                emptied_page = had_records && page.records.is_empty();
            }
            if emptied_page && self.config.shell_sweep_limit.is_some() {
                shard_ref.empty_shells += 1;
                self.maybe_sweep_shells(shard_ref);
            }
        }
        for event in woken {
            event.set();
        }
    }

    /// [`LockSys::release_all`] counting into the shared metrics.
    pub fn release_all(&self, txn: TxnId) {
        self.release_all_in(txn, &*self.metrics);
    }

    /// Releases every lock `txn` holds (and abandons any waits), granting
    /// whatever unblocks.  Called at commit and rollback.  The registry hands
    /// back the transaction's records pre-grouped by page, so each page's
    /// shard mutex is taken at most once, and table release visits only the
    /// tables it actually locked — no global mutex, no full-table scan.
    /// Release-path counters go through `sink` (the engine passes the
    /// transaction's metrics scratch).
    pub fn release_all_in<S: MetricsSink + ?Sized>(&self, txn: TxnId, sink: &S) {
        let Some(locks) = self.registry.take_all_in(txn, sink) else {
            self.graph.remove_txn(txn);
            return;
        };
        for (page_id, records) in locks.page_groups() {
            self.release_page_locks(txn, page_id, records.iter().map(|r| r.heap_no), sink);
        }
        for table in &locks.tables {
            let mut tables = self.table_shard_for(*table).lock();
            if let Some(holders) = tables.get_mut(table) {
                holders.retain(|(t, _)| *t != txn);
                if holders.is_empty() {
                    tables.remove(table);
                }
            }
        }
        self.graph.remove_txn(txn);
    }

    /// Length of the wait queue (waiting requests only) on a record — the
    /// paper's hotspot-detection signal (§4.1).
    pub fn wait_queue_len(&self, record: RecordId) -> usize {
        let shard = self.shard_for(record.page());
        let guard = shard.lock();
        guard
            .pages
            .get(&record.page())
            .and_then(|p| p.records.get(&record.heap_no))
            .map(|q| q.waiter_count())
            .unwrap_or(0)
    }

    /// Number of `PageLocks` shells currently retained (empty or not) across
    /// all shards — the quantity the shell sweep bounds.  O(shards);
    /// introspection for tests and capacity monitoring.
    pub fn page_shell_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().pages.len()).sum()
    }

    /// Number of retained *empty* shells across all shards (only maintained
    /// while [`LockSysConfig::shell_sweep_limit`] is set).
    pub fn empty_shell_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().empty_shells).sum()
    }

    /// Number of lock objects currently held or waited on by `txn`.
    pub fn lock_count_of(&self, txn: TxnId) -> usize {
        self.registry.record_count_of(txn)
    }

    /// Transactions currently holding a granted lock on `record`.
    pub fn holders_of(&self, record: RecordId) -> Vec<TxnId> {
        let shard = self.shard_for(record.page());
        let guard = shard.lock();
        guard
            .pages
            .get(&record.page())
            .and_then(|p| p.records.get(&record.heap_no))
            .map(|q| q.holder_ids())
            .unwrap_or_default()
    }

    /// The wait-for graph (exposed for the hot/non-hot deadlock prevention
    /// logic and for tests).
    pub fn wait_for_graph(&self) -> &WaitForGraph {
        &self.graph
    }
}

/// The page-keyed [`QueueAccess`] for the shared wait loop: locks the page's
/// shard, navigates `page → heap_no`, and applies the same prune-and-shell
/// bookkeeping as the release paths when the wait-loop cleanup empties the
/// queue.
struct PageSlot<'a> {
    sys: &'a LockSys,
    record: RecordId,
}

impl QueueAccess for PageSlot<'_> {
    fn with_queue<R>(&self, f: impl FnOnce(&mut RecordQueue) -> R) -> Option<R> {
        let page_id = self.record.page();
        let mut guard = self.sys.shard_for(page_id).lock();
        let _scope = GuardScope::enter();
        let shard = &mut *guard;
        let page = shard.pages.get_mut(&page_id)?;
        let queue = page.records.get_mut(&self.record.heap_no)?;
        let result = f(queue);
        let pruned = queue.is_empty();
        if pruned {
            page.records.remove(&self.record.heap_no);
        }
        let page_empty = page.records.is_empty();
        if pruned && page_empty && self.sys.config.shell_sweep_limit.is_some() {
            shard.empty_shells += 1;
            self.sys.maybe_sweep_shells(shard);
        }
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn sys(policy: DeadlockPolicy, timeout_ms: u64) -> Arc<LockSys> {
        Arc::new(LockSys::new(
            LockSysConfig {
                n_shards: 8,
                deadlock_policy: policy,
                lock_wait_timeout: Duration::from_millis(timeout_ms),
                ..LockSysConfig::default()
            },
            Arc::new(EngineMetrics::new()),
        ))
    }

    const R1: RecordId = RecordId {
        space_id: 1,
        page_no: 0,
        heap_no: 0,
    };
    const R2: RecordId = RecordId {
        space_id: 1,
        page_no: 0,
        heap_no: 1,
    };

    #[test]
    fn exclusive_lock_is_granted_and_released() {
        let s = sys(DeadlockPolicy::Detect, 100);
        s.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        assert_eq!(s.holders_of(R1), vec![TxnId(1)]);
        assert_eq!(s.lock_count_of(TxnId(1)), 1);
        s.release_all(TxnId(1));
        assert!(s.holders_of(R1).is_empty());
        assert_eq!(s.lock_count_of(TxnId(1)), 0);
        assert!(
            s.registry().is_empty(),
            "registry must drain after release_all"
        );
    }

    #[test]
    fn shared_locks_coexist_but_block_exclusive() {
        let s = sys(DeadlockPolicy::TimeoutOnly, 50);
        s.lock_record(TxnId(1), R1, LockMode::Shared).unwrap();
        s.lock_record(TxnId(2), R1, LockMode::Shared).unwrap();
        assert_eq!(s.holders_of(R1).len(), 2);
        let err = s
            .lock_record(TxnId(3), R1, LockMode::Exclusive)
            .unwrap_err();
        assert!(matches!(err, Error::LockWaitTimeout { .. }));
    }

    #[test]
    fn reentrant_lock_does_not_create_new_object() {
        let s = sys(DeadlockPolicy::Detect, 100);
        let metrics_before = {
            s.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
            s.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
            s.lock_record(TxnId(1), R1, LockMode::Shared).unwrap();
            s.holders_of(R1).len()
        };
        assert_eq!(metrics_before, 1);
    }

    #[test]
    fn lock_upgrade_succeeds_when_sole_holder() {
        let s = sys(DeadlockPolicy::Detect, 100);
        s.lock_record(TxnId(1), R1, LockMode::Shared).unwrap();
        s.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        // Another reader must now block.
        let err = {
            let s2 = sys(DeadlockPolicy::TimeoutOnly, 30);
            s2.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
            s2.lock_record(TxnId(2), R1, LockMode::Shared).unwrap_err()
        };
        assert!(matches!(err, Error::LockWaitTimeout { .. }));
    }

    #[test]
    fn waiter_is_woken_when_holder_releases() {
        let s = sys(DeadlockPolicy::Detect, 2_000);
        s.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        let s2 = Arc::clone(&s);
        let waiter = thread::spawn(move || s2.lock_record(TxnId(2), R1, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(30));
        assert_eq!(s.wait_queue_len(R1), 1);
        s.release_all(TxnId(1));
        waiter.join().unwrap().unwrap();
        assert_eq!(s.holders_of(R1), vec![TxnId(2)]);
    }

    #[test]
    fn waiters_are_granted_in_fifo_order() {
        let s = sys(DeadlockPolicy::Detect, 5_000);
        s.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for t in 2..=5u64 {
            let s2 = Arc::clone(&s);
            let order2 = Arc::clone(&order);
            handles.push(thread::spawn(move || {
                s2.lock_record(TxnId(t), R1, LockMode::Exclusive).unwrap();
                order2.lock().push(t);
                std::thread::sleep(Duration::from_millis(5));
                s2.release_all(TxnId(t));
            }));
            // Stagger arrivals so queue order is deterministic.
            thread::sleep(Duration::from_millis(20));
        }
        s.release_all(TxnId(1));
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn deadlock_is_detected() {
        let s = sys(DeadlockPolicy::Detect, 5_000);
        s.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        s.lock_record(TxnId(2), R2, LockMode::Exclusive).unwrap();
        let s2 = Arc::clone(&s);
        // T1 waits for R2 (held by T2).
        let h = thread::spawn(move || s2.lock_record(TxnId(1), R2, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(50));
        // T2 requesting R1 closes the cycle.  Under the weight-based policy
        // T2 is the victim: it holds 1 registry-tracked lock against T1's 2
        // (T1's wait on R2 is registry-tracked too).
        let err = s
            .lock_record(TxnId(2), R1, LockMode::Exclusive)
            .unwrap_err();
        assert!(matches!(err, Error::Deadlock { txn: TxnId(2) }));
        // Let T1 proceed by releasing T2's locks (as its rollback would).
        s.release_all(TxnId(2));
        h.join().unwrap().unwrap();
        s.release_all(TxnId(1));
    }

    #[test]
    fn requester_policy_always_sacrifices_the_requester() {
        let s = Arc::new(LockSys::new(
            LockSysConfig {
                n_shards: 8,
                deadlock_policy: DeadlockPolicy::Detect,
                victim_policy: VictimPolicy::Requester,
                lock_wait_timeout: Duration::from_millis(5_000),
                shell_sweep_limit: None,
            },
            Arc::new(EngineMetrics::new()),
        ));
        s.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        s.lock_record(TxnId(2), R2, LockMode::Exclusive).unwrap();
        let s2 = Arc::clone(&s);
        let h = thread::spawn(move || s2.lock_record(TxnId(1), R2, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(50));
        let err = s
            .lock_record(TxnId(2), R1, LockMode::Exclusive)
            .unwrap_err();
        assert!(matches!(err, Error::Deadlock { txn: TxnId(2) }));
        s.release_all(TxnId(2));
        h.join().unwrap().unwrap();
        s.release_all(TxnId(1));
    }

    #[test]
    fn heavier_requester_dooms_the_lighter_waiter() {
        // T1 holds only R2 and waits for R1; T2 holds R1 plus two ballast
        // locks.  When T2 closes the cycle the weight-based policy must doom
        // T1 (1+1 registry entries vs T2's 3) — the requester keeps waiting
        // and is granted once T1's rollback releases R2... but T1 only
        // *waited* on R1, so T2's grant comes from T1's abandoned wait.
        let s = sys(DeadlockPolicy::Detect, 5_000);
        let ballast_a = RecordId::new(2, 0, 0);
        let ballast_b = RecordId::new(2, 0, 1);
        s.lock_record(TxnId(2), R1, LockMode::Exclusive).unwrap();
        s.lock_record(TxnId(2), ballast_a, LockMode::Exclusive)
            .unwrap();
        s.lock_record(TxnId(2), ballast_b, LockMode::Exclusive)
            .unwrap();
        s.lock_record(TxnId(1), R2, LockMode::Exclusive).unwrap();
        let s1 = Arc::clone(&s);
        // T1 waits for R1 (held by T2): the remote victim-to-be.
        let h = thread::spawn(move || s1.lock_record(TxnId(1), R1, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(50));
        // T2 requesting R2 closes the cycle; T1 is lighter (2 entries vs 4)
        // and must be doomed remotely while T2 keeps waiting.
        let s2 = Arc::clone(&s);
        let requester = thread::spawn(move || s2.lock_record(TxnId(2), R2, LockMode::Exclusive));
        let victim_err = h.join().unwrap().unwrap_err();
        assert!(
            matches!(victim_err, Error::Deadlock { txn: TxnId(1) }),
            "doomed waiter must abort with a deadlock error, got {victim_err:?}"
        );
        // T1's rollback releases R2, unblocking the requester.
        s.release_all(TxnId(1));
        requester.join().unwrap().unwrap();
        s.release_all(TxnId(2));
        assert!(s.registry().is_empty());
        assert_eq!(s.wait_for_graph().waiting_count(), 0);
    }

    #[test]
    fn timeout_policy_never_reports_deadlock() {
        let s = sys(DeadlockPolicy::TimeoutOnly, 40);
        s.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        s.lock_record(TxnId(2), R2, LockMode::Exclusive).unwrap();
        let s2 = Arc::clone(&s);
        let h = thread::spawn(move || s2.lock_record(TxnId(1), R2, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(10));
        let err = s
            .lock_record(TxnId(2), R1, LockMode::Exclusive)
            .unwrap_err();
        assert!(matches!(err, Error::LockWaitTimeout { .. }));
        // The other waiter also times out (nobody released).
        assert!(matches!(
            h.join().unwrap().unwrap_err(),
            Error::LockWaitTimeout { .. }
        ));
    }

    #[test]
    fn table_intention_locks_are_compatible() {
        let s = sys(DeadlockPolicy::Detect, 100);
        s.lock_table(TxnId(1), TableId(1), LockMode::IntentionExclusive)
            .unwrap();
        s.lock_table(TxnId(2), TableId(1), LockMode::IntentionExclusive)
            .unwrap();
        s.lock_table(TxnId(3), TableId(1), LockMode::IntentionShared)
            .unwrap();
        s.release_all(TxnId(1));
        s.release_all(TxnId(2));
        s.release_all(TxnId(3));
        assert!(s.registry().is_empty());
    }

    #[test]
    fn release_single_record_keeps_other_locks() {
        let s = sys(DeadlockPolicy::Detect, 100);
        s.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        s.lock_record(TxnId(1), R2, LockMode::Exclusive).unwrap();
        s.release_record_lock(TxnId(1), R1);
        assert!(s.holders_of(R1).is_empty());
        assert_eq!(s.holders_of(R2), vec![TxnId(1)]);
        assert_eq!(s.lock_count_of(TxnId(1)), 1);
    }

    #[test]
    fn batched_release_spans_pages_and_wakes_waiters() {
        let s = sys(DeadlockPolicy::TimeoutOnly, 2_000);
        // Three records over two pages, all held by T1.
        let other_page = RecordId::new(1, 9, 4);
        for r in [R1, R2, other_page] {
            s.lock_record(TxnId(1), r, LockMode::Exclusive).unwrap();
        }
        let s2 = Arc::clone(&s);
        let w = thread::spawn(move || s2.lock_record(TxnId(2), other_page, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(30));
        assert_eq!(s.wait_queue_len(other_page), 1);
        // One batched call releases R1 and the other page's record: the
        // waiter must be granted, R2 must stay held, registry must drop to 1.
        s.release_record_locks(TxnId(1), &[R1, other_page]);
        w.join().unwrap().unwrap();
        assert_eq!(s.holders_of(other_page), vec![TxnId(2)]);
        assert!(s.holders_of(R1).is_empty());
        assert_eq!(s.holders_of(R2), vec![TxnId(1)]);
        assert_eq!(s.lock_count_of(TxnId(1)), 1);
        s.release_all(TxnId(1));
        s.release_all(TxnId(2));
        assert!(s.registry().is_empty());
    }

    #[test]
    fn wait_queue_length_reflects_waiters() {
        let s = sys(DeadlockPolicy::TimeoutOnly, 300);
        s.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        let mut handles = Vec::new();
        for t in 2..=4u64 {
            let s2 = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                let _ = s2.lock_record(TxnId(t), R1, LockMode::Exclusive);
                s2.release_all(TxnId(t));
            }));
        }
        thread::sleep(Duration::from_millis(50));
        assert_eq!(s.wait_queue_len(R1), 3);
        s.release_all(TxnId(1));
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn timeout_of_front_waiter_grants_compatible_waiter_behind_it() {
        let s = sys(DeadlockPolicy::TimeoutOnly, 80);
        s.lock_record(TxnId(1), R1, LockMode::Shared).unwrap();
        // T2 queues an Exclusive that will time out (blocked by T1's Shared).
        let s2 = Arc::clone(&s);
        let w2 = thread::spawn(move || s2.lock_record(TxnId(2), R1, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(30));
        // T3 queues a Shared behind T2: compatible with T1, blocked only by
        // the earlier waiting Exclusive (FIFO fairness).  T2's timeout
        // cleanup must grant it — T3's own deadline is 30 ms later.
        let s3 = Arc::clone(&s);
        let w3 = thread::spawn(move || s3.lock_record(TxnId(3), R1, LockMode::Shared));
        assert!(matches!(
            w2.join().unwrap().unwrap_err(),
            Error::LockWaitTimeout { .. }
        ));
        w3.join().unwrap().unwrap();
        assert_eq!(s.holders_of(R1).len(), 2, "T1 and T3 share the record");
        s.release_all(TxnId(1));
        s.release_all(TxnId(3));
        assert!(s.registry().is_empty());
    }

    #[test]
    fn timed_out_upgrade_keeps_granted_lock_and_releases_cleanly() {
        let s = sys(DeadlockPolicy::TimeoutOnly, 40);
        s.lock_record(TxnId(1), R1, LockMode::Shared).unwrap();
        s.lock_record(TxnId(2), R1, LockMode::Shared).unwrap();
        // T1's upgrade to Exclusive blocks on T2's Shared and times out —
        // but its granted Shared lock must survive, registry included.
        let err = s
            .lock_record(TxnId(1), R1, LockMode::Exclusive)
            .unwrap_err();
        assert!(matches!(err, Error::LockWaitTimeout { .. }));
        assert_eq!(s.holders_of(R1).len(), 2, "both Shared holders must remain");
        assert_eq!(
            s.lock_count_of(TxnId(1)),
            1,
            "registry must still track T1's lock"
        );
        // Release-all must actually remove the surviving granted lock.
        s.release_all(TxnId(1));
        s.release_all(TxnId(2));
        assert!(s.holders_of(R1).is_empty(), "no phantom holder may remain");
        s.lock_record(TxnId(3), R1, LockMode::Exclusive).unwrap();
        s.release_all(TxnId(3));
        assert!(s.registry().is_empty());
    }

    #[test]
    fn shell_sweep_bounds_retained_pages() {
        let s = LockSys::new(
            LockSysConfig {
                n_shards: 1,
                deadlock_policy: DeadlockPolicy::TimeoutOnly,
                lock_wait_timeout: Duration::from_millis(50),
                shell_sweep_limit: Some(4),
                ..LockSysConfig::default()
            },
            Arc::new(EngineMetrics::new()),
        );
        for page in 0..100u32 {
            let r = RecordId::new(1, page, 0);
            s.lock_record(TxnId(1), r, LockMode::Exclusive).unwrap();
            s.release_record_lock(TxnId(1), r);
        }
        assert!(
            s.page_shell_count() <= 5,
            "sweep must bound empty shells, kept {}",
            s.page_shell_count()
        );
        assert!(s.empty_shell_count() <= 5);
        // Re-locking a surviving or swept page must still work normally.
        s.lock_record(TxnId(2), RecordId::new(1, 0, 0), LockMode::Exclusive)
            .unwrap();
        s.release_all(TxnId(2));
        assert!(s.registry().is_empty());

        // Default config: every page's shell is retained for steady-state
        // allocation reuse.
        let retain = sys(DeadlockPolicy::TimeoutOnly, 50);
        for page in 0..100u32 {
            let r = RecordId::new(1, page, 0);
            retain
                .lock_record(TxnId(1), r, LockMode::Exclusive)
                .unwrap();
            retain.release_record_lock(TxnId(1), r);
        }
        assert_eq!(retain.page_shell_count(), 100);
    }

    #[test]
    fn uncontended_grant_allocates_no_event_and_tracks_release_metrics() {
        let metrics = Arc::new(EngineMetrics::new());
        let s = LockSys::new(
            LockSysConfig {
                n_shards: 8,
                deadlock_policy: DeadlockPolicy::Detect,
                lock_wait_timeout: Duration::from_millis(100),
                ..LockSysConfig::default()
            },
            Arc::clone(&metrics),
        );
        s.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        s.lock_record(TxnId(1), R2, LockMode::Exclusive).unwrap();
        // The request objects exist (vanilla behaviour) but no waits, hence no
        // events and live registry entries for exactly the two records.
        assert_eq!(metrics.lock_waits.get(), 0);
        assert_eq!(s.registry().total_entries(), 2);
        s.release_all(TxnId(1));
        assert_eq!(s.registry().total_entries(), 0);
        assert_eq!(metrics.locks_released.get(), 2);
    }

    #[test]
    fn grant_scan_length_is_per_record_not_per_page() {
        let metrics = Arc::new(EngineMetrics::new());
        let s = LockSys::new(
            LockSysConfig {
                n_shards: 8,
                deadlock_policy: DeadlockPolicy::TimeoutOnly,
                lock_wait_timeout: Duration::from_millis(200),
                ..LockSysConfig::default()
            },
            Arc::clone(&metrics),
        );
        // Populate one page with 100 granted locks on other heap_nos.
        for heap in 10..110u16 {
            s.lock_record(
                TxnId(heap as u64),
                RecordId::new(1, 0, heap),
                LockMode::Exclusive,
            )
            .unwrap();
        }
        // A release that grants a real waiter on R1: the grant scan must
        // examine only that record's queue (one waiter), not the 100 other
        // requests on the page.
        let s = Arc::new(s);
        s.lock_record(TxnId(500), R1, LockMode::Exclusive).unwrap();
        let s2 = Arc::clone(&s);
        let w = thread::spawn(move || s2.lock_record(TxnId(501), R1, LockMode::Exclusive));
        while s.wait_queue_len(R1) != 1 {
            thread::sleep(Duration::from_millis(1));
        }
        s.release_record_lock(TxnId(500), R1);
        w.join().unwrap().unwrap();
        assert!(
            metrics.grant_scan_len.max_micros() <= 2,
            "grant scan examined {} requests — it must not scale with page population",
            metrics.grant_scan_len.max_micros()
        );
        s.release_all(TxnId(501));
    }
}
