//! The vanilla, InnoDB-style lock system (`lock_sys`) — the MySQL baseline.
//!
//! Structure (paper §2.2): a hash table keyed by `(space_id, page_no)` whose
//! value is the list of lock requests (`lock_t`) on that page.  Every
//! acquisition creates a request object, even without contention — the first
//! shortcoming §3.1.1 calls out.  The table is sharded, but a hot page still
//! funnels every acquisition, release, grant scan *and* deadlock check
//! through one shard mutex, which is the second shortcoming (Figure 6c).
//!
//! What is deliberately **kept** faithful to the baseline: the page-level
//! sharding, the per-acquisition request object, and the FIFO queue scan.
//! What is decentralized (this engine has to scale even in baseline mode):
//!
//! * per-transaction bookkeeping lives in the sharded
//!   [`TxnLockRegistry`](crate::registry::TxnLockRegistry) instead of one
//!   global `txn_locks` mutex;
//! * table locks are sharded by `TableId`, and release-all visits only the
//!   tables the transaction actually locked (tracked by the registry)
//!   instead of scanning every table's holder list;
//! * shard mutexes are cache-padded, and an uncontended grant allocates no
//!   `OsEvent` — events exist only for requests that actually wait, drawn
//!   from a thread-local pool ([`OsEvent::acquire_pooled`]).
//!
//! Waiting requests park on an [`OsEvent`]; the releasing transaction scans
//! the page queue in FIFO order and grants whatever no longer conflicts.
//! Deadlock handling is configurable ([`DeadlockPolicy`]): wait-for-graph
//! detection run at every wait (MySQL default) or a plain timeout (what the
//! paper's hotspot paths prefer, §3.2).

use crate::deadlock::WaitForGraph;
use crate::event::{OsEvent, WaitOutcome};
use crate::modes::LockMode;
use crate::registry::TxnLockRegistry;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;
use txsql_common::fxhash::{self, FxHashMap};
use txsql_common::ids::PageId;
use txsql_common::metrics::EngineMetrics;
use txsql_common::pad::CachePadded;
use txsql_common::time::SimInstant;
use txsql_common::{Error, HeapNo, RecordId, Result, TableId, TxnId};

/// Number of table-lock shards.  Tables are few and intention modes almost
/// never conflict; 16 shards removes the global choke point without bloating
/// the structure.
const TABLE_SHARDS: usize = 16;

/// How the lock system deals with deadlocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlockPolicy {
    /// Run wait-for-graph detection on every wait (InnoDB default).
    Detect,
    /// Rely on lock-wait timeouts only (no detection).
    TimeoutOnly,
}

/// Configuration of [`LockSys`].
#[derive(Debug, Clone)]
pub struct LockSysConfig {
    /// Number of hash shards (InnoDB uses a small fixed number; the paper's
    /// baseline keeps page-level sharding).
    pub n_shards: usize,
    /// Deadlock handling policy.
    pub deadlock_policy: DeadlockPolicy,
    /// Lock wait timeout.
    pub lock_wait_timeout: Duration,
}

impl Default for LockSysConfig {
    fn default() -> Self {
        Self {
            n_shards: 64,
            deadlock_policy: DeadlockPolicy::Detect,
            lock_wait_timeout: Duration::from_millis(200),
        }
    }
}

/// A `lock_t`-like request.  `event` is `None` for requests granted without
/// waiting — the uncontended path allocates no wake-up machinery.
#[derive(Debug)]
struct LockRequest {
    txn: TxnId,
    heap_no: HeapNo,
    mode: LockMode,
    granted: bool,
    event: Option<Arc<OsEvent>>,
}

#[derive(Debug, Default)]
struct PageLocks {
    requests: Vec<LockRequest>,
}

#[derive(Debug, Default)]
struct Shard {
    pages: FxHashMap<PageId, PageLocks>,
}

type TableShard = FxHashMap<TableId, Vec<(TxnId, LockMode)>>;

/// The page-sharded lock system.
#[derive(Debug)]
pub struct LockSys {
    config: LockSysConfig,
    shards: Box<[CachePadded<Mutex<Shard>>]>,
    graph: WaitForGraph,
    /// Sharded per-transaction bookkeeping — needed for release-all.
    registry: Arc<TxnLockRegistry>,
    /// Table-level locks (intention modes in practice), sharded by table.
    table_shards: Box<[CachePadded<Mutex<TableShard>>]>,
    metrics: Arc<EngineMetrics>,
}

impl LockSys {
    /// Creates a lock system with its own private lock registry.
    pub fn new(config: LockSysConfig, metrics: Arc<EngineMetrics>) -> Self {
        let registry = Arc::new(TxnLockRegistry::with_metrics(
            config.n_shards,
            Arc::clone(&metrics),
        ));
        Self::with_registry(config, metrics, registry)
    }

    /// Creates a lock system sharing an externally owned registry (the
    /// engine threads the same registry through `TrxSys` so transaction
    /// teardown can verify bookkeeping drained).
    pub fn with_registry(
        config: LockSysConfig,
        metrics: Arc<EngineMetrics>,
        registry: Arc<TxnLockRegistry>,
    ) -> Self {
        let n = config.n_shards.max(1);
        Self {
            config,
            shards: (0..n)
                .map(|_| CachePadded::new(Mutex::new(Shard::default())))
                .collect(),
            graph: WaitForGraph::new(),
            registry,
            table_shards: (0..TABLE_SHARDS)
                .map(|_| CachePadded::new(Mutex::new(TableShard::default())))
                .collect(),
            metrics,
        }
    }

    /// The configured lock-wait timeout.
    pub fn lock_wait_timeout(&self) -> Duration {
        self.config.lock_wait_timeout
    }

    /// The per-transaction lock registry backing release-all.
    pub fn registry(&self) -> &Arc<TxnLockRegistry> {
        &self.registry
    }

    #[inline]
    fn shard_for(&self, page: PageId) -> &Mutex<Shard> {
        let key = ((page.space_id as u64) << 32) | page.page_no as u64;
        let idx = (fxhash::hash_u64(key) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    #[inline]
    fn table_shard_for(&self, table: TableId) -> &Mutex<TableShard> {
        let idx = (fxhash::hash_u64(table.0 as u64) % TABLE_SHARDS as u64) as usize;
        &self.table_shards[idx]
    }

    /// Transactions whose *granted* or earlier-queued requests conflict with a
    /// request by `txn` for (`heap_no`, `mode`).  Mirrors InnoDB's
    /// `lock_rec_has_to_wait_in_queue`: the scan is O(queue length) and runs
    /// under the shard mutex.
    fn conflicting_txns(
        page: &PageLocks,
        txn: TxnId,
        heap_no: HeapNo,
        mode: LockMode,
    ) -> Vec<TxnId> {
        let mut blockers = Vec::new();
        for req in &page.requests {
            if req.txn == txn || req.heap_no != heap_no {
                continue;
            }
            if !req.mode.is_compatible_with(mode) {
                blockers.push(req.txn);
            }
        }
        blockers
    }

    /// Acquires a record lock, blocking until granted, deadlock or timeout.
    pub fn lock_record(&self, txn: TxnId, record: RecordId, mode: LockMode) -> Result<()> {
        debug_assert!(mode.is_record_mode());
        let event;
        {
            let shard = self.shard_for(record.page());
            let mut guard = shard.lock();
            let page = guard.pages.entry(record.page()).or_default();

            // Re-entrant fast path: an existing granted lock that covers the
            // request needs no new lock object.
            let existing_idx = page
                .requests
                .iter()
                .position(|r| r.txn == txn && r.heap_no == record.heap_no && r.granted);
            if let Some(idx) = existing_idx {
                if page.requests[idx].mode.covers(mode) {
                    return Ok(());
                }
            }

            // One conflict scan serves both the upgrade and the fresh-request
            // paths (it runs under the hottest mutex in the system).
            let blockers = Self::conflicting_txns(page, txn, record.heap_no, mode);
            if let Some(idx) = existing_idx {
                // Lock upgrade (S -> X) with no other holders: upgrade in place.
                if blockers.is_empty() {
                    page.requests[idx].mode = LockMode::Exclusive;
                    return Ok(());
                }
            }
            if blockers.is_empty() {
                // Uncontended grant: no OsEvent, no global bookkeeping — just
                // the page queue entry and the transaction's registry shard
                // (updated after the page guard drops).
                self.metrics.locks_created.inc();
                page.requests.push(LockRequest {
                    txn,
                    heap_no: record.heap_no,
                    mode,
                    granted: true,
                    event: None,
                });
                drop(guard);
                self.registry.remember_record(txn, record);
                return Ok(());
            }

            // Must wait.  Deadlock victims return before any lock object or
            // wait is recorded, so the Figure-6d counters stay truthful.
            if self.config.deadlock_policy == DeadlockPolicy::Detect {
                self.metrics.deadlock_checks.inc();
                self.graph.set_waits_for(txn, blockers.iter().copied());
                if self.graph.find_cycle_from(txn).is_some() {
                    self.graph.clear_waits_of(txn);
                    return Err(Error::Deadlock { txn });
                }
            }
            self.metrics.locks_created.inc();
            event = OsEvent::acquire_pooled();
            page.requests.push(LockRequest {
                txn,
                heap_no: record.heap_no,
                mode,
                granted: false,
                event: Some(Arc::clone(&event)),
            });
            self.metrics.lock_waits.inc();
        }
        self.registry.remember_record(txn, record);

        // Park outside the shard mutex.  SimInstant: under deterministic
        // simulation the deadline lives on the virtual clock, so timeout
        // schedules are explorable.
        let wait_start = SimInstant::now();
        let deadline = wait_start + self.config.lock_wait_timeout;
        loop {
            let remaining = deadline.saturating_duration_since(SimInstant::now());
            let outcome = if remaining.is_zero() {
                WaitOutcome::TimedOut
            } else {
                event.wait_for(remaining)
            };
            let waited = wait_start.elapsed();
            let shard = self.shard_for(record.page());
            let mut guard = shard.lock();
            let page = guard.pages.entry(record.page()).or_default();
            let granted = page.requests.iter().any(|r| {
                r.txn == txn && r.heap_no == record.heap_no && r.granted && r.mode.covers(mode)
            });
            if granted {
                drop(guard);
                self.metrics.lock_wait_latency.record(waited);
                self.graph.clear_waits_of(txn);
                OsEvent::recycle(event);
                return Ok(());
            }
            if outcome == WaitOutcome::TimedOut {
                // Give up: remove our waiting request, then re-run the grant
                // scan — a waiter queued behind us may be grantable now that
                // our conflicting request is gone.
                page.requests
                    .retain(|r| !(r.txn == txn && r.heap_no == record.heap_no && !r.granted));
                Self::grant_waiters(page, record.heap_no, &self.graph);
                // A timed-out *upgrade* still holds its original granted
                // request — the registry entry must survive for release-all.
                let still_holds = page
                    .requests
                    .iter()
                    .any(|r| r.txn == txn && r.heap_no == record.heap_no);
                if page.requests.is_empty() {
                    guard.pages.remove(&record.page());
                }
                drop(guard);
                if !still_holds {
                    self.registry.forget_record(txn, record);
                }
                self.metrics.lock_wait_latency.record(waited);
                self.graph.clear_waits_of(txn);
                OsEvent::recycle(event);
                return Err(Error::LockWaitTimeout { txn, record });
            }
            // Spurious wake-up (event set but our grant was raced away): reset
            // and wait again.
            event.reset();
        }
    }

    /// Acquires a table lock.  Intention modes never conflict in the paper's
    /// workloads; a genuine conflict is reported as an immediate timeout
    /// rather than blocking (full table locks are outside the evaluated
    /// scenarios).
    pub fn lock_table(&self, txn: TxnId, table: TableId, mode: LockMode) -> Result<()> {
        let mut tables = self.table_shard_for(table).lock();
        let holders = tables.entry(table).or_default();
        if holders
            .iter()
            .any(|(t, m)| *t != txn && !m.is_compatible_with(mode))
        {
            return Err(Error::LockWaitTimeout {
                txn,
                record: RecordId::new(table.0, u32::MAX, 0),
            });
        }
        if !holders.iter().any(|(t, m)| *t == txn && m.covers(mode)) {
            holders.push((txn, mode));
            drop(tables);
            self.registry.remember_table(txn, table);
            self.metrics.locks_created.inc();
        }
        Ok(())
    }

    /// Releases a single record lock held by `txn` and grants any waiters that
    /// no longer conflict.  Used by Bamboo's early lock release.
    pub fn release_record_lock(&self, txn: TxnId, record: RecordId) {
        let shard = self.shard_for(record.page());
        let mut guard = shard.lock();
        if let Some(page) = guard.pages.get_mut(&record.page()) {
            page.requests
                .retain(|r| !(r.txn == txn && r.heap_no == record.heap_no));
            Self::grant_waiters(page, record.heap_no, &self.graph);
            if page.requests.is_empty() {
                guard.pages.remove(&record.page());
            }
        }
        drop(guard);
        self.registry.forget_record(txn, record);
    }

    /// Releases every lock `txn` holds (and abandons any waits), granting
    /// whatever unblocks.  Called at commit and rollback.  Walks only the
    /// transaction's own registry shard and the shards of the records and
    /// tables it actually touched — no global mutex, no full-table scan.
    pub fn release_all(&self, txn: TxnId) {
        let Some(locks) = self.registry.take_all(txn) else {
            self.graph.remove_txn(txn);
            return;
        };
        for record in &locks.records {
            let shard = self.shard_for(record.page());
            let mut guard = shard.lock();
            if let Some(page) = guard.pages.get_mut(&record.page()) {
                page.requests
                    .retain(|r| !(r.txn == txn && r.heap_no == record.heap_no));
                Self::grant_waiters(page, record.heap_no, &self.graph);
                if page.requests.is_empty() {
                    guard.pages.remove(&record.page());
                }
            }
        }
        for table in &locks.tables {
            let mut tables = self.table_shard_for(*table).lock();
            if let Some(holders) = tables.get_mut(table) {
                holders.retain(|(t, _)| *t != txn);
                if holders.is_empty() {
                    tables.remove(table);
                }
            }
        }
        self.graph.remove_txn(txn);
    }

    /// FIFO grant scan over one heap position.
    fn grant_waiters(page: &mut PageLocks, heap_no: HeapNo, graph: &WaitForGraph) {
        // Collect currently granted modes per transaction on this heap_no.
        let mut newly_granted: Vec<Arc<OsEvent>> = Vec::new();
        for i in 0..page.requests.len() {
            if page.requests[i].heap_no != heap_no || page.requests[i].granted {
                continue;
            }
            let candidate_txn = page.requests[i].txn;
            let candidate_mode = page.requests[i].mode;
            let conflicts = page
                .requests
                .iter()
                .take(i)
                .chain(page.requests.iter().skip(i + 1))
                .any(|r| {
                    r.heap_no == heap_no
                        && r.txn != candidate_txn
                        && r.granted
                        && !r.mode.is_compatible_with(candidate_mode)
                });
            // FIFO fairness: an earlier waiting request from another txn that
            // conflicts blocks this grant too.
            let earlier_conflict = page.requests.iter().take(i).any(|r| {
                r.heap_no == heap_no
                    && r.txn != candidate_txn
                    && !r.granted
                    && !r.mode.is_compatible_with(candidate_mode)
            });
            if !conflicts && !earlier_conflict {
                page.requests[i].granted = true;
                graph.clear_waits_of(candidate_txn);
                // Hand the event back to the waiter: the request no longer
                // needs it, and the waiter recycles its own Arc on wake-up.
                if let Some(event) = page.requests[i].event.take() {
                    newly_granted.push(event);
                }
            }
        }
        for event in newly_granted {
            event.set();
        }
    }

    /// Length of the wait queue (waiting requests only) on a record — the
    /// paper's hotspot-detection signal (§4.1).
    pub fn wait_queue_len(&self, record: RecordId) -> usize {
        let shard = self.shard_for(record.page());
        let guard = shard.lock();
        guard
            .pages
            .get(&record.page())
            .map(|p| {
                p.requests
                    .iter()
                    .filter(|r| r.heap_no == record.heap_no && !r.granted)
                    .count()
            })
            .unwrap_or(0)
    }

    /// Number of lock objects currently held or waited on by `txn`.
    pub fn lock_count_of(&self, txn: TxnId) -> usize {
        self.registry.record_count_of(txn)
    }

    /// Transactions currently holding a granted lock on `record`.
    pub fn holders_of(&self, record: RecordId) -> Vec<TxnId> {
        let shard = self.shard_for(record.page());
        let guard = shard.lock();
        guard
            .pages
            .get(&record.page())
            .map(|p| {
                p.requests
                    .iter()
                    .filter(|r| r.heap_no == record.heap_no && r.granted)
                    .map(|r| r.txn)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The wait-for graph (exposed for the hot/non-hot deadlock prevention
    /// logic and for tests).
    pub fn wait_for_graph(&self) -> &WaitForGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn sys(policy: DeadlockPolicy, timeout_ms: u64) -> Arc<LockSys> {
        Arc::new(LockSys::new(
            LockSysConfig {
                n_shards: 8,
                deadlock_policy: policy,
                lock_wait_timeout: Duration::from_millis(timeout_ms),
            },
            Arc::new(EngineMetrics::new()),
        ))
    }

    const R1: RecordId = RecordId {
        space_id: 1,
        page_no: 0,
        heap_no: 0,
    };
    const R2: RecordId = RecordId {
        space_id: 1,
        page_no: 0,
        heap_no: 1,
    };

    #[test]
    fn exclusive_lock_is_granted_and_released() {
        let s = sys(DeadlockPolicy::Detect, 100);
        s.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        assert_eq!(s.holders_of(R1), vec![TxnId(1)]);
        assert_eq!(s.lock_count_of(TxnId(1)), 1);
        s.release_all(TxnId(1));
        assert!(s.holders_of(R1).is_empty());
        assert_eq!(s.lock_count_of(TxnId(1)), 0);
        assert!(
            s.registry().is_empty(),
            "registry must drain after release_all"
        );
    }

    #[test]
    fn shared_locks_coexist_but_block_exclusive() {
        let s = sys(DeadlockPolicy::TimeoutOnly, 50);
        s.lock_record(TxnId(1), R1, LockMode::Shared).unwrap();
        s.lock_record(TxnId(2), R1, LockMode::Shared).unwrap();
        assert_eq!(s.holders_of(R1).len(), 2);
        let err = s
            .lock_record(TxnId(3), R1, LockMode::Exclusive)
            .unwrap_err();
        assert!(matches!(err, Error::LockWaitTimeout { .. }));
    }

    #[test]
    fn reentrant_lock_does_not_create_new_object() {
        let s = sys(DeadlockPolicy::Detect, 100);
        let metrics_before = {
            s.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
            s.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
            s.lock_record(TxnId(1), R1, LockMode::Shared).unwrap();
            s.holders_of(R1).len()
        };
        assert_eq!(metrics_before, 1);
    }

    #[test]
    fn lock_upgrade_succeeds_when_sole_holder() {
        let s = sys(DeadlockPolicy::Detect, 100);
        s.lock_record(TxnId(1), R1, LockMode::Shared).unwrap();
        s.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        // Another reader must now block.
        let err = {
            let s2 = sys(DeadlockPolicy::TimeoutOnly, 30);
            s2.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
            s2.lock_record(TxnId(2), R1, LockMode::Shared).unwrap_err()
        };
        assert!(matches!(err, Error::LockWaitTimeout { .. }));
    }

    #[test]
    fn waiter_is_woken_when_holder_releases() {
        let s = sys(DeadlockPolicy::Detect, 2_000);
        s.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        let s2 = Arc::clone(&s);
        let waiter = thread::spawn(move || s2.lock_record(TxnId(2), R1, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(30));
        assert_eq!(s.wait_queue_len(R1), 1);
        s.release_all(TxnId(1));
        waiter.join().unwrap().unwrap();
        assert_eq!(s.holders_of(R1), vec![TxnId(2)]);
    }

    #[test]
    fn waiters_are_granted_in_fifo_order() {
        let s = sys(DeadlockPolicy::Detect, 5_000);
        s.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for t in 2..=5u64 {
            let s2 = Arc::clone(&s);
            let order2 = Arc::clone(&order);
            handles.push(thread::spawn(move || {
                s2.lock_record(TxnId(t), R1, LockMode::Exclusive).unwrap();
                order2.lock().push(t);
                std::thread::sleep(Duration::from_millis(5));
                s2.release_all(TxnId(t));
            }));
            // Stagger arrivals so queue order is deterministic.
            thread::sleep(Duration::from_millis(20));
        }
        s.release_all(TxnId(1));
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn deadlock_is_detected() {
        let s = sys(DeadlockPolicy::Detect, 5_000);
        s.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        s.lock_record(TxnId(2), R2, LockMode::Exclusive).unwrap();
        let s2 = Arc::clone(&s);
        // T1 waits for R2 (held by T2).
        let h = thread::spawn(move || s2.lock_record(TxnId(1), R2, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(50));
        // T2 requesting R1 closes the cycle and must be chosen as victim.
        let err = s
            .lock_record(TxnId(2), R1, LockMode::Exclusive)
            .unwrap_err();
        assert!(matches!(err, Error::Deadlock { txn: TxnId(2) }));
        // Let T1 proceed by releasing T2's locks (as its rollback would).
        s.release_all(TxnId(2));
        h.join().unwrap().unwrap();
        s.release_all(TxnId(1));
    }

    #[test]
    fn timeout_policy_never_reports_deadlock() {
        let s = sys(DeadlockPolicy::TimeoutOnly, 40);
        s.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        s.lock_record(TxnId(2), R2, LockMode::Exclusive).unwrap();
        let s2 = Arc::clone(&s);
        let h = thread::spawn(move || s2.lock_record(TxnId(1), R2, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(10));
        let err = s
            .lock_record(TxnId(2), R1, LockMode::Exclusive)
            .unwrap_err();
        assert!(matches!(err, Error::LockWaitTimeout { .. }));
        // The other waiter also times out (nobody released).
        assert!(matches!(
            h.join().unwrap().unwrap_err(),
            Error::LockWaitTimeout { .. }
        ));
    }

    #[test]
    fn table_intention_locks_are_compatible() {
        let s = sys(DeadlockPolicy::Detect, 100);
        s.lock_table(TxnId(1), TableId(1), LockMode::IntentionExclusive)
            .unwrap();
        s.lock_table(TxnId(2), TableId(1), LockMode::IntentionExclusive)
            .unwrap();
        s.lock_table(TxnId(3), TableId(1), LockMode::IntentionShared)
            .unwrap();
        s.release_all(TxnId(1));
        s.release_all(TxnId(2));
        s.release_all(TxnId(3));
        assert!(s.registry().is_empty());
    }

    #[test]
    fn release_single_record_keeps_other_locks() {
        let s = sys(DeadlockPolicy::Detect, 100);
        s.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        s.lock_record(TxnId(1), R2, LockMode::Exclusive).unwrap();
        s.release_record_lock(TxnId(1), R1);
        assert!(s.holders_of(R1).is_empty());
        assert_eq!(s.holders_of(R2), vec![TxnId(1)]);
        assert_eq!(s.lock_count_of(TxnId(1)), 1);
    }

    #[test]
    fn wait_queue_length_reflects_waiters() {
        let s = sys(DeadlockPolicy::TimeoutOnly, 300);
        s.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        let mut handles = Vec::new();
        for t in 2..=4u64 {
            let s2 = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                let _ = s2.lock_record(TxnId(t), R1, LockMode::Exclusive);
                s2.release_all(TxnId(t));
            }));
        }
        thread::sleep(Duration::from_millis(50));
        assert_eq!(s.wait_queue_len(R1), 3);
        s.release_all(TxnId(1));
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn timeout_of_front_waiter_grants_compatible_waiter_behind_it() {
        let s = sys(DeadlockPolicy::TimeoutOnly, 80);
        s.lock_record(TxnId(1), R1, LockMode::Shared).unwrap();
        // T2 queues an Exclusive that will time out (blocked by T1's Shared).
        let s2 = Arc::clone(&s);
        let w2 = thread::spawn(move || s2.lock_record(TxnId(2), R1, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(30));
        // T3 queues a Shared behind T2: compatible with T1, blocked only by
        // the earlier waiting Exclusive (FIFO fairness).  T2's timeout
        // cleanup must grant it — T3's own deadline is 30 ms later.
        let s3 = Arc::clone(&s);
        let w3 = thread::spawn(move || s3.lock_record(TxnId(3), R1, LockMode::Shared));
        assert!(matches!(
            w2.join().unwrap().unwrap_err(),
            Error::LockWaitTimeout { .. }
        ));
        w3.join().unwrap().unwrap();
        assert_eq!(s.holders_of(R1).len(), 2, "T1 and T3 share the record");
        s.release_all(TxnId(1));
        s.release_all(TxnId(3));
        assert!(s.registry().is_empty());
    }

    #[test]
    fn timed_out_upgrade_keeps_granted_lock_and_releases_cleanly() {
        let s = sys(DeadlockPolicy::TimeoutOnly, 40);
        s.lock_record(TxnId(1), R1, LockMode::Shared).unwrap();
        s.lock_record(TxnId(2), R1, LockMode::Shared).unwrap();
        // T1's upgrade to Exclusive blocks on T2's Shared and times out —
        // but its granted Shared lock must survive, registry included.
        let err = s
            .lock_record(TxnId(1), R1, LockMode::Exclusive)
            .unwrap_err();
        assert!(matches!(err, Error::LockWaitTimeout { .. }));
        assert_eq!(s.holders_of(R1).len(), 2, "both Shared holders must remain");
        assert_eq!(
            s.lock_count_of(TxnId(1)),
            1,
            "registry must still track T1's lock"
        );
        // Release-all must actually remove the surviving granted lock.
        s.release_all(TxnId(1));
        s.release_all(TxnId(2));
        assert!(s.holders_of(R1).is_empty(), "no phantom holder may remain");
        s.lock_record(TxnId(3), R1, LockMode::Exclusive).unwrap();
        s.release_all(TxnId(3));
        assert!(s.registry().is_empty());
    }

    #[test]
    fn uncontended_grant_allocates_no_event_and_tracks_release_metrics() {
        let metrics = Arc::new(EngineMetrics::new());
        let s = LockSys::new(
            LockSysConfig {
                n_shards: 8,
                deadlock_policy: DeadlockPolicy::Detect,
                lock_wait_timeout: Duration::from_millis(100),
            },
            Arc::clone(&metrics),
        );
        s.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        s.lock_record(TxnId(1), R2, LockMode::Exclusive).unwrap();
        // The request objects exist (vanilla behaviour) but no waits, hence no
        // events and live registry entries for exactly the two records.
        assert_eq!(metrics.lock_waits.get(), 0);
        assert_eq!(s.registry().total_entries(), 2);
        s.release_all(TxnId(1));
        assert_eq!(s.registry().total_entries(), 0);
        assert_eq!(metrics.locks_released.get(), 2);
    }
}
