//! Sharded wait-for graph deadlock detection.
//!
//! Vanilla 2PL (the MySQL baseline) and the lightweight O1 lock table both
//! run a cycle check every time a transaction starts waiting: the waiter adds
//! edges to every transaction currently blocking it, and a depth-first search
//! from the waiter looks for a path back to itself.  The paper's motivation
//! section (§3.2) observes that the cost of this detection — performed while
//! holding lock-manager mutexes — grows with the length of the wait queue and
//! is one of the reasons hotspot performance collapses; the queue- and
//! group-locking paths therefore bypass it entirely (timeouts / prevention
//! instead).
//!
//! The graph exploits the documented invariant that **a transaction waits
//! for at most one lock at a time**, so each waiter owns exactly one
//! out-edge set.  Those sets are sharded by waiter id across cache-padded
//! mutexes: `set_waits_for` / `clear_waits_of` — the operations on every
//! wait and wake — touch only the waiter's own shard and never contend
//! across unrelated waiters.  Only the cycle DFS and `remove_txn` cross
//! shards, and they take per-shard guards one at a time instead of a single
//! global mutex, so a long detection scan no longer stalls every other
//! waiter in the system.
//!
//! Consequence of per-shard locking: a DFS observes each out-edge set at a
//! (possibly slightly different) instant rather than one global snapshot.
//! Under concurrent edge churn it can therefore report a cycle whose edges
//! never all existed at a single instant (a *spurious* deadlock: the victim
//! aborts and retries — safe, just wasted work), and a cycle it misses is
//! caught by the next waiter's check or by the lock-wait timeout.  Trading
//! occasional spurious aborts under heavy churn for never freezing every
//! waiter behind one detection mutex is the standard choice for sharded
//! detectors; debuggers of abort-rate anomalies should keep the false-
//! positive mode in mind.
//!
//! ## Victim selection
//!
//! [`WaitForGraph::find_cycle_from`] returns the full membership of the
//! detected cycle so the caller can choose a victim ([`select_victim`],
//! driven by [`VictimPolicy`]).  Always aborting the requester (the MySQL
//! baseline, [`VictimPolicy::Requester`]) wastes the requester's work even
//! when another cycle member has barely started; weight-based selection
//! ([`VictimPolicy::FewestLocks`], the default) rolls back the member with
//! the fewest registry-tracked locks instead (Brook-2PL makes the same
//! argument for contention-aware victim choice).  A victim other than the
//! requester is necessarily *waiting* (every cycle member is), so each
//! waiter parks its wake-up event in its graph entry
//! ([`WaitForGraph::attach_waiter_event`]); [`WaitForGraph::doom`] marks the
//! victim and fires that event, and the victim's wait loop observes the mark
//! ([`WaitForGraph::take_doomed`]) and returns a deadlock error from its own
//! `lock_record` call.

use crate::event::OsEvent;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use txsql_common::fxhash::{self, FxHashMap, FxHashSet};
use txsql_common::pad::CachePadded;
use txsql_common::TxnId;

/// Default number of waiter shards (waits are rare relative to acquisitions;
/// 64 shards keeps the footprint small while eliminating cross-waiter
/// contention).
const DEFAULT_SHARDS: usize = 64;

/// How a deadlock victim is chosen among the members of a detected cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VictimPolicy {
    /// Always roll back the transaction that closed the cycle (the MySQL
    /// baseline behaviour).
    Requester,
    /// Roll back the cycle member holding the fewest registry-tracked locks
    /// (least work lost); ties go to the youngest `TxnId`.
    #[default]
    FewestLocks,
}

/// Picks the victim among `cycle` members under `policy`.  `cycle[0]` is the
/// requesting transaction; `lock_count` reports registry-tracked locks.
pub fn select_victim(
    cycle: &[TxnId],
    policy: VictimPolicy,
    lock_count: impl Fn(TxnId) -> usize,
) -> TxnId {
    match policy {
        VictimPolicy::Requester => cycle[0],
        VictimPolicy::FewestLocks => cycle
            .iter()
            .copied()
            // Ties go to the youngest transaction — the largest id, since ids
            // are handed out monotonically at BEGIN.
            .min_by_key(|t| (lock_count(*t), std::cmp::Reverse(t.0)))
            .expect("cycle is never empty"),
    }
}

/// One waiter's graph state: its out-edges plus the machinery remote victim
/// selection needs (the parked event to fire and the doomed mark).
#[derive(Debug, Default)]
struct WaiterEntry {
    out: FxHashSet<TxnId>,
    event: Option<Arc<OsEvent>>,
    doomed: bool,
}

type Shard = FxHashMap<TxnId, WaiterEntry>;

/// A dynamic wait-for graph, sharded by waiter.
#[derive(Debug)]
pub struct WaitForGraph {
    /// waiter -> set of transactions it waits for, sharded by waiter id.
    shards: Box<[CachePadded<Mutex<Shard>>]>,
    /// Advisory count of waiter entries across all shards (maintained under
    /// the shard mutexes, read relaxed).  Lets the release path skip the
    /// cross-shard incoming-edge sweep entirely when nothing waits — the
    /// overwhelmingly common case on uncontended workloads.  A stale read
    /// can only skip removing *incoming* edges of a finished transaction;
    /// such a transaction never has outgoing edges again (ids are never
    /// reused), so no false cycle can form and the stale edge is dropped
    /// when its owner stops waiting.
    approx_waiters: AtomicUsize,
}

impl Default for WaitForGraph {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl WaitForGraph {
    /// Creates an empty graph with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with `n_shards` waiter shards.
    pub fn with_shards(n_shards: usize) -> Self {
        let n = n_shards.max(1);
        Self {
            shards: (0..n)
                .map(|_| CachePadded::new(Mutex::new(Shard::default())))
                .collect(),
            approx_waiters: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn shard_for(&self, waiter: TxnId) -> &Mutex<Shard> {
        let idx = (fxhash::hash_u64(waiter.0) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Declares that `waiter` now waits for each transaction in `holders`.
    /// Existing edges from `waiter` are replaced (a transaction waits for at
    /// most one lock at a time), touching only the waiter's own shard.  A
    /// fresh wait starts with no parked event and no doomed mark.
    pub fn set_waits_for(&self, waiter: TxnId, holders: impl IntoIterator<Item = TxnId>) {
        let set: FxHashSet<TxnId> = holders.into_iter().filter(|h| *h != waiter).collect();
        let mut shard = self.shard_for(waiter).lock();
        let _scope = crate::wake_check::GuardScope::enter();
        if set.is_empty() {
            if shard.remove(&waiter).is_some() {
                self.approx_waiters.fetch_sub(1, Ordering::Relaxed);
            }
        } else {
            let entry = WaiterEntry {
                out: set,
                event: None,
                doomed: false,
            };
            if shard.insert(waiter, entry).is_none() {
                self.approx_waiters.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Adds holders to `waiter`'s existing wait set (used when a queue scan
    /// discovers additional blockers).
    pub fn add_waits_for(&self, waiter: TxnId, holders: impl IntoIterator<Item = TxnId>) {
        let mut shard = self.shard_for(waiter).lock();
        let _scope = crate::wake_check::GuardScope::enter();
        let existed = shard.contains_key(&waiter);
        let entry = shard.entry(waiter).or_default();
        for h in holders {
            if h != waiter {
                entry.out.insert(h);
            }
        }
        let now_exists = if entry.out.is_empty() {
            shard.remove(&waiter);
            false
        } else {
            true
        };
        match (existed, now_exists) {
            (false, true) => {
                self.approx_waiters.fetch_add(1, Ordering::Relaxed);
            }
            (true, false) => {
                self.approx_waiters.fetch_sub(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    /// Parks the waiter's wake-up event in its graph entry so a later
    /// detection pass can [`WaitForGraph::doom`] it.  A no-op when the entry
    /// is already gone (the wait was granted before the event was parked).
    pub fn attach_waiter_event(&self, waiter: TxnId, event: Arc<OsEvent>) {
        let mut shard = self.shard_for(waiter).lock();
        let _scope = crate::wake_check::GuardScope::enter();
        if let Some(entry) = shard.get_mut(&waiter) {
            entry.event = Some(event);
        }
    }

    /// Marks `victim` as the chosen deadlock victim and fires its parked
    /// event so it re-checks its wait immediately.  Returns false when the
    /// victim is no longer waiting (its entry is gone): the cycle evidence
    /// was stale and the cycle is already broken, so callers may simply
    /// ignore the return — the requester's own lock-wait timeout backstops
    /// any cycle a racing edge change re-forms.
    ///
    /// Staleness in the other direction is also possible: if the victim's
    /// blocking wait resolved *between* detection and this call and it
    /// already started a new, cycle-free wait, the mark lands on that new
    /// wait and aborts it — a spurious deadlock of the same (safe,
    /// retried) kind the sharded DFS itself can report under edge churn;
    /// see the module docs.  The window is a few instructions wide
    /// (requester descheduled between dropping its page guard and dooming).
    pub fn doom(&self, victim: TxnId) -> bool {
        let event = {
            let mut shard = self.shard_for(victim).lock();
            let _scope = crate::wake_check::GuardScope::enter();
            match shard.get_mut(&victim) {
                Some(entry) => {
                    entry.doomed = true;
                    entry.event.clone()
                }
                None => return false,
            }
        };
        // Fire outside the shard guard; a victim whose event is not parked
        // yet still observes the mark before parking (`take_doomed`).
        if let Some(event) = event {
            event.set();
        }
        true
    }

    /// Consumes the doomed mark of `txn`, if set.  Called by the waiter on
    /// every wake-up; a true return means some detection pass sacrificed it.
    pub fn take_doomed(&self, txn: TxnId) -> bool {
        let mut shard = self.shard_for(txn).lock();
        let _scope = crate::wake_check::GuardScope::enter();
        match shard.get_mut(&txn) {
            Some(entry) => std::mem::take(&mut entry.doomed),
            None => false,
        }
    }

    /// Removes every edge originating at `txn` (it stopped waiting) and every
    /// edge pointing to it (it committed / rolled back, so nobody waits for it
    /// any more through this graph — the lock tables re-add fresh edges when
    /// waits are re-evaluated).  Takes per-shard guards one at a time.
    pub fn remove_txn(&self, txn: TxnId) {
        // Fast path: nobody waits for anything, so there is nothing to
        // remove — skip the cross-shard sweep (see `approx_waiters`).
        if self.approx_waiters.load(Ordering::Relaxed) == 0 {
            return;
        }
        self.clear_waits_of(txn);
        for shard in &self.shards {
            let mut guard = shard.lock();
            let _scope = crate::wake_check::GuardScope::enter();
            let before = guard.len();
            for entry in guard.values_mut() {
                entry.out.remove(&txn);
            }
            guard.retain(|_, entry| !entry.out.is_empty());
            let removed = before - guard.len();
            if removed > 0 {
                self.approx_waiters.fetch_sub(removed, Ordering::Relaxed);
            }
        }
    }

    /// Removes only the outgoing edges of `txn` (it stopped waiting but may
    /// still block others).  One shard lock, no cross-waiter contention.
    pub fn clear_waits_of(&self, txn: TxnId) {
        let mut shard = self.shard_for(txn).lock();
        let _scope = crate::wake_check::GuardScope::enter();
        if shard.remove(&txn).is_some() {
            self.approx_waiters.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Snapshot of one waiter's out-edges (locks only that waiter's shard).
    fn out_edges(&self, waiter: TxnId) -> Option<Vec<TxnId>> {
        let shard = self.shard_for(waiter).lock();
        let _scope = crate::wake_check::GuardScope::enter();
        shard
            .get(&waiter)
            .map(|entry| entry.out.iter().copied().collect())
    }

    /// Depth-first search: does a cycle pass through `start`?
    ///
    /// Returns the members of the detected cycle, `start` first, so the
    /// caller can pick a victim with [`select_victim`].  Each node's edges
    /// are read under that node's shard guard only.
    pub fn find_cycle_from(&self, start: TxnId) -> Option<Vec<TxnId>> {
        let mut visited: FxHashSet<TxnId> = FxHashSet::default();
        let mut pred: FxHashMap<TxnId, TxnId> = FxHashMap::default();
        let mut stack: Vec<(TxnId, TxnId)> = self
            .out_edges(start)
            .unwrap_or_default()
            .into_iter()
            .map(|next| (next, start))
            .collect();
        while let Some((current, from)) = stack.pop() {
            if current == start {
                // Walk the predecessor chain back to `start` to materialise
                // the cycle membership (`from` was visited before its edges
                // were pushed, so its chain is complete).
                let mut cycle = vec![start];
                let mut node = from;
                while node != start {
                    cycle.push(node);
                    node = pred[&node];
                }
                return Some(cycle);
            }
            if !visited.insert(current) {
                continue;
            }
            pred.insert(current, from);
            if let Some(nexts) = self.out_edges(current) {
                stack.extend(nexts.into_iter().map(|next| (next, current)));
            }
        }
        None
    }

    /// Number of transactions currently waiting (outgoing-edge count).
    pub fn waiting_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Total number of edges (used by tests and the ablation bench that
    /// measures detection cost as queues grow).
    pub fn edge_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .values()
                    .map(|entry| entry.out.len())
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_cycle_in_a_chain() {
        let g = WaitForGraph::new();
        g.set_waits_for(TxnId(1), [TxnId(2)]);
        g.set_waits_for(TxnId(2), [TxnId(3)]);
        assert_eq!(g.find_cycle_from(TxnId(1)), None);
        assert_eq!(g.find_cycle_from(TxnId(2)), None);
        assert_eq!(g.waiting_count(), 2);
    }

    #[test]
    fn two_transaction_cycle_detected() {
        let g = WaitForGraph::new();
        g.set_waits_for(TxnId(1), [TxnId(2)]);
        g.set_waits_for(TxnId(2), [TxnId(1)]);
        let cycle = g.find_cycle_from(TxnId(2)).unwrap();
        assert_eq!(cycle[0], TxnId(2), "requester leads the cycle");
        assert!(cycle.contains(&TxnId(1)));
        assert_eq!(cycle.len(), 2);
        assert!(g.find_cycle_from(TxnId(1)).is_some());
    }

    #[test]
    fn long_cycle_detected_across_shards() {
        // A cycle longer than the shard count guarantees the DFS crosses
        // shard boundaries.
        let g = WaitForGraph::with_shards(4);
        for i in 1..=9u64 {
            g.set_waits_for(TxnId(i), [TxnId(i + 1)]);
        }
        g.set_waits_for(TxnId(10), [TxnId(1)]);
        let cycle = g.find_cycle_from(TxnId(10)).unwrap();
        assert_eq!(cycle[0], TxnId(10));
        assert_eq!(cycle.len(), 10, "every member of the ring is reported");
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    fn removing_a_transaction_breaks_the_cycle() {
        let g = WaitForGraph::new();
        g.set_waits_for(TxnId(1), [TxnId(2)]);
        g.set_waits_for(TxnId(2), [TxnId(3)]);
        g.set_waits_for(TxnId(3), [TxnId(1)]);
        assert!(g.find_cycle_from(TxnId(1)).is_some());
        g.remove_txn(TxnId(2));
        assert_eq!(g.find_cycle_from(TxnId(1)), None);
        assert_eq!(g.find_cycle_from(TxnId(3)), None);
    }

    #[test]
    fn self_edges_are_ignored() {
        let g = WaitForGraph::new();
        g.set_waits_for(TxnId(1), [TxnId(1)]);
        assert_eq!(g.find_cycle_from(TxnId(1)), None);
        assert_eq!(g.waiting_count(), 0);
    }

    #[test]
    fn add_waits_for_accumulates_blockers() {
        let g = WaitForGraph::new();
        g.add_waits_for(TxnId(1), [TxnId(2)]);
        g.add_waits_for(TxnId(1), [TxnId(3)]);
        g.set_waits_for(TxnId(3), [TxnId(1)]);
        assert!(g.find_cycle_from(TxnId(1)).is_some());
        g.clear_waits_of(TxnId(1));
        assert_eq!(g.find_cycle_from(TxnId(1)), None);
        // Txn 3 still waits for 1.
        assert_eq!(g.waiting_count(), 1);
    }

    #[test]
    fn diamond_without_cycle_is_clean() {
        let g = WaitForGraph::new();
        g.set_waits_for(TxnId(1), [TxnId(2), TxnId(3)]);
        g.set_waits_for(TxnId(2), [TxnId(4)]);
        g.set_waits_for(TxnId(3), [TxnId(4)]);
        assert_eq!(g.find_cycle_from(TxnId(1)), None);
    }

    #[test]
    fn single_shard_graph_still_works() {
        let g = WaitForGraph::with_shards(1);
        g.set_waits_for(TxnId(1), [TxnId(2)]);
        g.set_waits_for(TxnId(2), [TxnId(1)]);
        assert!(g.find_cycle_from(TxnId(1)).is_some());
        g.remove_txn(TxnId(1));
        assert_eq!(g.waiting_count(), 0);
    }

    #[test]
    fn fewest_locks_victim_prefers_lightest_then_youngest() {
        let cycle = [TxnId(5), TxnId(2), TxnId(9)];
        // Distinct weights: TxnId(2) holds the fewest locks.
        let victim = select_victim(&cycle, VictimPolicy::FewestLocks, |t| t.0 as usize);
        assert_eq!(victim, TxnId(2));
        // All weights equal: the youngest (largest id) loses the tie.
        let victim = select_victim(&cycle, VictimPolicy::FewestLocks, |_| 3);
        assert_eq!(victim, TxnId(9));
        // Baseline policy: always the requester (cycle[0]).
        let victim = select_victim(&cycle, VictimPolicy::Requester, |t| t.0 as usize);
        assert_eq!(victim, TxnId(5));
    }

    #[test]
    fn doom_fires_parked_event_and_is_consumed_once() {
        let g = WaitForGraph::new();
        g.set_waits_for(TxnId(1), [TxnId(2)]);
        let event = OsEvent::acquire_pooled();
        g.attach_waiter_event(TxnId(1), Arc::clone(&event));
        assert!(g.doom(TxnId(1)));
        assert!(event.is_set(), "doom must fire the parked event");
        assert!(g.take_doomed(TxnId(1)));
        assert!(!g.take_doomed(TxnId(1)), "the mark is consumed on read");
        // A transaction with no graph entry cannot be doomed.
        assert!(!g.doom(TxnId(42)));
        g.clear_waits_of(TxnId(1));
        assert!(!g.take_doomed(TxnId(1)), "cleared entries drop the mark");
    }
}
