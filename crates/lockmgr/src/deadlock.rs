//! Sharded wait-for graph deadlock detection.
//!
//! Vanilla 2PL (the MySQL baseline) and the lightweight O1 lock table both
//! run a cycle check every time a transaction starts waiting: the waiter adds
//! edges to every transaction currently blocking it, and a depth-first search
//! from the waiter looks for a path back to itself.  The paper's motivation
//! section (§3.2) observes that the cost of this detection — performed while
//! holding lock-manager mutexes — grows with the length of the wait queue and
//! is one of the reasons hotspot performance collapses; the queue- and
//! group-locking paths therefore bypass it entirely (timeouts / prevention
//! instead).
//!
//! The graph exploits the documented invariant that **a transaction waits
//! for at most one lock at a time**, so each waiter owns exactly one
//! out-edge set.  Those sets are sharded by waiter id across cache-padded
//! mutexes: `set_waits_for` / `clear_waits_of` — the operations on every
//! wait and wake — touch only the waiter's own shard and never contend
//! across unrelated waiters.  Only the cycle DFS and `remove_txn` cross
//! shards, and they take per-shard guards one at a time instead of a single
//! global mutex, so a long detection scan no longer stalls every other
//! waiter in the system.
//!
//! Consequence of per-shard locking: a DFS observes each out-edge set at a
//! (possibly slightly different) instant rather than one global snapshot.
//! Under concurrent edge churn it can therefore report a cycle whose edges
//! never all existed at a single instant (a *spurious* deadlock: the victim
//! aborts and retries — safe, just wasted work), and a cycle it misses is
//! caught by the next waiter's check or by the lock-wait timeout.  Trading
//! occasional spurious aborts under heavy churn for never freezing every
//! waiter behind one detection mutex is the standard choice for sharded
//! detectors; debuggers of abort-rate anomalies should keep the false-
//! positive mode in mind.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use txsql_common::fxhash::{self, FxHashMap, FxHashSet};
use txsql_common::pad::CachePadded;
use txsql_common::TxnId;

/// Default number of waiter shards (waits are rare relative to acquisitions;
/// 64 shards keeps the footprint small while eliminating cross-waiter
/// contention).
const DEFAULT_SHARDS: usize = 64;

type Shard = FxHashMap<TxnId, FxHashSet<TxnId>>;

/// A dynamic wait-for graph, sharded by waiter.
#[derive(Debug)]
pub struct WaitForGraph {
    /// waiter -> set of transactions it waits for, sharded by waiter id.
    shards: Box<[CachePadded<Mutex<Shard>>]>,
    /// Advisory count of waiter entries across all shards (maintained under
    /// the shard mutexes, read relaxed).  Lets the release path skip the
    /// cross-shard incoming-edge sweep entirely when nothing waits — the
    /// overwhelmingly common case on uncontended workloads.  A stale read
    /// can only skip removing *incoming* edges of a finished transaction;
    /// such a transaction never has outgoing edges again (ids are never
    /// reused), so no false cycle can form and the stale edge is dropped
    /// when its owner stops waiting.
    approx_waiters: AtomicUsize,
}

impl Default for WaitForGraph {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl WaitForGraph {
    /// Creates an empty graph with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with `n_shards` waiter shards.
    pub fn with_shards(n_shards: usize) -> Self {
        let n = n_shards.max(1);
        Self {
            shards: (0..n)
                .map(|_| CachePadded::new(Mutex::new(Shard::default())))
                .collect(),
            approx_waiters: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn shard_for(&self, waiter: TxnId) -> &Mutex<Shard> {
        let idx = (fxhash::hash_u64(waiter.0) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Declares that `waiter` now waits for each transaction in `holders`.
    /// Existing edges from `waiter` are replaced (a transaction waits for at
    /// most one lock at a time), touching only the waiter's own shard.
    pub fn set_waits_for(&self, waiter: TxnId, holders: impl IntoIterator<Item = TxnId>) {
        let set: FxHashSet<TxnId> = holders.into_iter().filter(|h| *h != waiter).collect();
        let mut shard = self.shard_for(waiter).lock();
        if set.is_empty() {
            if shard.remove(&waiter).is_some() {
                self.approx_waiters.fetch_sub(1, Ordering::Relaxed);
            }
        } else if shard.insert(waiter, set).is_none() {
            self.approx_waiters.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adds holders to `waiter`'s existing wait set (used when a queue scan
    /// discovers additional blockers).
    pub fn add_waits_for(&self, waiter: TxnId, holders: impl IntoIterator<Item = TxnId>) {
        let mut shard = self.shard_for(waiter).lock();
        let existed = shard.contains_key(&waiter);
        let set = shard.entry(waiter).or_default();
        for h in holders {
            if h != waiter {
                set.insert(h);
            }
        }
        let now_exists = if set.is_empty() {
            shard.remove(&waiter);
            false
        } else {
            true
        };
        match (existed, now_exists) {
            (false, true) => {
                self.approx_waiters.fetch_add(1, Ordering::Relaxed);
            }
            (true, false) => {
                self.approx_waiters.fetch_sub(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    /// Removes every edge originating at `txn` (it stopped waiting) and every
    /// edge pointing to it (it committed / rolled back, so nobody waits for it
    /// any more through this graph — the lock tables re-add fresh edges when
    /// waits are re-evaluated).  Takes per-shard guards one at a time.
    pub fn remove_txn(&self, txn: TxnId) {
        // Fast path: nobody waits for anything, so there is nothing to
        // remove — skip the cross-shard sweep (see `approx_waiters`).
        if self.approx_waiters.load(Ordering::Relaxed) == 0 {
            return;
        }
        self.clear_waits_of(txn);
        for shard in &self.shards {
            let mut guard = shard.lock();
            let before = guard.len();
            for set in guard.values_mut() {
                set.remove(&txn);
            }
            guard.retain(|_, set| !set.is_empty());
            let removed = before - guard.len();
            if removed > 0 {
                self.approx_waiters.fetch_sub(removed, Ordering::Relaxed);
            }
        }
    }

    /// Removes only the outgoing edges of `txn` (it stopped waiting but may
    /// still block others).  One shard lock, no cross-waiter contention.
    pub fn clear_waits_of(&self, txn: TxnId) {
        if self.shard_for(txn).lock().remove(&txn).is_some() {
            self.approx_waiters.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Snapshot of one waiter's out-edges (locks only that waiter's shard).
    fn out_edges(&self, waiter: TxnId) -> Option<Vec<TxnId>> {
        self.shard_for(waiter)
            .lock()
            .get(&waiter)
            .map(|set| set.iter().copied().collect())
    }

    /// Depth-first search: does a cycle pass through `start`?
    ///
    /// Returns the victim to roll back — this implementation always chooses
    /// the requesting transaction (`start`), matching the behaviour the
    /// engine's baseline needs; more elaborate victim selection is not
    /// relevant to the experiments.  Each node's edges are read under that
    /// node's shard guard only.
    pub fn find_cycle_from(&self, start: TxnId) -> Option<TxnId> {
        let mut visited: FxHashSet<TxnId> = FxHashSet::default();
        let mut stack: Vec<TxnId> = self.out_edges(start).unwrap_or_default();
        while let Some(current) = stack.pop() {
            if current == start {
                return Some(start);
            }
            if !visited.insert(current) {
                continue;
            }
            if let Some(nexts) = self.out_edges(current) {
                stack.extend(nexts);
            }
        }
        None
    }

    /// Number of transactions currently waiting (outgoing-edge count).
    pub fn waiting_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Total number of edges (used by tests and the ablation bench that
    /// measures detection cost as queues grow).
    pub fn edge_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().values().map(|set| set.len()).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_cycle_in_a_chain() {
        let g = WaitForGraph::new();
        g.set_waits_for(TxnId(1), [TxnId(2)]);
        g.set_waits_for(TxnId(2), [TxnId(3)]);
        assert_eq!(g.find_cycle_from(TxnId(1)), None);
        assert_eq!(g.find_cycle_from(TxnId(2)), None);
        assert_eq!(g.waiting_count(), 2);
    }

    #[test]
    fn two_transaction_cycle_detected() {
        let g = WaitForGraph::new();
        g.set_waits_for(TxnId(1), [TxnId(2)]);
        g.set_waits_for(TxnId(2), [TxnId(1)]);
        assert_eq!(g.find_cycle_from(TxnId(2)), Some(TxnId(2)));
        assert_eq!(g.find_cycle_from(TxnId(1)), Some(TxnId(1)));
    }

    #[test]
    fn long_cycle_detected_across_shards() {
        // A cycle longer than the shard count guarantees the DFS crosses
        // shard boundaries.
        let g = WaitForGraph::with_shards(4);
        for i in 1..=9u64 {
            g.set_waits_for(TxnId(i), [TxnId(i + 1)]);
        }
        g.set_waits_for(TxnId(10), [TxnId(1)]);
        assert_eq!(g.find_cycle_from(TxnId(10)), Some(TxnId(10)));
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    fn removing_a_transaction_breaks_the_cycle() {
        let g = WaitForGraph::new();
        g.set_waits_for(TxnId(1), [TxnId(2)]);
        g.set_waits_for(TxnId(2), [TxnId(3)]);
        g.set_waits_for(TxnId(3), [TxnId(1)]);
        assert!(g.find_cycle_from(TxnId(1)).is_some());
        g.remove_txn(TxnId(2));
        assert_eq!(g.find_cycle_from(TxnId(1)), None);
        assert_eq!(g.find_cycle_from(TxnId(3)), None);
    }

    #[test]
    fn self_edges_are_ignored() {
        let g = WaitForGraph::new();
        g.set_waits_for(TxnId(1), [TxnId(1)]);
        assert_eq!(g.find_cycle_from(TxnId(1)), None);
        assert_eq!(g.waiting_count(), 0);
    }

    #[test]
    fn add_waits_for_accumulates_blockers() {
        let g = WaitForGraph::new();
        g.add_waits_for(TxnId(1), [TxnId(2)]);
        g.add_waits_for(TxnId(1), [TxnId(3)]);
        g.set_waits_for(TxnId(3), [TxnId(1)]);
        assert_eq!(g.find_cycle_from(TxnId(1)), Some(TxnId(1)));
        g.clear_waits_of(TxnId(1));
        assert_eq!(g.find_cycle_from(TxnId(1)), None);
        // Txn 3 still waits for 1.
        assert_eq!(g.waiting_count(), 1);
    }

    #[test]
    fn diamond_without_cycle_is_clean() {
        let g = WaitForGraph::new();
        g.set_waits_for(TxnId(1), [TxnId(2), TxnId(3)]);
        g.set_waits_for(TxnId(2), [TxnId(4)]);
        g.set_waits_for(TxnId(3), [TxnId(4)]);
        assert_eq!(g.find_cycle_from(TxnId(1)), None);
    }

    #[test]
    fn single_shard_graph_still_works() {
        let g = WaitForGraph::with_shards(1);
        g.set_waits_for(TxnId(1), [TxnId(2)]);
        g.set_waits_for(TxnId(2), [TxnId(1)]);
        assert_eq!(g.find_cycle_from(TxnId(1)), Some(TxnId(1)));
        g.remove_txn(TxnId(1));
        assert_eq!(g.waiting_count(), 0);
    }
}
