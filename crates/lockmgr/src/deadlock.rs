//! Wait-for graph deadlock detection.
//!
//! Vanilla 2PL (the MySQL baseline) and the lightweight O1 lock table both
//! run a cycle check every time a transaction starts waiting: the waiter adds
//! edges to every transaction currently blocking it, and a depth-first search
//! from the waiter looks for a path back to itself.  The paper's motivation
//! section (§3.2) observes that the cost of this detection — performed while
//! holding lock-manager mutexes — grows with the length of the wait queue and
//! is one of the reasons hotspot performance collapses; the queue- and
//! group-locking paths therefore bypass it entirely (timeouts / prevention
//! instead).

use parking_lot::Mutex;
use txsql_common::fxhash::{FxHashMap, FxHashSet};
use txsql_common::TxnId;

/// A dynamic wait-for graph.
#[derive(Debug, Default)]
pub struct WaitForGraph {
    /// waiter -> set of transactions it waits for.
    edges: Mutex<FxHashMap<TxnId, FxHashSet<TxnId>>>,
}

impl WaitForGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares that `waiter` now waits for each transaction in `holders`.
    /// Existing edges from `waiter` are replaced (a transaction waits for at
    /// most one lock at a time).
    pub fn set_waits_for(&self, waiter: TxnId, holders: impl IntoIterator<Item = TxnId>) {
        let mut edges = self.edges.lock();
        let set: FxHashSet<TxnId> = holders.into_iter().filter(|h| *h != waiter).collect();
        if set.is_empty() {
            edges.remove(&waiter);
        } else {
            edges.insert(waiter, set);
        }
    }

    /// Adds holders to `waiter`'s existing wait set (used when a queue scan
    /// discovers additional blockers).
    pub fn add_waits_for(&self, waiter: TxnId, holders: impl IntoIterator<Item = TxnId>) {
        let mut edges = self.edges.lock();
        let set = edges.entry(waiter).or_default();
        for h in holders {
            if h != waiter {
                set.insert(h);
            }
        }
        if set.is_empty() {
            edges.remove(&waiter);
        }
    }

    /// Removes every edge originating at `txn` (it stopped waiting) and every
    /// edge pointing to it (it committed / rolled back, so nobody waits for it
    /// any more through this graph — the lock tables re-add fresh edges when
    /// waits are re-evaluated).
    pub fn remove_txn(&self, txn: TxnId) {
        let mut edges = self.edges.lock();
        edges.remove(&txn);
        for set in edges.values_mut() {
            set.remove(&txn);
        }
    }

    /// Removes only the outgoing edges of `txn` (it stopped waiting but may
    /// still block others).
    pub fn clear_waits_of(&self, txn: TxnId) {
        self.edges.lock().remove(&txn);
    }

    /// Depth-first search: does a cycle pass through `start`?
    ///
    /// Returns the victim to roll back — this implementation always chooses
    /// the requesting transaction (`start`), matching the behaviour the
    /// engine's baseline needs; more elaborate victim selection is not
    /// relevant to the experiments.
    pub fn find_cycle_from(&self, start: TxnId) -> Option<TxnId> {
        let edges = self.edges.lock();
        let mut visited: FxHashSet<TxnId> = FxHashSet::default();
        let mut stack: Vec<TxnId> = Vec::new();
        if let Some(firsts) = edges.get(&start) {
            stack.extend(firsts.iter().copied());
        }
        while let Some(current) = stack.pop() {
            if current == start {
                return Some(start);
            }
            if !visited.insert(current) {
                continue;
            }
            if let Some(nexts) = edges.get(&current) {
                stack.extend(nexts.iter().copied());
            }
        }
        None
    }

    /// Number of transactions currently waiting (outgoing-edge count).
    pub fn waiting_count(&self) -> usize {
        self.edges.lock().len()
    }

    /// Total number of edges (used by tests and the ablation bench that
    /// measures detection cost as queues grow).
    pub fn edge_count(&self) -> usize {
        self.edges.lock().values().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_cycle_in_a_chain() {
        let g = WaitForGraph::new();
        g.set_waits_for(TxnId(1), [TxnId(2)]);
        g.set_waits_for(TxnId(2), [TxnId(3)]);
        assert_eq!(g.find_cycle_from(TxnId(1)), None);
        assert_eq!(g.find_cycle_from(TxnId(2)), None);
        assert_eq!(g.waiting_count(), 2);
    }

    #[test]
    fn two_transaction_cycle_detected() {
        let g = WaitForGraph::new();
        g.set_waits_for(TxnId(1), [TxnId(2)]);
        g.set_waits_for(TxnId(2), [TxnId(1)]);
        assert_eq!(g.find_cycle_from(TxnId(2)), Some(TxnId(2)));
        assert_eq!(g.find_cycle_from(TxnId(1)), Some(TxnId(1)));
    }

    #[test]
    fn long_cycle_detected() {
        let g = WaitForGraph::new();
        for i in 1..=9u64 {
            g.set_waits_for(TxnId(i), [TxnId(i + 1)]);
        }
        g.set_waits_for(TxnId(10), [TxnId(1)]);
        assert_eq!(g.find_cycle_from(TxnId(10)), Some(TxnId(10)));
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    fn removing_a_transaction_breaks_the_cycle() {
        let g = WaitForGraph::new();
        g.set_waits_for(TxnId(1), [TxnId(2)]);
        g.set_waits_for(TxnId(2), [TxnId(3)]);
        g.set_waits_for(TxnId(3), [TxnId(1)]);
        assert!(g.find_cycle_from(TxnId(1)).is_some());
        g.remove_txn(TxnId(2));
        assert_eq!(g.find_cycle_from(TxnId(1)), None);
        assert_eq!(g.find_cycle_from(TxnId(3)), None);
    }

    #[test]
    fn self_edges_are_ignored() {
        let g = WaitForGraph::new();
        g.set_waits_for(TxnId(1), [TxnId(1)]);
        assert_eq!(g.find_cycle_from(TxnId(1)), None);
        assert_eq!(g.waiting_count(), 0);
    }

    #[test]
    fn add_waits_for_accumulates_blockers() {
        let g = WaitForGraph::new();
        g.add_waits_for(TxnId(1), [TxnId(2)]);
        g.add_waits_for(TxnId(1), [TxnId(3)]);
        g.set_waits_for(TxnId(3), [TxnId(1)]);
        assert_eq!(g.find_cycle_from(TxnId(1)), Some(TxnId(1)));
        g.clear_waits_of(TxnId(1));
        assert_eq!(g.find_cycle_from(TxnId(1)), None);
        // Txn 3 still waits for 1.
        assert_eq!(g.waiting_count(), 1);
    }

    #[test]
    fn diamond_without_cycle_is_clean() {
        let g = WaitForGraph::new();
        g.set_waits_for(TxnId(1), [TxnId(2), TxnId(3)]);
        g.set_waits_for(TxnId(2), [TxnId(4)]);
        g.set_waits_for(TxnId(3), [TxnId(4)]);
        assert_eq!(g.find_cycle_from(TxnId(1)), None);
    }
}
