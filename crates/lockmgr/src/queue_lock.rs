//! Queue locking for hotspot rows (§3.2, "O2").
//!
//! Once a row is promoted to hotspot, update transactions no longer pile up
//! inside the lock manager.  Instead they join a FIFO *ticket queue* keyed by
//! the record id: exactly one transaction at a time is allowed to proceed to
//! the actual row lock; when it commits (or aborts) and releases that lock it
//! wakes the next queued transaction.  Deadlocks on the hot row are handled
//! by a timeout rather than wait-for-graph detection — the paper found
//! detection both slower and more complex in this path.
//!
//! Compared with group locking, every transaction still performs one real
//! lock acquisition and release, which is why queue locking loses its edge as
//! per-transaction latency grows (Figure 2b).

use crate::event::OsEvent;
use crate::wake_check::GuardScope;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;
use txsql_common::fxhash::{self, FxHashMap};
use txsql_common::pad::CachePadded;
use txsql_common::{RecordId, TxnId};

/// Number of shards for the ticket-queue map: unrelated hot rows must not
/// serialize on one global mutex just to reach their own queue.
const QUEUE_SHARDS: usize = 64;

/// One shard of the ticket-queue map.
type QueueShard = CachePadded<Mutex<FxHashMap<u64, QueueEntry>>>;

/// Result of asking to proceed on a hot row.
#[derive(Debug)]
pub enum QueueAdmission {
    /// The queue is empty: proceed directly to the lock manager.
    Proceed,
    /// Wait on this event; when it fires the transaction owns the ticket.
    Wait(Arc<OsEvent>),
}

#[derive(Debug, Default)]
struct QueueEntry {
    /// Transaction currently allowed to contend for the real lock.
    active: Option<TxnId>,
    /// Transactions queued behind it.
    waiters: VecDeque<(TxnId, Arc<OsEvent>)>,
}

/// The per-hot-row ticket queues, sharded by record.
#[derive(Debug)]
pub struct QueueLockTable {
    shards: Box<[QueueShard]>,
    /// Hotspot wait timeout (deadlock handling for hot rows).
    timeout: Duration,
}

impl Default for QueueLockTable {
    fn default() -> Self {
        Self::new(Duration::from_millis(100))
    }
}

impl QueueLockTable {
    /// Creates a queue-lock table with the given hotspot wait timeout.
    pub fn new(timeout: Duration) -> Self {
        Self {
            shards: (0..QUEUE_SHARDS)
                .map(|_| CachePadded::new(Mutex::new(FxHashMap::default())))
                .collect(),
            timeout,
        }
    }

    /// The hotspot wait timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    #[inline]
    fn shard_for(&self, record: RecordId) -> &Mutex<FxHashMap<u64, QueueEntry>> {
        let idx = (fxhash::hash_u64(record.packed()) % QUEUE_SHARDS as u64) as usize;
        &self.shards[idx]
    }

    /// Asks to proceed with an update of hot `record`.
    pub fn admit(&self, txn: TxnId, record: RecordId) -> QueueAdmission {
        let mut entries = self.shard_for(record).lock();
        let _scope = GuardScope::enter();
        let entry = entries.entry(record.packed()).or_default();
        if entry.active.is_none() && entry.waiters.is_empty() {
            entry.active = Some(txn);
            QueueAdmission::Proceed
        } else {
            // Pooled: the waiting side recycles the event after its wait ends
            // (grant or cancellation); the unique-`Arc` rule keeps an event
            // the queue still references out of the pool.
            let event = OsEvent::acquire_pooled();
            entry.waiters.push_back((txn, Arc::clone(&event)));
            QueueAdmission::Wait(event)
        }
    }

    /// Called after the woken transaction observes its event: marks it the
    /// active ticket holder.  Returns false if the transaction is no longer
    /// queued (e.g. it was cancelled concurrently).
    pub fn claim_ticket(&self, txn: TxnId, record: RecordId) -> bool {
        let mut entries = self.shard_for(record).lock();
        let Some(entry) = entries.get_mut(&record.packed()) else {
            return false;
        };
        if entry.active == Some(txn) {
            return true;
        }
        false
    }

    /// Releases the ticket held by `txn` (after it released the real row
    /// lock at commit/rollback) and wakes the next waiter, if any.
    pub fn release(&self, txn: TxnId, record: RecordId) {
        let to_wake = {
            let mut entries = self.shard_for(record).lock();
            let _scope = GuardScope::enter();
            let Some(entry) = entries.get_mut(&record.packed()) else {
                return;
            };
            if entry.active == Some(txn) {
                entry.active = None;
            } else {
                // A queued (not yet active) transaction is bailing out.
                entry.waiters.retain(|(t, _)| *t != txn);
            }
            if entry.active.is_some() {
                None
            } else if let Some((next_txn, event)) = entry.waiters.pop_front() {
                entry.active = Some(next_txn);
                Some(event)
            } else {
                entries.remove(&record.packed());
                None
            }
        };
        if let Some(event) = to_wake {
            event.set();
        }
    }

    /// Removes a waiter that gave up (timeout).  Returns true if it was still
    /// queued.
    pub fn cancel_wait(&self, txn: TxnId, record: RecordId) -> bool {
        let mut entries = self.shard_for(record).lock();
        let _scope = GuardScope::enter();
        let Some(entry) = entries.get_mut(&record.packed()) else {
            return false;
        };
        let before = entry.waiters.len();
        entry.waiters.retain(|(t, _)| *t != txn);
        let removed = entry.waiters.len() != before;
        if entry.active.is_none() && entry.waiters.is_empty() {
            entries.remove(&record.packed());
        }
        removed
    }

    /// Number of transactions queued behind the active one.
    pub fn queue_len(&self, record: RecordId) -> usize {
        self.shard_for(record)
            .lock()
            .get(&record.packed())
            .map(|e| e.waiters.len())
            .unwrap_or(0)
    }

    /// True when some transaction currently holds the ticket or is queued.
    pub fn has_waiters(&self, record: RecordId) -> bool {
        self.shard_for(record)
            .lock()
            .get(&record.packed())
            .map(|e| e.active.is_some() || !e.waiters.is_empty())
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    const HOT: RecordId = RecordId {
        space_id: 1,
        page_no: 0,
        heap_no: 0,
    };

    #[test]
    fn first_transaction_proceeds_directly() {
        let q = QueueLockTable::new(Duration::from_millis(100));
        assert!(matches!(q.admit(TxnId(1), HOT), QueueAdmission::Proceed));
        assert!(q.has_waiters(HOT));
        q.release(TxnId(1), HOT);
        assert!(!q.has_waiters(HOT));
    }

    #[test]
    fn queued_transactions_are_woken_in_fifo_order() {
        let q = Arc::new(QueueLockTable::new(Duration::from_secs(5)));
        assert!(matches!(q.admit(TxnId(1), HOT), QueueAdmission::Proceed));
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for id in 2..=5u64 {
            let q2 = Arc::clone(&q);
            let order2 = Arc::clone(&order);
            let admission = q.admit(TxnId(id), HOT);
            handles.push(thread::spawn(move || {
                if let QueueAdmission::Wait(event) = admission {
                    event.wait();
                    assert!(q2.claim_ticket(TxnId(id), HOT));
                }
                order2.lock().push(id);
                q2.release(TxnId(id), HOT);
            }));
        }
        assert_eq!(q.queue_len(HOT), 4);
        q.release(TxnId(1), HOT);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![2, 3, 4, 5]);
        assert!(!q.has_waiters(HOT));
    }

    #[test]
    fn cancel_wait_removes_from_queue() {
        let q = QueueLockTable::new(Duration::from_millis(10));
        assert!(matches!(q.admit(TxnId(1), HOT), QueueAdmission::Proceed));
        let _ = q.admit(TxnId(2), HOT);
        assert!(q.cancel_wait(TxnId(2), HOT));
        assert!(!q.cancel_wait(TxnId(2), HOT));
        assert_eq!(q.queue_len(HOT), 0);
        q.release(TxnId(1), HOT);
    }

    #[test]
    fn release_of_queued_transaction_does_not_disturb_active() {
        let q = QueueLockTable::new(Duration::from_millis(100));
        assert!(matches!(q.admit(TxnId(1), HOT), QueueAdmission::Proceed));
        let _ = q.admit(TxnId(2), HOT);
        let _ = q.admit(TxnId(3), HOT);
        // Txn 2 aborts while still queued: txn 1 keeps the ticket and txn 3
        // stays queued behind it.
        q.release(TxnId(2), HOT);
        assert!(q.claim_ticket(TxnId(1), HOT));
        assert!(!q.claim_ticket(TxnId(3), HOT));
        assert_eq!(q.queue_len(HOT), 1);
        // Only once txn 1 releases does txn 3 become active.
        q.release(TxnId(1), HOT);
        assert!(q.claim_ticket(TxnId(3), HOT));
        assert_eq!(q.queue_len(HOT), 0);
    }

    #[test]
    fn grant_racing_a_timeout_is_detectable_via_cancel_wait() {
        // The O2 write path's timeout handling relies on this contract: when
        // the previous holder's release() pops a waiter to active just as
        // that waiter times out, cancel_wait returns false (it is no longer
        // *queued*) and the waiter must proceed as the active ticket holder
        // instead of abandoning a ticket nobody would ever release.
        let q = QueueLockTable::new(Duration::from_millis(10));
        assert!(matches!(q.admit(TxnId(1), HOT), QueueAdmission::Proceed));
        let _ = q.admit(TxnId(2), HOT);
        q.release(TxnId(1), HOT); // grants txn 2 concurrently with its timeout
        assert!(!q.cancel_wait(TxnId(2), HOT), "no longer queued");
        assert!(q.claim_ticket(TxnId(2), HOT), "the grant raced ahead");
        q.release(TxnId(2), HOT);
        assert!(!q.has_waiters(HOT));
    }

    #[test]
    fn claim_ticket_only_for_active_holder() {
        let q = QueueLockTable::new(Duration::from_millis(100));
        assert!(matches!(q.admit(TxnId(1), HOT), QueueAdmission::Proceed));
        let _ = q.admit(TxnId(2), HOT);
        assert!(q.claim_ticket(TxnId(1), HOT));
        assert!(!q.claim_ticket(TxnId(2), HOT));
    }
}
