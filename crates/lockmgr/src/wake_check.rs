//! Debug-only enforcement of the **wake-outside-lock** invariant.
//!
//! Every wake path in this crate follows the same discipline: collect the
//! events to fire while holding a shard/state mutex, drop the guard, *then*
//! call [`OsEvent::set`](crate::event::OsEvent::set).  Waking while holding
//! the guard is a latent convoy — the woken thread immediately contends on
//! the mutex its waker still holds — and historically each call site
//! re-derived the rule by hand (the grant scan accumulated `woken`, the
//! group-lock paths set events inline).
//!
//! This module makes the invariant uniform and *checked*: the critical
//! sections that hand out wakeups wrap themselves in a [`GuardScope`]
//! (a debug-only thread-local depth counter; a zero-cost no-op in release
//! builds), and `OsEvent::set` asserts the calling thread holds no such
//! guard.  A regression — an `event.set()` sneaking back under a lockmgr
//! guard — fails loudly in every debug test run instead of shipping as a
//! convoy.

#[cfg(debug_assertions)]
use std::cell::Cell;

#[cfg(debug_assertions)]
thread_local! {
    /// How many lockmgr shard/state guards the current thread holds.
    static GUARD_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// RAII marker for "this thread is inside a lockmgr shard/state critical
/// section".  Construct with [`GuardScope::enter`] immediately after taking
/// the guard; the marker must drop no later than the guard does.
#[must_use = "the scope only covers the marker's lifetime"]
#[derive(Debug)]
pub(crate) struct GuardScope {
    // Non-Send token so a scope cannot migrate off its thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl GuardScope {
    /// Marks the current thread as holding a lockmgr guard.
    #[inline]
    pub(crate) fn enter() -> Self {
        #[cfg(debug_assertions)]
        GUARD_DEPTH.with(|depth| depth.set(depth.get() + 1));
        Self {
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for GuardScope {
    #[inline]
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        GUARD_DEPTH.with(|depth| depth.set(depth.get() - 1));
    }
}

/// Asserts (debug builds only) that the calling thread is not inside a
/// lockmgr shard/state critical section — called by
/// [`OsEvent::set`](crate::event::OsEvent::set).
#[inline]
pub(crate) fn assert_wake_outside_guard() {
    #[cfg(debug_assertions)]
    GUARD_DEPTH.with(|depth| {
        debug_assert_eq!(
            depth.get(),
            0,
            "OsEvent::set called while holding a lockmgr shard/state guard — \
             collect the event and fire it after dropping the lock"
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_tracks_depth_and_assert_passes_outside() {
        assert_wake_outside_guard();
        {
            let _scope = GuardScope::enter();
            let _nested = GuardScope::enter();
        }
        assert_wake_outside_guard();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn assert_fires_inside_a_scope() {
        let caught = std::panic::catch_unwind(|| {
            let _scope = GuardScope::enter();
            assert_wake_outside_guard();
        });
        assert!(caught.is_err(), "waking under a guard must be flagged");
    }
}
