//! The lightweight `trx_lock_wait` lock table (§3.1.1, "O1").
//!
//! Differences from the vanilla [`crate::lock_sys::LockSys`]:
//!
//! * keyed by *record* (`<space_id, page_no, heap_no>`) instead of page, and
//!   spread over many more shards, so unrelated rows on the same page no
//!   longer contend on one mutex;
//! * holder information is just transaction ids — a lock object (the thing
//!   that costs allocation and bookkeeping, counted in Figure 6d) is only
//!   created when a conflict forces a transaction to wait;
//! * entries are removed as soon as they become empty, so the table stays
//!   proportional to the number of *contended* rows, not all touched rows.
//!
//! Bookkeeping is fully decentralized: shard mutexes are cache-padded, the
//! per-transaction record map is the sharded
//! [`TxnLockRegistry`] (no global mutex on
//! acquire or release-all), and waiter events come from the thread-local
//! pool ([`OsEvent::acquire_pooled`](crate::event::OsEvent::acquire_pooled)) so even the conflict path allocates
//! nothing in steady state.
//!
//! Deadlock handling remains wait-for-graph detection by default (the paper
//! notes O1's p95 is slightly inflated by exactly this, Figure 6c); a
//! timeout-only policy can be selected for the ablation benches.
//!
//! ## Shared queue core vs. table-specific shell
//!
//! The per-record grant/wait machinery — conflict check, try-acquire,
//! from-front FIFO grant scan, deadlock check on wait, and the doom-aware
//! wait loop — lives in [`crate::record_queue`] and is shared verbatim with
//! the page-sharded baseline.  This module owns only what is genuinely
//! O1-specific: the record-keyed sharding (the
//! [`QueueAccess`] impl looks rows up by packed record id,
//! and empty rows are pruned immediately — there are no page shells to
//! sweep), and the [`QueuePolicy`] choices
//! (`upgrade_respects_queue = false` — an `S→X` upgrade proceeds whenever no
//! *holder* conflicts, and `count_uncontended_grants = false` — lock objects
//! are only counted for requests that actually wait, the whole point of O1).
//! Batched release additionally groups records by **shard** so one batch
//! takes each shard mutex once (see
//! [`LightweightLockTable::release_record_locks`]).

use crate::deadlock::{VictimPolicy, WaitForGraph};
use crate::lock_sys::DeadlockPolicy;
use crate::modes::LockMode;
use crate::record_queue::{
    deadlock_check_on_wait, wait_until_granted, AcquireOutcome, QueueAccess, QueuePolicy,
    RecordQueue, WaitParams,
};
use crate::registry::TxnLockRegistry;
use crate::wake_check::GuardScope;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;
use txsql_common::fxhash::{self, FxHashMap};
use txsql_common::metrics::{EngineMetrics, MetricsSink};
use txsql_common::pad::CachePadded;
use txsql_common::{RecordId, Result, TxnId};

/// Configuration of the lightweight lock table.
#[derive(Debug, Clone)]
pub struct LightweightConfig {
    /// Number of shards (record-keyed, so this can be much larger than the
    /// page-sharded baseline).
    pub n_shards: usize,
    /// Deadlock handling policy.
    pub deadlock_policy: DeadlockPolicy,
    /// How the victim is chosen when detection finds a cycle.
    pub victim_policy: VictimPolicy,
    /// Lock wait timeout.
    pub lock_wait_timeout: Duration,
}

impl Default for LightweightConfig {
    fn default() -> Self {
        Self {
            n_shards: 1024,
            deadlock_policy: DeadlockPolicy::Detect,
            victim_policy: VictimPolicy::default(),
            lock_wait_timeout: Duration::from_millis(200),
        }
    }
}

/// The table-specific [`QueuePolicy`]: an upgrade proceeds whenever no
/// holder conflicts (no FIFO upgrade barrier), and lock objects are only
/// counted for requests that actually wait (§3.1.1's whole point).
const POLICY: QueuePolicy = QueuePolicy {
    upgrade_respects_queue: false,
    count_uncontended_grants: false,
};

#[derive(Debug, Default)]
struct Shard {
    /// Rows keyed by packed record id; entries are pruned the moment they
    /// drain, so the table stays proportional to *contended* rows.
    rows: FxHashMap<u64, RecordQueue>,
}

/// The record-keyed lightweight lock table.
#[derive(Debug)]
pub struct LightweightLockTable {
    config: LightweightConfig,
    shards: Box<[CachePadded<Mutex<Shard>>]>,
    graph: WaitForGraph,
    registry: Arc<TxnLockRegistry>,
    metrics: Arc<EngineMetrics>,
}

impl LightweightLockTable {
    /// Creates a lightweight lock table with its own private lock registry.
    pub fn new(config: LightweightConfig, metrics: Arc<EngineMetrics>) -> Self {
        let registry = Arc::new(TxnLockRegistry::with_metrics(
            (config.n_shards / 4).max(64),
            Arc::clone(&metrics),
        ));
        Self::with_registry(config, metrics, registry)
    }

    /// Creates a lightweight lock table sharing an externally owned registry.
    pub fn with_registry(
        config: LightweightConfig,
        metrics: Arc<EngineMetrics>,
        registry: Arc<TxnLockRegistry>,
    ) -> Self {
        let n = config.n_shards.max(1);
        Self {
            config,
            shards: (0..n)
                .map(|_| CachePadded::new(Mutex::new(Shard::default())))
                .collect(),
            graph: WaitForGraph::new(),
            registry,
            metrics,
        }
    }

    /// The configured lock-wait timeout.
    pub fn lock_wait_timeout(&self) -> Duration {
        self.config.lock_wait_timeout
    }

    /// The per-transaction lock registry backing release-all.
    pub fn registry(&self) -> &Arc<TxnLockRegistry> {
        &self.registry
    }

    #[inline]
    fn shard_index(&self, record: RecordId) -> usize {
        (fxhash::hash_u64(record.packed()) % self.shards.len() as u64) as usize
    }

    #[inline]
    fn shard_for(&self, record: RecordId) -> &Mutex<Shard> {
        &self.shards[self.shard_index(record)]
    }

    /// Acquires a record lock, blocking until granted, deadlock or timeout,
    /// counting the hot-path metrics straight into the shared
    /// [`EngineMetrics`].
    pub fn lock_record(&self, txn: TxnId, record: RecordId, mode: LockMode) -> Result<()> {
        self.lock_record_in(txn, record, mode, &*self.metrics)
    }

    /// Acquires a record lock, blocking until granted, deadlock or timeout.
    /// The grant/wait machinery is the shared [`crate::record_queue`] core;
    /// this method only navigates the record-keyed sharding and applies the
    /// lightweight [`QueuePolicy`].  `sink` receives the per-cycle counters
    /// — the engine passes the transaction's metrics scratch so the
    /// uncontended fast path performs no atomic RMW.
    pub fn lock_record_in<S: MetricsSink + ?Sized>(
        &self,
        txn: TxnId,
        record: RecordId,
        mode: LockMode,
        sink: &S,
    ) -> Result<()> {
        debug_assert!(mode.is_record_mode());
        let event;
        let mut doom_victim = None;
        {
            let mut shard = self.shard_for(record).lock();
            let _scope = GuardScope::enter();
            let entry = shard.rows.entry(record.packed()).or_default();

            match entry.try_acquire(txn, mode, POLICY, sink) {
                AcquireOutcome::AlreadyHeld | AcquireOutcome::Upgraded => return Ok(()),
                AcquireOutcome::Granted => {
                    // Conflict-free: just the holder id — no lock object, no
                    // event, and only sharded bookkeeping.
                    drop(_scope);
                    drop(shard);
                    self.registry.remember_record(txn, record);
                    return Ok(());
                }
                AcquireOutcome::MustWait(blockers) => {
                    // Conflict (or FIFO queue in front of us): only now does
                    // a lock object exist (Figure 6d counts these).  A
                    // requester chosen as deadlock victim returns before any
                    // object or wait is recorded, keeping the counters
                    // truthful; a *remote* victim is doomed after the shard
                    // guard drops.
                    if self.config.deadlock_policy == DeadlockPolicy::Detect {
                        doom_victim = deadlock_check_on_wait(
                            entry,
                            &self.graph,
                            &self.registry,
                            &self.metrics,
                            self.config.victim_policy,
                            txn,
                            blockers,
                        )?;
                    }
                    event = entry.enqueue_waiter(txn, mode, &self.metrics);
                }
            }
        }
        self.registry.remember_record(txn, record);
        if self.config.deadlock_policy == DeadlockPolicy::Detect {
            self.graph.attach_waiter_event(txn, Arc::clone(&event));
            if let Some(victim) = doom_victim {
                self.graph.doom(victim);
            }
        }
        wait_until_granted(
            WaitParams {
                txn,
                record,
                mode,
                event,
                detect: self.config.deadlock_policy == DeadlockPolicy::Detect,
                timeout: self.config.lock_wait_timeout,
                graph: &self.graph,
                registry: &self.registry,
                metrics: &self.metrics,
            },
            &RowSlot {
                table: self,
                record,
            },
        )
    }

    /// Releases one record lock and grants unblocked waiters.
    pub fn release_record_lock(&self, txn: TxnId, record: RecordId) {
        self.release_record_locks(txn, std::slice::from_ref(&record));
    }

    /// [`LightweightLockTable::release_record_locks`] counting into the
    /// shared metrics.
    pub fn release_record_locks(&self, txn: TxnId, records: &[RecordId]) {
        self.release_record_locks_in(txn, records, &*self.metrics);
    }

    /// Releases a batch of record locks (Bamboo's early lock release, now
    /// flushed per statement boundary by the write path).  The table is
    /// record-keyed, so records are grouped by **shard**: each shard mutex
    /// is taken once per batch (not once per record), and the registry
    /// bookkeeping drains with one registry-shard lock for the whole batch.
    /// Release-path counters go through `sink`.
    pub fn release_record_locks_in<S: MetricsSink + ?Sized>(
        &self,
        txn: TxnId,
        records: &[RecordId],
        sink: &S,
    ) {
        match records {
            [] => return,
            [single] => self.drop_row_locks(txn, *single, sink),
            _ => self.drop_rows_grouped(txn, records, sink),
        }
        self.registry.forget_records_in(txn, records, sink);
    }

    /// Removes `txn`'s requests on one row and grants whatever unblocks
    /// (lock-table state only; registry bookkeeping is the caller's).
    fn drop_row_locks<S: MetricsSink + ?Sized>(&self, txn: TxnId, record: RecordId, sink: &S) {
        self.drop_shard_rows(txn, self.shard_index(record), [record.packed()], sink);
    }

    /// Drains `txn`'s requests on a batch of rows, grouped by shard so each
    /// shard mutex is taken once per batch: a sorted `(shard, key)` scratch
    /// vec (cheaper than a hash-map group-by for statement-sized batches)
    /// yields one contiguous run per shard.
    fn drop_rows_grouped<S: MetricsSink + ?Sized>(
        &self,
        txn: TxnId,
        records: &[RecordId],
        sink: &S,
    ) {
        let mut keyed: Vec<(usize, u64)> = records
            .iter()
            .map(|r| (self.shard_index(*r), r.packed()))
            .collect();
        keyed.sort_unstable();
        for chunk in keyed.chunk_by(|a, b| a.0 == b.0) {
            self.drop_shard_rows(txn, chunk[0].0, chunk.iter().map(|(_, key)| *key), sink);
        }
    }

    /// Removes `txn`'s requests on the given rows of one shard under a
    /// single shard-lock acquisition, granting whatever unblocks.
    fn drop_shard_rows<S: MetricsSink + ?Sized>(
        &self,
        txn: TxnId,
        shard_idx: usize,
        keys: impl IntoIterator<Item = u64>,
        sink: &S,
    ) {
        let mut woken = Vec::new();
        {
            let mut shard = self.shards[shard_idx].lock();
            let _scope = GuardScope::enter();
            sink.on_release_shard_lock();
            for key in keys {
                let prune = if let Some(entry) = shard.rows.get_mut(&key) {
                    entry.remove_requests_of(txn);
                    entry.grant_from_front(&self.graph, sink, &mut woken);
                    entry.is_empty()
                } else {
                    false
                };
                if prune {
                    shard.rows.remove(&key);
                }
            }
        }
        for event in woken {
            event.set();
        }
    }

    /// [`LightweightLockTable::release_all`] counting into the shared
    /// metrics.
    pub fn release_all(&self, txn: TxnId) {
        self.release_all_in(txn, &*self.metrics);
    }

    /// Releases everything `txn` holds or waits for.  Walks only the
    /// transaction's own registry shard and the row shards it touched —
    /// grouped by shard, so each shard mutex is taken once per release-all.
    /// Release-path counters go through `sink` (the engine passes the
    /// transaction's metrics scratch).
    pub fn release_all_in<S: MetricsSink + ?Sized>(&self, txn: TxnId, sink: &S) {
        let Some(locks) = self.registry.take_all_in(txn, sink) else {
            self.graph.remove_txn(txn);
            return;
        };
        match locks.records.as_slice() {
            [] => {}
            [single] => self.drop_row_locks(txn, *single, sink),
            records => self.drop_rows_grouped(txn, records, sink),
        }
        self.graph.remove_txn(txn);
    }

    /// Number of transactions waiting for `record` (hotspot detection signal).
    pub fn wait_queue_len(&self, record: RecordId) -> usize {
        let shard = self.shard_for(record).lock();
        shard
            .rows
            .get(&record.packed())
            .map(|e| e.waiter_count())
            .unwrap_or(0)
    }

    /// Current holders of `record`.
    pub fn holders_of(&self, record: RecordId) -> Vec<TxnId> {
        let shard = self.shard_for(record).lock();
        shard
            .rows
            .get(&record.packed())
            .map(|e| e.holder_ids())
            .unwrap_or_default()
    }

    /// Number of records `txn` currently holds or waits on.
    pub fn lock_count_of(&self, txn: TxnId) -> usize {
        self.registry.record_count_of(txn)
    }

    /// The wait-for graph (used by the hot/non-hot deadlock prevention check).
    pub fn wait_for_graph(&self) -> &WaitForGraph {
        &self.graph
    }
}

/// The record-keyed [`QueueAccess`] for the shared wait loop: locks the
/// row's shard, looks the queue up by packed record id, and prunes the row
/// the moment the wait-loop cleanup empties it (no shells in this table).
struct RowSlot<'a> {
    table: &'a LightweightLockTable,
    record: RecordId,
}

impl QueueAccess for RowSlot<'_> {
    fn with_queue<R>(&self, f: impl FnOnce(&mut RecordQueue) -> R) -> Option<R> {
        let key = self.record.packed();
        let mut shard = self.table.shard_for(self.record).lock();
        let _scope = GuardScope::enter();
        let entry = shard.rows.get_mut(&key)?;
        let result = f(entry);
        if entry.is_empty() {
            shard.rows.remove(&key);
        }
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use txsql_common::Error;

    const R1: RecordId = RecordId {
        space_id: 1,
        page_no: 0,
        heap_no: 0,
    };
    const R2: RecordId = RecordId {
        space_id: 1,
        page_no: 0,
        heap_no: 1,
    };

    fn table(
        policy: DeadlockPolicy,
        timeout_ms: u64,
    ) -> (Arc<LightweightLockTable>, Arc<EngineMetrics>) {
        let metrics = Arc::new(EngineMetrics::new());
        let t = Arc::new(LightweightLockTable::new(
            LightweightConfig {
                n_shards: 64,
                deadlock_policy: policy,
                lock_wait_timeout: Duration::from_millis(timeout_ms),
                ..LightweightConfig::default()
            },
            Arc::clone(&metrics),
        ));
        (t, metrics)
    }

    #[test]
    fn uncontended_locks_create_no_lock_objects() {
        let (t, metrics) = table(DeadlockPolicy::Detect, 100);
        for txn in 1..=10u64 {
            let rid = RecordId::new(1, 0, txn as u16);
            t.lock_record(TxnId(txn), rid, LockMode::Exclusive).unwrap();
        }
        assert_eq!(
            metrics.locks_created.get(),
            0,
            "O1 must not create lock objects without conflicts"
        );
        for txn in 1..=10u64 {
            t.release_all(TxnId(txn));
        }
        assert!(
            t.registry().is_empty(),
            "registry must drain after release_all"
        );
        assert_eq!(t.registry().total_entries(), 0);
        assert_eq!(metrics.locks_released.get(), 10);
    }

    #[test]
    fn conflicting_lock_creates_object_and_waits() {
        let (t, metrics) = table(DeadlockPolicy::Detect, 2_000);
        t.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        let t2 = Arc::clone(&t);
        let h = thread::spawn(move || t2.lock_record(TxnId(2), R1, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(30));
        assert_eq!(metrics.locks_created.get(), 1);
        assert_eq!(t.wait_queue_len(R1), 1);
        t.release_all(TxnId(1));
        h.join().unwrap().unwrap();
        assert_eq!(t.holders_of(R1), vec![TxnId(2)]);
        t.release_all(TxnId(2));
        assert_eq!(t.holders_of(R1), Vec::<TxnId>::new());
        assert_eq!(t.lock_count_of(TxnId(2)), 0);
    }

    #[test]
    fn shared_locks_coexist() {
        let (t, _) = table(DeadlockPolicy::Detect, 100);
        t.lock_record(TxnId(1), R1, LockMode::Shared).unwrap();
        t.lock_record(TxnId(2), R1, LockMode::Shared).unwrap();
        assert_eq!(t.holders_of(R1).len(), 2);
        t.release_all(TxnId(1));
        t.release_all(TxnId(2));
    }

    #[test]
    fn upgrade_when_sole_holder() {
        let (t, _) = table(DeadlockPolicy::Detect, 100);
        t.lock_record(TxnId(1), R1, LockMode::Shared).unwrap();
        t.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        // Reentrant exclusive is still fine.
        t.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        t.release_all(TxnId(1));
    }

    #[test]
    fn deadlock_detected_across_records() {
        let (t, _) = table(DeadlockPolicy::Detect, 5_000);
        t.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        t.lock_record(TxnId(2), R2, LockMode::Exclusive).unwrap();
        let t2 = Arc::clone(&t);
        let h = thread::spawn(move || t2.lock_record(TxnId(1), R2, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(50));
        let err = t
            .lock_record(TxnId(2), R1, LockMode::Exclusive)
            .unwrap_err();
        assert!(matches!(err, Error::Deadlock { txn: TxnId(2) }));
        t.release_all(TxnId(2));
        h.join().unwrap().unwrap();
        t.release_all(TxnId(1));
    }

    #[test]
    fn timeout_when_holder_never_releases() {
        let (t, _) = table(DeadlockPolicy::TimeoutOnly, 40);
        t.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        let err = t
            .lock_record(TxnId(2), R1, LockMode::Exclusive)
            .unwrap_err();
        assert!(matches!(err, Error::LockWaitTimeout { .. }));
        t.release_all(TxnId(1));
        // The timed-out waiter left no bookkeeping behind.
        assert_eq!(t.lock_count_of(TxnId(2)), 0);
        assert!(t.registry().is_empty());
    }

    #[test]
    fn timeout_of_front_waiter_grants_compatible_waiter_behind_it() {
        let (t, _) = table(DeadlockPolicy::TimeoutOnly, 80);
        t.lock_record(TxnId(1), R1, LockMode::Shared).unwrap();
        let t2 = Arc::clone(&t);
        let w2 = thread::spawn(move || t2.lock_record(TxnId(2), R1, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(30));
        // T3's Shared is compatible with T1 but queued behind T2's waiting
        // Exclusive; T2's timeout cleanup (grant_from_front) must grant it —
        // T3's own deadline is 30 ms later.
        let t3 = Arc::clone(&t);
        let w3 = thread::spawn(move || t3.lock_record(TxnId(3), R1, LockMode::Shared));
        assert!(matches!(
            w2.join().unwrap().unwrap_err(),
            Error::LockWaitTimeout { .. }
        ));
        w3.join().unwrap().unwrap();
        assert_eq!(t.holders_of(R1).len(), 2, "T1 and T3 share the record");
        t.release_all(TxnId(1));
        t.release_all(TxnId(3));
        assert!(t.registry().is_empty());
    }

    #[test]
    fn timed_out_upgrade_keeps_granted_lock_and_releases_cleanly() {
        let (t, _) = table(DeadlockPolicy::TimeoutOnly, 40);
        t.lock_record(TxnId(1), R1, LockMode::Shared).unwrap();
        t.lock_record(TxnId(2), R1, LockMode::Shared).unwrap();
        // T1's upgrade to Exclusive blocks on T2's Shared and times out —
        // but it is still a granted Shared holder, registry included.
        let err = t
            .lock_record(TxnId(1), R1, LockMode::Exclusive)
            .unwrap_err();
        assert!(matches!(err, Error::LockWaitTimeout { .. }));
        assert_eq!(t.holders_of(R1).len(), 2, "both Shared holders must remain");
        assert_eq!(
            t.lock_count_of(TxnId(1)),
            1,
            "registry must still track T1's lock"
        );
        t.release_all(TxnId(1));
        t.release_all(TxnId(2));
        assert!(t.holders_of(R1).is_empty(), "no phantom holder may remain");
        t.lock_record(TxnId(3), R1, LockMode::Exclusive).unwrap();
        t.release_all(TxnId(3));
        assert!(t.registry().is_empty());
    }

    #[test]
    fn fifo_grant_order_under_contention() {
        let (t, _) = table(DeadlockPolicy::Detect, 5_000);
        t.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for id in 2..=5u64 {
            let t2 = Arc::clone(&t);
            let order2 = Arc::clone(&order);
            handles.push(thread::spawn(move || {
                t2.lock_record(TxnId(id), R1, LockMode::Exclusive).unwrap();
                order2.lock().push(id);
                t2.release_all(TxnId(id));
            }));
            thread::sleep(Duration::from_millis(20));
        }
        t.release_all(TxnId(1));
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn single_record_release_grants_next() {
        let (t, _) = table(DeadlockPolicy::Detect, 2_000);
        t.lock_record(TxnId(1), R1, LockMode::Exclusive).unwrap();
        t.lock_record(TxnId(1), R2, LockMode::Exclusive).unwrap();
        let t2 = Arc::clone(&t);
        let h = thread::spawn(move || t2.lock_record(TxnId(2), R1, LockMode::Exclusive));
        thread::sleep(Duration::from_millis(30));
        t.release_record_lock(TxnId(1), R1);
        h.join().unwrap().unwrap();
        // R2 still held by txn 1.
        assert_eq!(t.holders_of(R2), vec![TxnId(1)]);
        t.release_all(TxnId(1));
        t.release_all(TxnId(2));
    }
}
