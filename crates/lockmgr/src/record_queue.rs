//! The single-source per-record lock-queue core shared by both lock tables.
//!
//! [`lock_sys`](crate::lock_sys) (the page-sharded InnoDB baseline) and
//! [`lightweight`](crate::lightweight) (the record-keyed `trx_lock_wait`
//! table, §3.1.1) implement the same per-record grant/wait machinery — the
//! holder/waiter split, the mode-compatibility conflict check, the from-front
//! FIFO grant scan, timeout/cancel removal, and the doom-aware wait loop.
//! They used to carry near-duplicate copies of it, which meant every grant or
//! doom fix had to land twice.  This module is the one copy both tables now
//! route through.
//!
//! What the tables still own (their *real* differences):
//!
//! * **sharding key** — `lock_sys` shards by page and nests
//!   `heap_no → RecordQueue` maps inside a page shell; `lightweight` shards
//!   by packed record id.  The shared wait loop reaches a queue through the
//!   owning table's [`QueueAccess`] implementation, so the core never knows
//!   how queues are keyed or pruned;
//! * **upgrade fairness** — the baseline keeps InnoDB's FIFO rule that an
//!   `S→X` upgrade may not jump earlier queued waiters, while the lightweight
//!   table upgrades in place whenever no *holder* conflicts
//!   ([`QueuePolicy::upgrade_respects_queue`]);
//! * **`locks_created` accounting** — the baseline counts one `lock_t`-like
//!   object per acquisition (the Figure 6d cost the paper measures), the
//!   lightweight table only counts requests that actually wait
//!   ([`QueuePolicy::count_uncontended_grants`]).
//!
//! Everything else — [`RecordQueue::try_acquire`], the
//! [`deadlock_check_on_wait`] run before queueing, and
//! [`wait_until_granted`] — is shared verbatim, so the sim suites
//! (`per_record_queue_independence_*`, the FIFO/compat invariants) prove both
//! tables' behavior with one body of code.
//!
//! ## The uncontended fast path
//!
//! The zero-conflict acquire/release cycle is the layout's first-class
//! citizen (see the crate docs' "fast path" section):
//!
//! * **holders are stored inline** — [`RecordQueue`] keeps its granted
//!   holders in a three-state enum (`None` / one inline entry / spilled
//!   `Vec`), so the overwhelmingly common single-holder record costs **no
//!   heap allocation**; only shared-mode records with 2+ holders spill;
//! * **the waiter deque is lazily allocated** — a record that never sees a
//!   conflict never materialises its `VecDeque` (it lives behind an
//!   `Option<Box<…>>` created by the first [`RecordQueue::enqueue_waiter`]),
//!   which also keeps the queue struct small inside the tables' shard maps;
//! * **hot counters go through a [`MetricsSink`]** — [`RecordQueue::try_acquire`]
//!   and [`RecordQueue::grant_from_front`] are generic over the sink, so the
//!   engine routes the per-cycle counts (`locks_created`, grant-scan lengths)
//!   into the transaction's `Cell`-based
//!   [`MetricsScratch`](txsql_common::metrics::MetricsScratch) instead of
//!   shared atomics; the slow paths (waits, deadlock checks) still record
//!   into [`EngineMetrics`] directly.

use crate::deadlock::{select_victim, VictimPolicy, WaitForGraph};
use crate::event::{OsEvent, WaitOutcome};
use crate::modes::LockMode;
use crate::registry::TxnLockRegistry;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;
use txsql_common::metrics::{EngineMetrics, MetricsSink};
use txsql_common::time::SimInstant;
use txsql_common::{Error, RecordId, Result, TxnId};

/// The knobs on which the two lock tables genuinely differ.  Everything not
/// captured here (conflict scan, grant order, wait-loop behavior) is shared.
#[derive(Debug, Clone, Copy)]
pub struct QueuePolicy {
    /// FIFO upgrade fairness: when true, an in-place lock upgrade (`S→X` by
    /// an existing holder) is only allowed while no other request is queued —
    /// an upgrade may not jump an earlier waiting request.  The InnoDB-style
    /// baseline sets this; the lightweight table upgrades whenever no holder
    /// conflicts.
    pub upgrade_respects_queue: bool,
    /// Figure-6d accounting: when true, every fresh uncontended grant counts
    /// one created lock object (the baseline keeps a `lock_t` entry per
    /// acquisition).  The lightweight table only materialises — and counts —
    /// lock objects for requests that wait.
    pub count_uncontended_grants: bool,
}

/// A waiting request.  Only waiters carry full request objects (with their
/// wake-up event); granted locks are plain `(txn, mode)` holder entries.
#[derive(Debug)]
struct WaitingRequest {
    txn: TxnId,
    mode: LockMode,
    event: Arc<OsEvent>,
}

/// How [`RecordQueue::try_acquire`] resolved a request under the shard guard.
#[derive(Debug)]
pub enum AcquireOutcome {
    /// An existing granted lock already covers the request — nothing changed,
    /// no bookkeeping needed.
    AlreadyHeld,
    /// The existing holder entry was upgraded in place (`S→X`); the record is
    /// already registry-tracked, so nothing else to do.
    Upgraded,
    /// A fresh holder entry was pushed (uncontended grant).  The caller must
    /// remember the record in its registry *after* dropping the shard guard.
    Granted,
    /// Conflicting holders (or FIFO order behind queued waiters) force a
    /// wait.  Carries the conflicting holder ids for the deadlock check; the
    /// caller runs [`deadlock_check_on_wait`] and then
    /// [`RecordQueue::enqueue_waiter`].
    MustWait(Vec<TxnId>),
}

/// Granted holders of one record, stored inline for the 1-holder common
/// case.  A record held by a single transaction (the shape of virtually
/// every exclusive lock) costs no heap allocation; only shared-mode records
/// with two or more simultaneous holders spill into a `Vec`.
#[derive(Debug, Default)]
enum Holders {
    /// Nobody holds the record.
    #[default]
    None,
    /// Exactly one holder, stored inline — the uncontended fast path.
    One((TxnId, LockMode)),
    /// Two or more holders (shared locks) spilled to the heap.
    Many(Vec<(TxnId, LockMode)>),
}

impl Holders {
    #[inline]
    fn as_slice(&self) -> &[(TxnId, LockMode)] {
        match self {
            Holders::None => &[],
            Holders::One(h) => std::slice::from_ref(h),
            Holders::Many(v) => v,
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [(TxnId, LockMode)] {
        match self {
            Holders::None => &mut [],
            Holders::One(h) => std::slice::from_mut(h),
            Holders::Many(v) => v,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            Holders::None => 0,
            Holders::One(_) => 1,
            Holders::Many(v) => v.len(),
        }
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn push(&mut self, holder: (TxnId, LockMode)) {
        match std::mem::take(self) {
            Holders::None => *self = Holders::One(holder),
            Holders::One(first) => *self = Holders::Many(vec![first, holder]),
            Holders::Many(mut v) => {
                v.push(holder);
                *self = Holders::Many(v);
            }
        }
    }

    fn retain(&mut self, mut keep: impl FnMut(&(TxnId, LockMode)) -> bool) {
        match self {
            Holders::None => {}
            Holders::One(h) => {
                if !keep(h) {
                    *self = Holders::None;
                }
            }
            Holders::Many(v) => {
                v.retain(|h| keep(h));
                match v.len() {
                    // Collapse back to the allocation-free states so a record
                    // that momentarily spilled does not pin its Vec forever.
                    0 => *self = Holders::None,
                    1 => *self = Holders::One(v[0]),
                    _ => {}
                }
            }
        }
    }
}

/// One record's lock queue: granted holders split from the waiter FIFO, so
/// every operation on the record is O(requests on that record) — never
/// O(page population) or O(table population).  The default (empty) queue owns
/// no heap memory at all: holders are inline (the private `Holders` enum) and the waiter
/// deque is only boxed into existence by the first conflicting request.
#[derive(Debug, Default)]
pub struct RecordQueue {
    holders: Holders,
    /// Boxed on purpose (`clippy::box_collection` notwithstanding): the
    /// deque is absent on every uncontended record, and `Option<Box<…>>` is
    /// one pointer instead of `VecDeque`'s four words — the queues live by
    /// the thousand inside the tables' shard maps, so the common-case struct
    /// stays small and the indirection is only ever paid on the wait path.
    #[allow(clippy::box_collection)]
    waiters: Option<Box<VecDeque<WaitingRequest>>>,
}

impl RecordQueue {
    /// True when no holder and no waiter remains — the owning table prunes
    /// the queue from its map at this point.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.holders.is_empty() && self.waiter_count() == 0
    }

    /// Number of waiting requests (the paper's hotspot-detection signal).
    #[inline]
    pub fn waiter_count(&self) -> usize {
        self.waiters.as_ref().map_or(0, |w| w.len())
    }

    /// Transactions currently holding a granted lock.
    pub fn holder_ids(&self) -> Vec<TxnId> {
        self.holders.as_slice().iter().map(|(t, _)| *t).collect()
    }

    /// True when `txn` holds a granted lock (any mode) on this record.
    pub fn holds_any(&self, txn: TxnId) -> bool {
        self.holders.as_slice().iter().any(|(t, _)| *t == txn)
    }

    /// True when `txn` holds a granted lock covering `mode`.
    #[inline]
    fn is_granted(&self, txn: TxnId, mode: LockMode) -> bool {
        self.holders
            .as_slice()
            .iter()
            .any(|(t, m)| *t == txn && m.covers(mode))
    }

    /// Transactions among the current holders that conflict with a request
    /// by `txn` for `mode`.
    fn conflicting_holders(&self, txn: TxnId, mode: LockMode) -> Vec<TxnId> {
        self.holders
            .as_slice()
            .iter()
            .filter(|(t, m)| *t != txn && !m.is_compatible_with(mode))
            .map(|(t, _)| *t)
            .collect()
    }

    /// Resolves an acquisition attempt under the owning shard's guard: the
    /// re-entrant fast path, the in-place upgrade, the uncontended grant and
    /// the must-wait decision, in one conflict scan.  `sink` receives the
    /// `locks_created` count per `policy` — the engine passes the
    /// transaction's metrics scratch here so the uncontended grant costs no
    /// atomic RMW.
    #[inline]
    pub fn try_acquire<S: MetricsSink + ?Sized>(
        &mut self,
        txn: TxnId,
        mode: LockMode,
        policy: QueuePolicy,
        sink: &S,
    ) -> AcquireOutcome {
        let held = self
            .holders
            .as_slice()
            .iter()
            .find(|(t, _)| *t == txn)
            .map(|(_, m)| *m);
        if let Some(held) = held {
            // Re-entrant fast path: an existing granted lock that covers the
            // request needs no new lock entry.
            if held.covers(mode) {
                return AcquireOutcome::AlreadyHeld;
            }
        }

        // One conflict scan serves the upgrade, fresh-grant and wait paths
        // alike (it may run under the hottest mutex in the system).
        let blockers = self.conflicting_holders(txn, mode);
        if blockers.is_empty() {
            let no_waiters = self.waiter_count() == 0;
            if held.is_some() && (!policy.upgrade_respects_queue || no_waiters) {
                // Lock upgrade (S -> X) in place.  Under FIFO upgrade
                // fairness this is only reached with an empty waiter queue.
                for (t, m) in self.holders.as_mut_slice() {
                    if *t == txn {
                        *m = LockMode::Exclusive;
                    }
                }
                return AcquireOutcome::Upgraded;
            }
            if held.is_none() && no_waiters {
                // Uncontended grant: no OsEvent, no lock object unless the
                // table's accounting says every acquisition creates one.
                if policy.count_uncontended_grants {
                    sink.on_lock_created();
                }
                self.holders.push((txn, mode));
                return AcquireOutcome::Granted;
            }
        }
        AcquireOutcome::MustWait(blockers)
    }

    /// Queues a waiting request behind the current FIFO, drawing its wake-up
    /// event from the thread-local pool, and counts the lock object and the
    /// wait.  The first waiter on a record materialises the boxed deque.
    /// Returns the event the caller parks on (a second clone stays with the
    /// queued request).
    pub fn enqueue_waiter(
        &mut self,
        txn: TxnId,
        mode: LockMode,
        metrics: &EngineMetrics,
    ) -> Arc<OsEvent> {
        metrics.locks_created.inc();
        metrics.lock_waits.inc();
        let event = OsEvent::acquire_pooled();
        self.waiters
            .get_or_insert_with(Default::default)
            .push_back(WaitingRequest {
                txn,
                mode,
                event: Arc::clone(&event),
            });
        event
    }

    /// Removes every request `txn` has on this record (granted holders and
    /// waiting entries alike) without granting — the release paths call this
    /// and then [`RecordQueue::grant_from_front`].
    #[inline]
    pub fn remove_requests_of(&mut self, txn: TxnId) {
        self.holders.retain(|(t, _)| *t != txn);
        if let Some(waiters) = &mut self.waiters {
            waiters.retain(|w| w.txn != txn);
        }
    }

    /// Removes `txn`'s *waiting* entry only (timeout/doom cleanup: a granted
    /// holder entry — e.g. the surviving pre-upgrade lock — must stay).
    fn remove_waiter(&mut self, txn: TxnId) {
        if let Some(waiters) = &mut self.waiters {
            waiters.retain(|w| w.txn != txn);
        }
    }

    /// Iterator over the transactions currently waiting (FIFO order).
    fn waiter_ids(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.waiters.iter().flat_map(|w| w.iter()).map(|w| w.txn)
    }

    /// FIFO grant scan: grants waiters from the front while they are
    /// compatible with the remaining holders.  Records the scan length
    /// (requests examined) through `sink` and pushes the events to fire once
    /// the caller has dropped the shard guard.
    #[inline]
    pub fn grant_from_front<S: MetricsSink + ?Sized>(
        &mut self,
        graph: &WaitForGraph,
        sink: &S,
        woken: &mut Vec<Arc<OsEvent>>,
    ) {
        sink.on_grant_scan((self.holders.len() + self.waiter_count()) as u64);
        let Some(waiters) = self.waiters.as_mut() else {
            return;
        };
        while let Some(front) = waiters.front() {
            let compatible = self
                .holders
                .as_slice()
                .iter()
                .all(|(t, m)| *t == front.txn || m.is_compatible_with(front.mode));
            if !compatible {
                break;
            }
            let waiter = waiters.pop_front().expect("front exists");
            if let Some((_, held)) = self
                .holders
                .as_mut_slice()
                .iter_mut()
                .find(|(t, _)| *t == waiter.txn)
            {
                // Granting a queued *upgrade*: overwrite the transaction's
                // existing holder entry (its old Shared grant) instead of
                // pushing a duplicate — duplicate entries would defeat the
                // re-entrant fast path and double-count in holders_of.
                *held = waiter.mode;
            } else {
                self.holders.push((waiter.txn, waiter.mode));
            }
            graph.clear_waits_of(waiter.txn);
            woken.push(waiter.event);
        }
        if waiters.is_empty() {
            // Contention drained: drop the boxed deque so the record is back
            // to its allocation-free shape (the next conflict re-boxes it).
            self.waiters = None;
        }
    }
}

/// Runs wait-for-graph deadlock detection for a request that is about to
/// queue behind `queue` (called under the shard guard, before the waiter is
/// enqueued, so the Figure-6d counters stay truthful when the requester is
/// chosen as victim and returns without ever creating a lock object).
///
/// Returns `Err(Deadlock)` when the requester itself must die (its graph
/// entry is already cleared), `Ok(Some(victim))` when a *remote* cycle member
/// was chosen — the caller dooms it through the graph **after** dropping the
/// shard guard — and `Ok(None)` when no cycle was found.
pub fn deadlock_check_on_wait(
    queue: &RecordQueue,
    graph: &WaitForGraph,
    registry: &TxnLockRegistry,
    metrics: &EngineMetrics,
    victim_policy: VictimPolicy,
    txn: TxnId,
    blockers: Vec<TxnId>,
) -> Result<Option<TxnId>> {
    metrics.deadlock_checks.inc();
    let mut waits_for = blockers;
    waits_for.extend(queue.waiter_ids());
    graph.set_waits_for(txn, waits_for);
    if let Some(cycle) = graph.find_cycle_from(txn) {
        let victim = select_victim(&cycle, victim_policy, |t| registry.record_count_of(t));
        if victim == txn {
            graph.clear_waits_of(txn);
            return Err(Error::Deadlock { txn });
        }
        return Ok(Some(victim));
    }
    Ok(None)
}

/// How the shared wait loop reaches its record's queue through the owning
/// table's sharding.  An implementation locks the table-specific shard, runs
/// the closure on the queue **if it still exists** (`None` means the queue
/// was pruned — our request is gone, which the wait loop treats as
/// not-granted, never resurrecting state), prunes the queue when the closure
/// leaves it empty, and drops the shard guard before returning — so woken
/// events collected inside the closure are always fired outside the lock.
pub trait QueueAccess {
    /// Locks the owning shard and runs `f` on the still-existing queue.
    fn with_queue<R>(&self, f: impl FnOnce(&mut RecordQueue) -> R) -> Option<R>;
}

/// Everything [`wait_until_granted`] needs from the owning table.
pub struct WaitParams<'a> {
    /// The waiting transaction.
    pub txn: TxnId,
    /// The record being waited on (for error values and registry cleanup).
    pub record: RecordId,
    /// The requested mode (the grant check looks for a covering holder).
    pub mode: LockMode,
    /// The event enqueued with the waiter ([`RecordQueue::enqueue_waiter`]).
    pub event: Arc<OsEvent>,
    /// Whether wait-for-graph detection is active (doom checks are skipped
    /// under the timeout-only policy).
    pub detect: bool,
    /// The lock-wait timeout; the deadline lives on [`SimInstant`], so under
    /// deterministic simulation it fires on the virtual clock.
    pub timeout: Duration,
    /// The owning table's wait-for graph.
    pub graph: &'a WaitForGraph,
    /// The owning table's per-transaction registry (timeout cleanup forgets
    /// the record unless a granted holder entry survives).
    pub registry: &'a TxnLockRegistry,
    /// Metrics sink (`lock_wait_latency`, grant-scan lengths).
    pub metrics: &'a EngineMetrics,
}

/// What one wake-up/poll iteration of the wait loop decided under the guard.
enum WaitPoll {
    Granted,
    GaveUp {
        doomed: bool,
        woken: Vec<Arc<OsEvent>>,
        still_holds: bool,
    },
    KeepWaiting,
}

/// The doom-aware wait loop both lock tables park in after enqueueing a
/// waiter: park outside the shard mutex, consume dooms delivered before the
/// event was parked in the graph, re-check the grant under the shard guard on
/// every wake-up, and — on timeout or doom — remove the waiting request,
/// re-run the grant scan for waiters queued behind it, and clean up the
/// registry entry unless a granted holder entry (a timed-out *upgrade*'s
/// original lock) survives.
pub fn wait_until_granted(params: WaitParams<'_>, slot: &impl QueueAccess) -> Result<()> {
    let WaitParams {
        txn,
        record,
        mode,
        event,
        detect,
        timeout,
        graph,
        registry,
        metrics,
    } = params;
    let wait_start = SimInstant::now();
    let deadline = wait_start + timeout;
    loop {
        // Consume a doom *before* parking: one delivered before our event
        // was parked in the graph (or wiped by the reset below) must abort
        // us now, not after the full timeout.
        let pre_doomed = detect && graph.take_doomed(txn);
        let remaining = deadline.saturating_duration_since(SimInstant::now());
        let outcome = if pre_doomed || remaining.is_zero() {
            WaitOutcome::TimedOut
        } else {
            event.wait_for(remaining)
        };
        let waited = wait_start.elapsed();
        // One shard acquisition serves both the grant check and the give-up
        // cleanup.  A pruned queue means our request is gone; missing state
        // is not-granted and must never be resurrected.
        let poll = slot
            .with_queue(|queue| {
                if queue.is_granted(txn, mode) {
                    return WaitPoll::Granted;
                }
                let doomed = pre_doomed || (detect && graph.take_doomed(txn));
                if doomed || outcome == WaitOutcome::TimedOut {
                    // Give up: remove our waiting request, then re-run the
                    // grant scan — a waiter queued behind us may be grantable
                    // now that our conflicting request is gone.
                    let mut woken = Vec::new();
                    queue.remove_waiter(txn);
                    queue.grant_from_front(graph, metrics, &mut woken);
                    // A timed-out *upgrade* still holds its original granted
                    // lock — the registry entry must survive for release-all.
                    let still_holds = queue.holds_any(txn);
                    WaitPoll::GaveUp {
                        doomed,
                        woken,
                        still_holds,
                    }
                } else {
                    WaitPoll::KeepWaiting
                }
            })
            .unwrap_or_else(|| {
                let doomed = pre_doomed || (detect && graph.take_doomed(txn));
                if doomed || outcome == WaitOutcome::TimedOut {
                    WaitPoll::GaveUp {
                        doomed,
                        woken: Vec::new(),
                        still_holds: false,
                    }
                } else {
                    WaitPoll::KeepWaiting
                }
            });
        match poll {
            WaitPoll::Granted => {
                metrics.lock_wait_latency.record(waited);
                graph.clear_waits_of(txn);
                OsEvent::recycle(event);
                return Ok(());
            }
            WaitPoll::GaveUp {
                doomed,
                woken,
                still_holds,
            } => {
                // The shard guard dropped inside with_queue; fire the grants.
                for woken_event in woken {
                    woken_event.set();
                }
                if !still_holds {
                    registry.forget_record(txn, record);
                }
                metrics.lock_wait_latency.record(waited);
                graph.clear_waits_of(txn);
                OsEvent::recycle(event);
                return Err(if doomed {
                    Error::Deadlock { txn }
                } else {
                    Error::LockWaitTimeout { txn, record }
                });
            }
            // Spurious wake-up (event set but our grant was raced away):
            // reset and wait again.
            WaitPoll::KeepWaiting => event.reset(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLICY: QueuePolicy = QueuePolicy {
        upgrade_respects_queue: true,
        count_uncontended_grants: false,
    };

    #[test]
    fn try_acquire_grant_reentrant_upgrade_and_wait() {
        let metrics = EngineMetrics::new();
        let mut q = RecordQueue::default();
        assert!(matches!(
            q.try_acquire(TxnId(1), LockMode::Shared, POLICY, &metrics),
            AcquireOutcome::Granted
        ));
        assert!(matches!(
            q.try_acquire(TxnId(1), LockMode::Shared, POLICY, &metrics),
            AcquireOutcome::AlreadyHeld
        ));
        assert!(matches!(
            q.try_acquire(TxnId(1), LockMode::Exclusive, POLICY, &metrics),
            AcquireOutcome::Upgraded
        ));
        match q.try_acquire(TxnId(2), LockMode::Exclusive, POLICY, &metrics) {
            AcquireOutcome::MustWait(blockers) => assert_eq!(blockers, vec![TxnId(1)]),
            other => panic!("expected MustWait, got {other:?}"),
        }
        assert_eq!(metrics.locks_created.get(), 0);
    }

    #[test]
    fn upgrade_fairness_is_policy_controlled() {
        let metrics = EngineMetrics::new();
        let fair = QueuePolicy {
            upgrade_respects_queue: true,
            count_uncontended_grants: false,
        };
        let jumping = QueuePolicy {
            upgrade_respects_queue: false,
            count_uncontended_grants: false,
        };
        // Holder T1 (Shared) with a queued Exclusive waiter T2: an S→X
        // upgrade by T1 must wait under FIFO fairness but may jump without.
        let mk = || {
            let mut q = RecordQueue::default();
            q.try_acquire(TxnId(1), LockMode::Shared, fair, &metrics);
            q.enqueue_waiter(TxnId(2), LockMode::Exclusive, &metrics);
            q
        };
        assert!(matches!(
            mk().try_acquire(TxnId(1), LockMode::Exclusive, fair, &metrics),
            AcquireOutcome::MustWait(_)
        ));
        assert!(matches!(
            mk().try_acquire(TxnId(1), LockMode::Exclusive, jumping, &metrics),
            AcquireOutcome::Upgraded
        ));
    }

    #[test]
    fn uncontended_grant_accounting_is_policy_controlled() {
        let metrics = EngineMetrics::new();
        let counting = QueuePolicy {
            upgrade_respects_queue: true,
            count_uncontended_grants: true,
        };
        let mut q = RecordQueue::default();
        q.try_acquire(TxnId(1), LockMode::Exclusive, counting, &metrics);
        assert_eq!(metrics.locks_created.get(), 1);
        let mut q2 = RecordQueue::default();
        q2.try_acquire(TxnId(2), LockMode::Exclusive, POLICY, &metrics);
        assert_eq!(
            metrics.locks_created.get(),
            1,
            "lightweight-style grant is free"
        );
    }

    #[test]
    fn try_acquire_routes_counts_through_a_scratch_sink() {
        use txsql_common::metrics::MetricsScratch;
        let metrics = EngineMetrics::new();
        let scratch = MetricsScratch::new();
        let counting = QueuePolicy {
            upgrade_respects_queue: true,
            count_uncontended_grants: true,
        };
        let mut q = RecordQueue::default();
        let graph = WaitForGraph::new();
        q.try_acquire(TxnId(1), LockMode::Exclusive, counting, &scratch);
        q.remove_requests_of(TxnId(1));
        let mut woken = Vec::new();
        q.grant_from_front(&graph, &scratch, &mut woken);
        // Nothing hit the shared counters yet; the scratch holds the counts.
        assert_eq!(metrics.locks_created.get(), 0);
        assert_eq!(metrics.grant_scan_len.count(), 0);
        assert_eq!(scratch.pending_locks_created(), 1);
        scratch.flush(&metrics);
        assert_eq!(metrics.locks_created.get(), 1);
        assert_eq!(metrics.grant_scan_len.count(), 1);
    }

    #[test]
    fn single_holder_stays_inline_and_shared_holders_spill_and_collapse() {
        let metrics = EngineMetrics::new();
        let mut q = RecordQueue::default();
        q.try_acquire(TxnId(1), LockMode::Shared, POLICY, &metrics);
        assert!(matches!(q.holders, Holders::One(_)));
        q.try_acquire(TxnId(2), LockMode::Shared, POLICY, &metrics);
        assert!(matches!(q.holders, Holders::Many(_)));
        assert_eq!(q.holder_ids(), vec![TxnId(1), TxnId(2)]);
        q.remove_requests_of(TxnId(1));
        assert!(
            matches!(q.holders, Holders::One(_)),
            "shrinking to one holder must collapse back to the inline state"
        );
        q.remove_requests_of(TxnId(2));
        assert!(matches!(q.holders, Holders::None));
        assert!(q.is_empty());
    }

    #[test]
    fn waiter_deque_is_lazy_and_freed_when_drained() {
        let metrics = EngineMetrics::new();
        let graph = WaitForGraph::new();
        let mut q = RecordQueue::default();
        q.try_acquire(TxnId(1), LockMode::Exclusive, POLICY, &metrics);
        assert!(q.waiters.is_none(), "no conflict, no deque");
        q.enqueue_waiter(TxnId(2), LockMode::Exclusive, &metrics);
        assert!(q.waiters.is_some());
        q.remove_requests_of(TxnId(1));
        let mut woken = Vec::new();
        q.grant_from_front(&graph, &metrics, &mut woken);
        assert_eq!(woken.len(), 1);
        assert!(
            q.waiters.is_none(),
            "drained waiter deque must be released back to the lazy state"
        );
    }

    #[test]
    fn granted_upgrade_replaces_holder_entry_instead_of_duplicating() {
        let metrics = EngineMetrics::new();
        let graph = WaitForGraph::new();
        let mut q = RecordQueue::default();
        // T1 and T2 share the record; T1's queued upgrade is blocked by T2.
        q.try_acquire(TxnId(1), LockMode::Shared, POLICY, &metrics);
        q.try_acquire(TxnId(2), LockMode::Shared, POLICY, &metrics);
        assert!(matches!(
            q.try_acquire(TxnId(1), LockMode::Exclusive, POLICY, &metrics),
            AcquireOutcome::MustWait(_)
        ));
        q.enqueue_waiter(TxnId(1), LockMode::Exclusive, &metrics);
        // T2 releases: the grant scan must upgrade T1's existing entry in
        // place, not append a duplicate holder.
        q.remove_requests_of(TxnId(2));
        let mut woken = Vec::new();
        q.grant_from_front(&graph, &metrics, &mut woken);
        assert_eq!(woken.len(), 1);
        assert_eq!(q.holder_ids(), vec![TxnId(1)], "exactly one holder entry");
        assert!(q.is_granted(TxnId(1), LockMode::Exclusive));
        assert_eq!(q.waiter_count(), 0);
    }

    #[test]
    fn grant_scan_is_fifo_and_compat_bounded() {
        let metrics = EngineMetrics::new();
        let graph = WaitForGraph::new();
        let mut q = RecordQueue::default();
        q.try_acquire(TxnId(1), LockMode::Exclusive, POLICY, &metrics);
        q.enqueue_waiter(TxnId(2), LockMode::Shared, &metrics);
        q.enqueue_waiter(TxnId(3), LockMode::Shared, &metrics);
        q.enqueue_waiter(TxnId(4), LockMode::Exclusive, &metrics);
        q.remove_requests_of(TxnId(1));
        let mut woken = Vec::new();
        q.grant_from_front(&graph, &metrics, &mut woken);
        // Both Shared waiters are granted together; the Exclusive stays.
        assert_eq!(woken.len(), 2);
        assert_eq!(q.holder_ids(), vec![TxnId(2), TxnId(3)]);
        assert_eq!(q.waiter_count(), 1);
    }
}
