//! The sharded per-transaction lock registry.
//!
//! Both lock tables used to track "which records does transaction T hold"
//! in one global `Mutex<FxHashMap<TxnId, Vec<RecordId>>>`: every acquisition
//! and every release-all from **every** worker serialized on that one mutex,
//! and the `Vec::contains` dedupe made each acquisition O(locks already
//! held).  That is precisely the centralized-bookkeeping contention the
//! paper's §3 motivation (Figure 6c/6d) blames for the lock manager's
//! collapse, and what Ren et al. identify as the dominant multicore scaling
//! lever.
//!
//! [`TxnLockRegistry`] decentralizes it: entries are sharded by `TxnId` so
//! two transactions only contend when they hash to the same shard, and shards
//! are cache-padded so neighbouring shard mutexes do not false-share.
//!
//! Per-transaction records are an **append log**: [`TxnLockRegistry::remember_record`]
//! is a plain `Vec::push` (with a cheap last-entry dedupe for the common
//! re-lock-the-same-row case), so the acquire path pays no ordered insert and
//! no binary search.  The page-major sort the release paths want is deferred
//! to [`TxnLockRegistry::take_all`] — release is already batched, so sorting
//! **once per transaction** at release amortizes what a sorted-insert scheme
//! paid on every acquisition.  `take_all` removes the whole entry from the
//! owning shard in one lock acquisition, sorts + dedupes it, and hands the
//! records back pre-grouped ([`TxnLocks::page_groups`] yields one contiguous
//! slice per page with no further allocation), so the page-sharded lock
//! system takes each page's shard mutex once per page and drains every
//! heap_no under it, instead of re-locking the shard once per record.
//! [`TxnLockRegistry::forget_records`] batches the early-release bookkeeping
//! (Bamboo) the same way — one shard lock per batch, not one per row (the
//! log is unsorted, so removal is a linear scan, bounded by the handful of
//! locks a realistic transaction holds).  Rare duplicate log entries (a
//! transaction that queued a lock *upgrade* on a record it already holds
//! appends the record a second time) are collapsed by `take_all`'s dedupe;
//! [`TxnLockRegistry::record_count_of`] may transiently count them, which
//! only nudges the deadlock victim weight.
//!
//! Since the queue-core unification both lock tables feed this registry
//! identically (the shared wait loop forgets a timed-out waiter's record,
//! `release_record_locks` forgets a whole statement-boundary batch); the
//! registry is table-agnostic — each table owns its own instance, and only
//! the shard counts differ (page-sharded baseline vs. record-keyed
//! lightweight table).  Release-path shard acquisitions (here and in the
//! lock tables) are counted through the caller's
//! [`MetricsSink`] — the engine passes the transaction's `Cell`-based
//! scratch, stand-alone callers the shared `EngineMetrics` — and land in
//! `EngineMetrics::release_shard_locks`, the denominator for the batching
//! amortization the bench records.
//!
//! The registry also remembers which **tables** a transaction holds
//! intention locks on, so table-lock release no longer scans every table's
//! holder list.
//!
//! When constructed with a metrics handle, the registry feeds
//! `EngineMetrics::locks_released` on its sink-less convenience methods;
//! live-entry counts are kept **per shard** (a plain integer guarded by the
//! shard mutex — no shared atomic on the acquire path) and aggregated on
//! demand by [`TxnLockRegistry::total_entries`], which the engine samples
//! into the `lock_registry_entries` gauge at snapshot time.

use crate::wake_check::GuardScope;
use parking_lot::Mutex;
use std::sync::Arc;
use txsql_common::fxhash::{self, FxHashMap};
use txsql_common::ids::PageId;
use txsql_common::metrics::{EngineMetrics, MetricsSink};
use txsql_common::pad::CachePadded;
use txsql_common::{RecordId, TableId, TxnId};

/// Everything a transaction held (or waited on) through one lock table,
/// as returned by [`TxnLockRegistry::take_all`].
#[derive(Debug, Default)]
pub struct TxnLocks {
    /// Records locked or waited on, deduplicated and sorted page-major
    /// (`RecordId`'s ordering is `(space_id, page_no, heap_no)`), so one
    /// page's records form one contiguous run — see
    /// [`TxnLocks::page_groups`].  The sort happens once, in `take_all`;
    /// the live entry is an unsorted append log.
    pub records: Vec<RecordId>,
    /// Tables with intention locks (tiny in practice, deduplicated).
    pub tables: Vec<TableId>,
}

impl TxnLocks {
    /// Total number of records.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// True when `record` is tracked.
    pub fn contains(&self, record: RecordId) -> bool {
        self.records.binary_search(&record).is_ok()
    }

    /// The records grouped by page: one `(page, records-on-that-page)` pair
    /// per distinct page, in page order, with no further allocation.  The
    /// page-sharded release path takes each page's shard mutex exactly once
    /// per group.
    pub fn page_groups(&self) -> impl Iterator<Item = (PageId, &[RecordId])> {
        self.records
            .chunk_by(|a, b| a.page() == b.page())
            .map(|chunk| (chunk[0].page(), chunk))
    }
}

/// Live per-transaction state inside a shard: the records are an **unsorted
/// append log** — `remember_record` is a plain push (the acquire-path cost),
/// and `take_all` pays the one sort + dedupe at release, where the batch
/// APIs already amortize everything else.  Transactions hold few locks in
/// the paper's workloads, so the occasional linear scan (`forget_records`)
/// stays cheap.  (A transaction holding many thousands of locks would prefer
/// a tiered structure; nothing in the evaluated workloads comes close.)
#[derive(Debug, Default)]
struct TxnEntry {
    records: Vec<RecordId>,
    tables: Vec<TableId>,
}

impl TxnEntry {
    fn is_empty(&self) -> bool {
        self.records.is_empty() && self.tables.is_empty()
    }
}

#[derive(Debug, Default)]
struct Shard {
    txns: FxHashMap<TxnId, TxnEntry>,
    /// Live `(txn, record)` log entries in this shard.  Guarded by the shard
    /// mutex, so counting costs nothing extra on the hot path and never
    /// bounces a shared cache line between shards.
    live_records: u64,
}

/// Sharded, cache-padded map from transaction to its held locks.
#[derive(Debug)]
pub struct TxnLockRegistry {
    shards: Box<[CachePadded<Mutex<Shard>>]>,
    metrics: Option<Arc<EngineMetrics>>,
}

impl TxnLockRegistry {
    /// Creates a registry with `n_shards` shards (rounded up to at least 1).
    pub fn new(n_shards: usize) -> Self {
        Self::build(n_shards, None)
    }

    /// Creates a registry that feeds the `locks_released` counter on
    /// `metrics` from its sink-less convenience methods (live-entry counts
    /// stay per shard; see module docs).
    pub fn with_metrics(n_shards: usize, metrics: Arc<EngineMetrics>) -> Self {
        Self::build(n_shards, Some(metrics))
    }

    fn build(n_shards: usize, metrics: Option<Arc<EngineMetrics>>) -> Self {
        let n = n_shards.max(1);
        Self {
            shards: (0..n)
                .map(|_| CachePadded::new(Mutex::new(Shard::default())))
                .collect(),
            metrics,
        }
    }

    #[inline]
    fn shard_for(&self, txn: TxnId) -> &Mutex<Shard> {
        let idx = (fxhash::hash_u64(txn.0) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Records that `txn` holds (or waits on) `record`: one shard lock and
    /// one `Vec::push`.  Immediately repeated records (re-locking the row
    /// the statement just locked) are skipped via a last-entry check; other
    /// duplicates are collapsed by `take_all`'s dedupe.  Returns true when
    /// the record was appended.
    pub fn remember_record(&self, txn: TxnId, record: RecordId) -> bool {
        let mut shard = self.shard_for(txn).lock();
        let _scope = GuardScope::enter();
        let records = &mut shard.txns.entry(txn).or_default().records;
        if records.last() == Some(&record) {
            return false;
        }
        records.push(record);
        shard.live_records += 1;
        true
    }

    /// Forgets a single record (early release).  Returns true when the
    /// record was tracked.
    pub fn forget_record(&self, txn: TxnId, record: RecordId) -> bool {
        self.forget_records(txn, std::slice::from_ref(&record)) == 1
    }

    /// [`TxnLockRegistry::forget_records`] with the counts routed through
    /// the caller's sink (the engine passes the transaction's scratch).
    pub fn forget_records_in<S: MetricsSink + ?Sized>(
        &self,
        txn: TxnId,
        records: &[RecordId],
        sink: &S,
    ) -> usize {
        let released = {
            let mut shard = self.shard_for(txn).lock();
            let _scope = GuardScope::enter();
            sink.on_release_shard_lock();
            // Two tallies: `log_entries` (every log copy dropped — keeps the
            // per-shard live_records balance, which counts pushes) and
            // `released` (distinct records actually tracked — what the
            // locks_released metric reports; a record a queued upgrade
            // logged twice is still one lock).
            let mut log_entries = 0usize;
            let mut released = 0usize;
            if let Some(entry) = shard.txns.get_mut(&txn) {
                for record in records {
                    // The log is unsorted (append-only), so removal is a
                    // linear scan; retain() also drops any duplicate log
                    // entries of the same record together, so a forgotten
                    // record never leaves a stale entry behind.
                    let before = entry.records.len();
                    entry.records.retain(|r| r != record);
                    let dropped = before - entry.records.len();
                    log_entries += dropped;
                    if dropped > 0 {
                        released += 1;
                    }
                }
                if entry.is_empty() {
                    shard.txns.remove(&txn);
                }
            }
            shard.live_records -= log_entries as u64;
            released
        };
        if released > 0 {
            sink.on_locks_released(released as u64);
        }
        released
    }

    /// Forgets a batch of records with one shard lock for the whole batch
    /// (the bookkeeping half of batched early lock release — the write path
    /// accumulates a statement's early releases and flushes them through one
    /// call here).  Returns how many of them were actually tracked.
    pub fn forget_records(&self, txn: TxnId, records: &[RecordId]) -> usize {
        match &self.metrics {
            Some(metrics) => self.forget_records_in(txn, records, &**metrics),
            None => self.forget_records_in(txn, records, &NoopSink),
        }
    }

    /// Records that `txn` holds an intention lock on `table`.
    pub fn remember_table(&self, txn: TxnId, table: TableId) {
        let mut shard = self.shard_for(txn).lock();
        let tables = &mut shard.txns.entry(txn).or_default().tables;
        if !tables.contains(&table) {
            tables.push(table);
        }
    }

    /// [`TxnLockRegistry::take_all`] with the counts routed through the
    /// caller's sink (the engine passes the transaction's scratch).
    pub fn take_all_in<S: MetricsSink + ?Sized>(&self, txn: TxnId, sink: &S) -> Option<TxnLocks> {
        let taken = {
            let mut shard = self.shard_for(txn).lock();
            let _scope = GuardScope::enter();
            sink.on_release_shard_lock();
            let taken = shard.txns.remove(&txn);
            if let Some(entry) = &taken {
                shard.live_records -= entry.records.len() as u64;
            }
            taken
        };
        let mut entry = taken?;
        // The one deferred sort: page-major order + dedupe, paid once per
        // transaction instead of once per acquisition.
        entry.records.sort_unstable();
        entry.records.dedup();
        sink.on_locks_released(entry.records.len() as u64);
        Some(TxnLocks {
            records: entry.records,
            tables: entry.tables,
        })
    }

    /// Removes and returns everything `txn` holds — one shard lock, no walk
    /// of anyone else's state — with the records sorted page-major and
    /// deduplicated (see [`TxnLocks::page_groups`]).  Returns `None` when
    /// the transaction holds nothing.
    pub fn take_all(&self, txn: TxnId) -> Option<TxnLocks> {
        match &self.metrics {
            Some(metrics) => self.take_all_in(txn, &**metrics),
            None => self.take_all_in(txn, &NoopSink),
        }
    }

    /// Number of log entries `txn` currently holds or waits on (may
    /// transiently include a duplicate for a queued upgrade — see module
    /// docs; used as the deadlock victim weight).
    pub fn record_count_of(&self, txn: TxnId) -> usize {
        self.shard_for(txn)
            .lock()
            .txns
            .get(&txn)
            .map(|e| e.records.len())
            .unwrap_or(0)
    }

    /// Total live `(txn, record)` entries across all shards (O(shards) —
    /// each shard keeps its own count, so this is a sum of integers, not a
    /// walk).  Sampled into the `lock_registry_entries` gauge at snapshot
    /// time.
    pub fn total_entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().live_records as usize)
            .sum()
    }

    /// True when no transaction holds anything.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().txns.is_empty())
    }

    /// Number of shards (introspection / tests).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Largest number of transactions tracked by any one shard — the
    /// shard-size signal for the bookkeeping gauge.
    pub fn max_shard_txns(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().txns.len())
            .max()
            .unwrap_or(0)
    }
}

/// Throw-away sink for registries constructed without a metrics handle.
struct NoopSink;

impl MetricsSink for NoopSink {
    fn on_lock_created(&self) {}
    fn on_locks_released(&self, _n: u64) {}
    fn on_release_shard_lock(&self) {}
    fn on_grant_scan(&self, _len: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    const R1: RecordId = RecordId {
        space_id: 1,
        page_no: 0,
        heap_no: 0,
    };
    const R2: RecordId = RecordId {
        space_id: 1,
        page_no: 0,
        heap_no: 1,
    };

    #[test]
    fn remember_skips_consecutive_duplicates() {
        let reg = TxnLockRegistry::new(8);
        assert!(reg.remember_record(TxnId(1), R1));
        assert!(!reg.remember_record(TxnId(1), R1));
        assert!(reg.remember_record(TxnId(1), R2));
        assert_eq!(reg.record_count_of(TxnId(1)), 2);
        assert_eq!(reg.total_entries(), 2);
    }

    #[test]
    fn take_all_dedupes_interleaved_duplicates() {
        let reg = TxnLockRegistry::new(8);
        // R1 appended twice with R2 in between (the queued-upgrade shape):
        // the log keeps both, take_all collapses them.
        assert!(reg.remember_record(TxnId(1), R1));
        assert!(reg.remember_record(TxnId(1), R2));
        assert!(reg.remember_record(TxnId(1), R1));
        assert_eq!(reg.record_count_of(TxnId(1)), 3, "log keeps the duplicate");
        let locks = reg.take_all(TxnId(1)).unwrap();
        assert_eq!(locks.records, vec![R1, R2], "sorted and deduplicated");
        assert!(reg.is_empty());
        assert_eq!(reg.total_entries(), 0);
    }

    #[test]
    fn take_all_empties_the_transaction() {
        let reg = TxnLockRegistry::new(8);
        reg.remember_record(TxnId(1), R1);
        reg.remember_table(TxnId(1), TableId(3));
        let locks = reg.take_all(TxnId(1)).unwrap();
        assert!(locks.contains(R1));
        assert_eq!(locks.tables, vec![TableId(3)]);
        assert!(reg.take_all(TxnId(1)).is_none());
        assert!(reg.is_empty());
    }

    #[test]
    fn forget_record_prunes_empty_entries() {
        let reg = TxnLockRegistry::new(8);
        reg.remember_record(TxnId(1), R1);
        assert!(reg.forget_record(TxnId(1), R1));
        assert!(!reg.forget_record(TxnId(1), R1));
        assert!(reg.is_empty());
    }

    #[test]
    fn live_counts_and_release_metrics_track_entries() {
        let metrics = Arc::new(EngineMetrics::new());
        let reg = TxnLockRegistry::with_metrics(8, Arc::clone(&metrics));
        reg.remember_record(TxnId(1), R1);
        reg.remember_record(TxnId(1), R2);
        reg.remember_record(TxnId(2), R1);
        assert_eq!(reg.total_entries(), 3);
        reg.forget_record(TxnId(1), R2);
        assert_eq!(reg.total_entries(), 2);
        assert_eq!(metrics.locks_released.get(), 1);
        reg.take_all(TxnId(1));
        reg.take_all(TxnId(2));
        assert_eq!(reg.total_entries(), 0);
        assert_eq!(metrics.locks_released.get(), 3);
    }

    #[test]
    fn sink_variants_route_counts_to_the_scratch() {
        use txsql_common::metrics::MetricsScratch;
        let metrics = Arc::new(EngineMetrics::new());
        let reg = TxnLockRegistry::with_metrics(8, Arc::clone(&metrics));
        let scratch = MetricsScratch::new();
        reg.remember_record(TxnId(1), R1);
        reg.remember_record(TxnId(1), R2);
        assert_eq!(reg.forget_records_in(TxnId(1), &[R1], &scratch), 1);
        assert!(reg.take_all_in(TxnId(1), &scratch).is_some());
        // Shared counters untouched until the flush.
        assert_eq!(metrics.locks_released.get(), 0);
        assert_eq!(metrics.release_shard_locks.get(), 0);
        assert_eq!(scratch.pending_locks_released(), 2);
        assert_eq!(scratch.pending_release_shard_locks(), 2);
        scratch.flush(&metrics);
        assert_eq!(metrics.locks_released.get(), 2);
        assert_eq!(metrics.release_shard_locks.get(), 2);
    }

    #[test]
    fn take_all_groups_records_by_page() {
        let reg = TxnLockRegistry::new(8);
        // Insert interleaved across two pages; take_all must come back
        // page-grouped regardless of insertion order (the deferred sort).
        reg.remember_record(TxnId(1), RecordId::new(1, 8, 0));
        for heap in 0..4u16 {
            reg.remember_record(TxnId(1), RecordId::new(1, 7, heap));
        }
        let locks = reg.take_all(TxnId(1)).unwrap();
        assert_eq!(locks.record_count(), 5);
        let groups: Vec<_> = locks.page_groups().collect();
        assert_eq!(groups.len(), 2, "two distinct pages");
        assert_eq!(groups[0].0, RecordId::new(1, 7, 0).page());
        assert_eq!(groups[0].1.len(), 4);
        assert_eq!(groups[1].0, RecordId::new(1, 8, 0).page());
        assert_eq!(groups[1].1, &[RecordId::new(1, 8, 0)]);
        assert!(locks.contains(RecordId::new(1, 7, 2)));
        assert!(!locks.contains(RecordId::new(1, 9, 0)));
    }

    #[test]
    fn forget_records_batch_takes_one_pass() {
        let metrics = Arc::new(EngineMetrics::new());
        let reg = TxnLockRegistry::with_metrics(8, Arc::clone(&metrics));
        reg.remember_record(TxnId(1), R1);
        reg.remember_record(TxnId(1), R2);
        let untracked = RecordId::new(5, 5, 5);
        assert_eq!(reg.forget_records(TxnId(1), &[R1, R2, untracked]), 2);
        assert!(reg.is_empty());
        assert_eq!(metrics.locks_released.get(), 2);
    }

    #[test]
    fn forgetting_a_twice_logged_record_releases_it_once() {
        // A queued upgrade logs its record a second time (non-consecutive,
        // so the last-entry dedupe misses it).  Forgetting that record must
        // drop BOTH log copies but count ONE released lock — and the
        // per-shard live count must stay balanced so the gauge drains.
        let metrics = Arc::new(EngineMetrics::new());
        let reg = TxnLockRegistry::with_metrics(8, Arc::clone(&metrics));
        reg.remember_record(TxnId(1), R1);
        reg.remember_record(TxnId(1), R2);
        reg.remember_record(TxnId(1), R1);
        assert_eq!(reg.total_entries(), 3);
        assert_eq!(reg.forget_records(TxnId(1), &[R1]), 1, "one lock, not two");
        assert_eq!(metrics.locks_released.get(), 1);
        assert_eq!(reg.total_entries(), 1, "both log copies must be gone");
        reg.take_all(TxnId(1));
        assert_eq!(reg.total_entries(), 0);
        assert_eq!(metrics.locks_released.get(), 2);
        assert!(reg.is_empty());
    }

    #[test]
    fn tables_deduplicate() {
        let reg = TxnLockRegistry::new(8);
        reg.remember_table(TxnId(1), TableId(1));
        reg.remember_table(TxnId(1), TableId(1));
        reg.remember_table(TxnId(1), TableId(2));
        assert_eq!(
            reg.take_all(TxnId(1)).unwrap().tables,
            vec![TableId(1), TableId(2)]
        );
    }

    #[test]
    fn concurrent_transactions_do_not_interfere() {
        let reg = Arc::new(TxnLockRegistry::new(16));
        let handles: Vec<_> = (1..=8u64)
            .map(|t| {
                let reg = Arc::clone(&reg);
                thread::spawn(move || {
                    for heap in 0..64u16 {
                        reg.remember_record(TxnId(t), RecordId::new(1, t as u32, heap));
                    }
                    assert_eq!(reg.record_count_of(TxnId(t)), 64);
                    let locks = reg.take_all(TxnId(t)).unwrap();
                    assert_eq!(locks.record_count(), 64);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(reg.is_empty());
    }
}
