//! `OsEvent`: the wait/wake primitive used by every waiting path.
//!
//! InnoDB parks waiting threads on `os_event_t` objects (`os_event_wait` /
//! `os_event_set`), and the paper's pseudo-code (Algorithms 1–2) does the
//! same for hotspot followers.  [`OsEvent`] is the equivalent built on
//! `parking_lot`'s `Mutex` + `Condvar`: a one-shot, resettable boolean event
//! with timeout support.
//!
//! Waiting is the *only* path that needs an event, and events are reusable,
//! so the lock tables draw them from a thread-local free list
//! ([`OsEvent::acquire_pooled`] / [`OsEvent::recycle`]) instead of
//! allocating per wait.  An event is only returned to the pool once its
//! `Arc` is unique — i.e. no granter still holds a clone that could `set()`
//! it later — so a recycled event can never receive a stale wake-up.  That
//! unique-`Arc` rule is what lets *every* waiting path — the lock tables,
//! group-lock wait slots, queue-lock tickets and commit-turn waits — drain
//! its event back to the pool on success, timeout and cancellation alike.
//!
//! Under deterministic simulation (`txsql-sim`), `wait`/`wait_for`/`set`
//! route through the cooperative scheduler: waiters park in the sim (on the
//! virtual clock for timed waits) instead of the OS condvar, which makes
//! lost-wakeup and stale-wake bugs reproducible from a seed.

use parking_lot::{Condvar, Mutex};
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Duration;

/// Per-thread free list size: enough for the deepest realistic wait nesting,
/// small enough to be cache-friendly.
const POOL_CAP: usize = 32;

thread_local! {
    static EVENT_POOL: RefCell<Vec<Arc<OsEvent>>> = const { RefCell::new(Vec::new()) };
}

/// A resettable signalling event.
#[derive(Debug, Default)]
pub struct OsEvent {
    signalled: Mutex<bool>,
    condvar: Condvar,
}

/// Outcome of a timed wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The event was set before the deadline.
    Signalled,
    /// The deadline passed without a signal.
    TimedOut,
}

impl OsEvent {
    /// Creates a new, unsignalled event behind an `Arc` (events are shared
    /// between the waiting transaction and whoever wakes it).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Takes an unsignalled event from the current thread's free list, or
    /// allocates one if the list is empty.
    pub fn acquire_pooled() -> Arc<Self> {
        EVENT_POOL
            .with(|pool| pool.borrow_mut().pop())
            .inspect(|event| {
                event.reset();
            })
            .unwrap_or_default()
    }

    /// Returns an event to the current thread's free list if no one else
    /// still holds a clone of it (a late `set()` through a leftover clone
    /// must not wake the event's next user); otherwise the `Arc` is simply
    /// dropped.
    pub fn recycle(event: Arc<Self>) {
        if Arc::strong_count(&event) == 1 {
            EVENT_POOL.with(|pool| {
                let mut pool = pool.borrow_mut();
                if pool.len() < POOL_CAP {
                    event.reset();
                    pool.push(event);
                }
            });
        }
    }

    /// Number of events currently in the calling thread's free list (test
    /// observability for the recycle paths).
    pub fn pooled_count() -> usize {
        EVENT_POOL.with(|pool| pool.borrow().len())
    }

    /// Sets the event, waking all current and future waiters (until reset).
    ///
    /// Debug builds assert the **wake-outside-lock** invariant here: a set
    /// while the calling thread holds a lockmgr shard/state guard is a
    /// latent convoy (the woken thread immediately blocks on that guard) —
    /// every release/grant/handover path collects its events under the guard
    /// and fires them after dropping it (see the private `wake_check`
    /// module; the crate docs' fast-path section describes the invariant).
    pub fn set(&self) {
        crate::wake_check::assert_wake_outside_guard();
        let mut signalled = self.signalled.lock();
        *signalled = true;
        self.condvar.notify_all();
        drop(signalled);
        // Under deterministic simulation, waiters are parked in the scheduler
        // on this event's key rather than on the condvar.  The set is also a
        // *preemption point*: the woken waiter may run before the setter
        // proceeds.  That is legal precisely because of the wake-outside-lock
        // invariant asserted above — the setter holds no shard/state guard
        // here, so the waiter cannot convoy on it.
        if let Some(handle) = txsql_sim::current() {
            let key = txsql_sim::key_of(self);
            handle.unpark_all(key);
            handle.yield_at(txsql_sim::Resource::new(
                txsql_sim::ResourceKind::Event,
                key,
            ));
        }
    }

    /// Clears the event so the next wait blocks again.
    pub fn reset(&self) {
        *self.signalled.lock() = false;
    }

    /// Returns whether the event is currently set without blocking.
    pub fn is_set(&self) -> bool {
        *self.signalled.lock()
    }

    /// Blocks until the event is set.
    pub fn wait(&self) {
        if let Some(handle) = txsql_sim::current() {
            // Sim path: park in the scheduler.  Cooperative scheduling makes
            // the check-then-park atomic with respect to other sim threads,
            // so a `set` between the two is impossible.
            let key = txsql_sim::key_of(self);
            loop {
                if *self.signalled.lock() {
                    return;
                }
                handle.park_at(key, txsql_sim::ResourceKind::Event);
            }
        }
        let mut signalled = self.signalled.lock();
        while !*signalled {
            self.condvar.wait(&mut signalled);
        }
    }

    /// Blocks until the event is set or `timeout` elapses.
    pub fn wait_for(&self, timeout: Duration) -> WaitOutcome {
        if let Some(handle) = txsql_sim::current() {
            // Sim path: timed park on the virtual clock — the deadline fires
            // deterministically when the scheduler has nothing else to run.
            let key = txsql_sim::key_of(self);
            let deadline = handle.now().saturating_add(timeout);
            loop {
                if *self.signalled.lock() {
                    return WaitOutcome::Signalled;
                }
                let now = handle.now();
                if now >= deadline {
                    return WaitOutcome::TimedOut;
                }
                if handle.park_timeout_at(key, txsql_sim::ResourceKind::Event, deadline - now) {
                    return if *self.signalled.lock() {
                        WaitOutcome::Signalled
                    } else {
                        WaitOutcome::TimedOut
                    };
                }
            }
        }
        let deadline = std::time::Instant::now() + timeout;
        let mut signalled = self.signalled.lock();
        while !*signalled {
            if self
                .condvar
                .wait_until(&mut signalled, deadline)
                .timed_out()
            {
                return if *signalled {
                    WaitOutcome::Signalled
                } else {
                    WaitOutcome::TimedOut
                };
            }
        }
        WaitOutcome::Signalled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn set_before_wait_does_not_block() {
        let ev = OsEvent::new();
        ev.set();
        assert!(ev.is_set());
        ev.wait();
        assert_eq!(
            ev.wait_for(Duration::from_millis(1)),
            WaitOutcome::Signalled
        );
    }

    #[test]
    fn wait_blocks_until_set_from_another_thread() {
        let ev = OsEvent::new();
        let ev2 = Arc::clone(&ev);
        let waiter = thread::spawn(move || {
            ev2.wait();
            true
        });
        thread::sleep(Duration::from_millis(20));
        ev.set();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn wait_for_times_out_when_never_set() {
        let ev = OsEvent::new();
        let start = std::time::Instant::now();
        assert_eq!(
            ev.wait_for(Duration::from_millis(30)),
            WaitOutcome::TimedOut
        );
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn reset_makes_subsequent_waits_block_again() {
        let ev = OsEvent::new();
        ev.set();
        ev.reset();
        assert!(!ev.is_set());
        assert_eq!(
            ev.wait_for(Duration::from_millis(10)),
            WaitOutcome::TimedOut
        );
    }

    #[test]
    fn pooled_events_are_reused_when_unique() {
        let ev = OsEvent::acquire_pooled();
        ev.set();
        let ptr = Arc::as_ptr(&ev);
        OsEvent::recycle(ev);
        let again = OsEvent::acquire_pooled();
        assert_eq!(Arc::as_ptr(&again), ptr, "unique event should be pooled");
        assert!(!again.is_set(), "recycled event must come back unsignalled");
        OsEvent::recycle(again);
    }

    #[test]
    fn shared_events_are_not_pooled() {
        let ev = OsEvent::acquire_pooled();
        let ptr = Arc::as_ptr(&ev);
        let clone = Arc::clone(&ev);
        OsEvent::recycle(ev);
        let next = OsEvent::acquire_pooled();
        assert_ne!(Arc::as_ptr(&next), ptr, "shared event must not be recycled");
        drop(clone);
        OsEvent::recycle(next);
    }

    #[test]
    fn many_waiters_are_all_woken() {
        let ev = OsEvent::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let ev = Arc::clone(&ev);
                thread::spawn(move || {
                    ev.wait();
                })
            })
            .collect();
        thread::sleep(Duration::from_millis(10));
        ev.set();
        for h in handles {
            h.join().unwrap();
        }
    }
}
