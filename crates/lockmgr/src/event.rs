//! `OsEvent`: the wait/wake primitive used by every waiting path.
//!
//! InnoDB parks waiting threads on `os_event_t` objects (`os_event_wait` /
//! `os_event_set`), and the paper's pseudo-code (Algorithms 1–2) does the
//! same for hotspot followers.  [`OsEvent`] is the equivalent built on
//! `parking_lot`'s `Mutex` + `Condvar`: a one-shot, resettable boolean event
//! with timeout support.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

/// A resettable signalling event.
#[derive(Debug, Default)]
pub struct OsEvent {
    signalled: Mutex<bool>,
    condvar: Condvar,
}

/// Outcome of a timed wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The event was set before the deadline.
    Signalled,
    /// The deadline passed without a signal.
    TimedOut,
}

impl OsEvent {
    /// Creates a new, unsignalled event behind an `Arc` (events are shared
    /// between the waiting transaction and whoever wakes it).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Sets the event, waking all current and future waiters (until reset).
    pub fn set(&self) {
        let mut signalled = self.signalled.lock();
        *signalled = true;
        self.condvar.notify_all();
    }

    /// Clears the event so the next wait blocks again.
    pub fn reset(&self) {
        *self.signalled.lock() = false;
    }

    /// Returns whether the event is currently set without blocking.
    pub fn is_set(&self) -> bool {
        *self.signalled.lock()
    }

    /// Blocks until the event is set.
    pub fn wait(&self) {
        let mut signalled = self.signalled.lock();
        while !*signalled {
            self.condvar.wait(&mut signalled);
        }
    }

    /// Blocks until the event is set or `timeout` elapses.
    pub fn wait_for(&self, timeout: Duration) -> WaitOutcome {
        let deadline = std::time::Instant::now() + timeout;
        let mut signalled = self.signalled.lock();
        while !*signalled {
            if self.condvar.wait_until(&mut signalled, deadline).timed_out() {
                return if *signalled { WaitOutcome::Signalled } else { WaitOutcome::TimedOut };
            }
        }
        WaitOutcome::Signalled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn set_before_wait_does_not_block() {
        let ev = OsEvent::new();
        ev.set();
        assert!(ev.is_set());
        ev.wait();
        assert_eq!(ev.wait_for(Duration::from_millis(1)), WaitOutcome::Signalled);
    }

    #[test]
    fn wait_blocks_until_set_from_another_thread() {
        let ev = OsEvent::new();
        let ev2 = Arc::clone(&ev);
        let waiter = thread::spawn(move || {
            ev2.wait();
            true
        });
        thread::sleep(Duration::from_millis(20));
        ev.set();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn wait_for_times_out_when_never_set() {
        let ev = OsEvent::new();
        let start = std::time::Instant::now();
        assert_eq!(ev.wait_for(Duration::from_millis(30)), WaitOutcome::TimedOut);
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn reset_makes_subsequent_waits_block_again() {
        let ev = OsEvent::new();
        ev.set();
        ev.reset();
        assert!(!ev.is_set());
        assert_eq!(ev.wait_for(Duration::from_millis(10)), WaitOutcome::TimedOut);
    }

    #[test]
    fn many_waiters_are_all_woken() {
        let ev = OsEvent::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let ev = Arc::clone(&ev);
                thread::spawn(move || {
                    ev.wait();
                })
            })
            .collect();
        thread::sleep(Duration::from_millis(10));
        ev.set();
        for h in handles {
            h.join().unwrap();
        }
    }
}
