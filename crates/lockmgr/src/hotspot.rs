//! Hotspot detection and the `hot_row_hash` registry (§4.1).
//!
//! A row becomes a *hotspot* when the number of transactions waiting for its
//! lock exceeds a threshold (the paper uses 32 as a rule of thumb).  Once
//! promoted, the row's identifier lives in the `hot_row_hash`; subsequent
//! update transactions take the queue-locking (O2) or group-locking (TXSQL)
//! path instead of the plain lock manager.  A background sweeper periodically
//! demotes rows that no longer have waiters, reverting them to standard 2PL.
//!
//! Detection is deliberately lightweight: the only signal is the wait-queue
//! length the lock manager already knows, observed at the moment a
//! transaction is about to wait.

use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use txsql_common::fxhash::{self, FxHashMap, FxHashSet};
use txsql_common::pad::CachePadded;
use txsql_common::RecordId;

/// Shards for the `hot_row_hash` and the recent-wait counters.  `is_hot` is
/// consulted on every hotspot-capable acquisition, so even its read lock
/// must not be a single global cache line.
const HOT_SHARDS: usize = 64;

/// One shard of the hot-row set.
type HotShard = CachePadded<RwLock<FxHashSet<u64>>>;
/// One shard of the recent-wait counters.
type RecentShard = CachePadded<RwLock<FxHashMap<u64, u64>>>;

/// Configuration of hotspot detection.
#[derive(Debug, Clone)]
pub struct HotspotConfig {
    /// Queue length at which a row is promoted to hotspot (paper: 32).
    pub promote_threshold: usize,
    /// How often the background sweeper checks for cold rows.
    pub sweep_interval: Duration,
    /// Master switch: when false, nothing is ever promoted (plain 2PL / O1).
    pub enabled: bool,
}

impl Default for HotspotConfig {
    fn default() -> Self {
        Self {
            promote_threshold: 32,
            sweep_interval: Duration::from_millis(50),
            enabled: true,
        }
    }
}

impl HotspotConfig {
    /// A configuration with hotspot handling disabled.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }

    /// Overrides the promotion threshold.
    pub fn with_threshold(mut self, threshold: usize) -> Self {
        self.promote_threshold = threshold.max(1);
        self
    }
}

/// The `hot_row_hash`: which rows are currently treated as hotspots,
/// sharded by record so promotion checks on unrelated rows never touch the
/// same lock.
#[derive(Debug)]
pub struct HotspotRegistry {
    config: HotspotConfig,
    hot_rows: Box<[HotShard]>,
    /// Rows declared hot by the workload ([`HotspotRegistry::pin`]): the
    /// sweeper never demotes them, only an explicit
    /// [`HotspotRegistry::demote`] does.
    pinned_rows: Box<[HotShard]>,
    /// Cumulative wait observations per record since the last sweep — used by
    /// the sweeper to decide whether a hotspot is still hot.
    recent_waits: Box<[RecentShard]>,
    promotions: AtomicU64,
    demotions: AtomicU64,
}

impl HotspotRegistry {
    /// Creates a registry.
    pub fn new(config: HotspotConfig) -> Self {
        Self {
            config,
            hot_rows: (0..HOT_SHARDS)
                .map(|_| CachePadded::new(RwLock::new(FxHashSet::default())))
                .collect(),
            pinned_rows: (0..HOT_SHARDS)
                .map(|_| CachePadded::new(RwLock::new(FxHashSet::default())))
                .collect(),
            recent_waits: (0..HOT_SHARDS)
                .map(|_| CachePadded::new(RwLock::new(FxHashMap::default())))
                .collect(),
            promotions: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard_idx(key: u64) -> usize {
        (fxhash::hash_u64(key) % HOT_SHARDS as u64) as usize
    }

    /// The configuration in force.
    pub fn config(&self) -> &HotspotConfig {
        &self.config
    }

    /// Is this record currently a hotspot?
    #[inline]
    pub fn is_hot(&self, record: RecordId) -> bool {
        if !self.config.enabled {
            return false;
        }
        let key = record.packed();
        self.hot_rows[Self::shard_idx(key)].read().contains(&key)
    }

    /// Reports that a transaction is about to wait for `record` behind
    /// `queue_len` other waiters.  Promotes the record when the threshold is
    /// crossed.  Returns true when the record is (now) hot.
    pub fn observe_wait(&self, record: RecordId, queue_len: usize) -> bool {
        if !self.config.enabled {
            return false;
        }
        let key = record.packed();
        let idx = Self::shard_idx(key);
        {
            let mut recent = self.recent_waits[idx].write();
            *recent.entry(key).or_insert(0) += 1;
        }
        if self.hot_rows[idx].read().contains(&key) {
            return true;
        }
        if queue_len >= self.config.promote_threshold {
            let mut hot = self.hot_rows[idx].write();
            if hot.insert(key) {
                self.promotions.fetch_add(1, Ordering::Relaxed);
            }
            true
        } else {
            false
        }
    }

    /// Force-promotes a record (used by tests and by workloads that declare
    /// a known hotspot up front, mirroring PolarDB-style hints for
    /// comparison experiments).  The promotion is subject to the sweeper's
    /// normal decay; use [`HotspotRegistry::pin`] for a declaration that
    /// must outlive idle periods.
    pub fn promote(&self, record: RecordId) {
        let key = record.packed();
        if self.hot_rows[Self::shard_idx(key)].write().insert(key) {
            self.promotions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Declares a record hot for the lifetime of the workload: promotes it
    /// and exempts it from sweeper decay, so a declared hotspot stays hot
    /// through calm phases where no transaction ever waits for it.  Only an
    /// explicit [`HotspotRegistry::demote`] undoes a pin.
    pub fn pin(&self, record: RecordId) {
        let key = record.packed();
        let idx = Self::shard_idx(key);
        self.pinned_rows[idx].write().insert(key);
        if self.hot_rows[idx].write().insert(key) {
            self.promotions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Demotes a record back to plain 2PL (clearing any pin).
    pub fn demote(&self, record: RecordId) {
        let key = record.packed();
        let idx = Self::shard_idx(key);
        self.pinned_rows[idx].write().remove(&key);
        if self.hot_rows[idx].write().remove(&key) {
            self.demotions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One sweeper pass: demote every hot row that both (a) saw no waits since
    /// the previous sweep and (b) currently has no waiting transactions
    /// according to `has_waiters`.
    pub fn sweep<F: Fn(RecordId) -> bool>(&self, has_waiters: F) -> usize {
        if !self.config.enabled {
            return 0;
        }
        let mut demoted = 0;
        for idx in 0..HOT_SHARDS {
            let recent = std::mem::take(&mut *self.recent_waits[idx].write());
            let pinned = self.pinned_rows[idx].read();
            let mut hot = self.hot_rows[idx].write();
            hot.retain(|key| {
                let record = RecordId::from_packed(*key);
                let seen_recent_waits = recent.get(key).copied().unwrap_or(0) > 0;
                let keep = pinned.contains(key) || seen_recent_waits || has_waiters(record);
                if !keep {
                    demoted += 1;
                }
                keep
            });
        }
        self.demotions.fetch_add(demoted as u64, Ordering::Relaxed);
        demoted
    }

    /// Number of rows currently marked hot.
    pub fn hot_count(&self) -> usize {
        self.hot_rows.iter().map(|s| s.read().len()).sum()
    }

    /// Currently hot records.
    pub fn hot_records(&self) -> Vec<RecordId> {
        self.hot_rows
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .map(|k| RecordId::from_packed(*k))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Lifetime promotion count.
    pub fn promotions(&self) -> u64 {
        self.promotions.load(Ordering::Relaxed)
    }

    /// Lifetime demotion count.
    pub fn demotions(&self) -> u64 {
        self.demotions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOT: RecordId = RecordId {
        space_id: 1,
        page_no: 0,
        heap_no: 0,
    };
    const COLD: RecordId = RecordId {
        space_id: 1,
        page_no: 0,
        heap_no: 1,
    };

    #[test]
    fn promotion_happens_at_threshold() {
        let reg = HotspotRegistry::new(HotspotConfig::default().with_threshold(4));
        assert!(!reg.observe_wait(HOT, 1));
        assert!(!reg.observe_wait(HOT, 3));
        assert!(!reg.is_hot(HOT));
        assert!(reg.observe_wait(HOT, 4));
        assert!(reg.is_hot(HOT));
        assert!(!reg.is_hot(COLD));
        assert_eq!(reg.promotions(), 1);
    }

    #[test]
    fn disabled_registry_never_promotes() {
        let reg = HotspotRegistry::new(HotspotConfig::disabled());
        assert!(!reg.observe_wait(HOT, 1_000));
        assert!(!reg.is_hot(HOT));
        reg.promote(HOT); // manual promote still records, but is_hot honours the switch
        assert!(!reg.is_hot(HOT));
    }

    #[test]
    fn sweep_demotes_idle_rows_only() {
        let reg = HotspotRegistry::new(HotspotConfig::default().with_threshold(1));
        reg.observe_wait(HOT, 5);
        reg.observe_wait(COLD, 5);
        assert_eq!(reg.hot_count(), 2);
        // First sweep: both saw recent waits, nothing demoted.
        assert_eq!(reg.sweep(|_| false), 0);
        // Second sweep with no recent waits: HOT still has waiters, COLD not.
        assert_eq!(reg.sweep(|r| r == HOT), 1);
        assert!(reg.is_hot(HOT));
        assert!(!reg.is_hot(COLD));
        assert_eq!(reg.demotions(), 1);
    }

    #[test]
    fn manual_promote_and_demote() {
        let reg = HotspotRegistry::new(HotspotConfig::default());
        reg.promote(HOT);
        assert!(reg.is_hot(HOT));
        assert_eq!(reg.hot_records(), vec![HOT]);
        reg.demote(HOT);
        assert!(!reg.is_hot(HOT));
        assert_eq!(reg.hot_count(), 0);
    }

    #[test]
    fn pinned_rows_survive_idle_sweeps() {
        let reg = HotspotRegistry::new(HotspotConfig::default());
        reg.pin(HOT);
        reg.promote(COLD);
        assert!(reg.is_hot(HOT) && reg.is_hot(COLD));
        // Two idle sweeps: the unpinned promotion decays, the pin holds.
        assert_eq!(reg.sweep(|_| false), 1);
        assert_eq!(reg.sweep(|_| false), 0);
        assert!(reg.is_hot(HOT));
        assert!(!reg.is_hot(COLD));
        // An explicit demote clears the pin for good.
        reg.demote(HOT);
        assert!(!reg.is_hot(HOT));
        reg.promote(HOT);
        assert_eq!(reg.sweep(|_| false), 1, "demote must clear the pin");
    }

    #[test]
    fn repeated_promotions_counted_once() {
        let reg = HotspotRegistry::new(HotspotConfig::default().with_threshold(1));
        reg.observe_wait(HOT, 2);
        reg.observe_wait(HOT, 2);
        reg.promote(HOT);
        assert_eq!(reg.promotions(), 1);
    }

    #[test]
    fn threshold_is_at_least_one() {
        let cfg = HotspotConfig::default().with_threshold(0);
        assert_eq!(cfg.promote_threshold, 1);
    }
}
