//! Group locking for hotspot rows (§3.3, §4 — the paper's headline
//! contribution).
//!
//! Conflicting updates of a hot row are organised into *groups*:
//!
//! * the first transaction of a group is the **leader**; it is the only one
//!   that acquires (and later releases) the real row lock;
//! * subsequent transactions are **followers**: they are parked in the
//!   `waiting_updates` queue and granted execution one at a time, directly on
//!   the (still uncommitted) newest row version, without touching the lock
//!   manager at all;
//! * every executed update is appended to the row's **dependency list**
//!   (`dep_list`) together with a globally increasing `hot_update_order`;
//!   commits must proceed in dependency-list order (§4.3) and rollbacks in
//!   the reverse order (§4.4, cascading aborts);
//! * when the leader commits it stops granting (`switching_new_leader`),
//!   waits for the in-flight granted follower (`granting_new_trx`), releases
//!   the row lock and promotes the next waiter to leader of a fresh group —
//!   or, with the **dynamic batch size** optimization (§4.6.1), releases the
//!   lock without promoting anyone when the queue is empty.
//!
//! The state machine below follows Algorithms 1–3 of the paper; the method
//! names map to the pseudo-code lines noted in their doc comments.
//!
//! ## Batched commit handover
//!
//! The leader side of Algorithm 2 touches the group table twice per hot
//! record: once to quiesce ([`GroupLockTable::leader_prepare_commit`]) and
//! once to promote the next leader ([`GroupLockTable::leader_handover`]) —
//! each paying one entry-map shard lock to fetch the record's
//! `Arc<GroupEntry>`.  A leader committing N hot rows therefore took 2N+
//! shard locks and woke each promoted leader while still iterating.  The
//! batched path ([`GroupLockTable::begin_leader_commit`] /
//! [`GroupLockTable::finish_leader_handover`]) collects the leader's hot
//! records, groups them by entry shard, fetches every entry with **one
//! shard-lock take per shard** (the entry map is sharded by *page*, so the
//! multi-row flash-sale shape — several hot rows loaded together on one page
//! — resolves in a single take), caches the `Arc`s across prepare *and*
//! handover, and sets every promoted leader's event only after the last
//! state guard is dropped (wake-outside-lock).  The `handover_shard_locks`
//! counter in `EngineMetrics` records exactly these entry-map takes, making
//! the amortization observable the same way `release_shard_locks` does for
//! release batching.

use crate::event::OsEvent;
use crate::wake_check::GuardScope;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txsql_common::fxhash::{self, FxHashMap};
use txsql_common::latency::ut_delay;
use txsql_common::metrics::EngineMetrics;
use txsql_common::pad::CachePadded;
use txsql_common::time::SimInstant;
use txsql_common::{Error, RecordId, Result, TxnId};

/// Configuration of group locking.
#[derive(Debug, Clone)]
pub struct GroupLockConfig {
    /// Maximum number of follower grants per group (the paper's default batch
    /// size is 10).  `0` means unbounded.
    pub batch_size: usize,
    /// Dynamic batch size (§4.6.1): when the waiting queue is empty at
    /// commit, release the lock without nominating a new leader.
    pub dynamic_batch: bool,
    /// How long a queued hotspot update waits before giving up (the timeout
    /// that replaces deadlock detection on hot rows).
    pub hot_wait_timeout: Duration,
}

impl Default for GroupLockConfig {
    fn default() -> Self {
        Self {
            batch_size: 10,
            dynamic_batch: true,
            hot_wait_timeout: Duration::from_millis(500),
        }
    }
}

/// Role a parked transaction is woken with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WokenRole {
    /// Granted execution inside the current group (no locking).
    Follower,
    /// Promoted to leader of a new group (must acquire the row lock).
    NewLeader,
}

/// A parked hotspot update waiting to be granted.
///
/// The wake-up event is drawn from the thread-local pool and recycled when
/// the last `Arc<WaitSlot>` clone drops — whichever side (waiter, granter, or
/// the queue on cancellation) lets go last returns it, and the unique-`Arc`
/// rule in [`OsEvent::recycle`] guarantees a slot torn down mid-grant can
/// never leak a stale wake into the pool.
#[derive(Debug)]
pub struct WaitSlot {
    event: Option<Arc<OsEvent>>,
    role: Mutex<Option<WokenRole>>,
}

impl WaitSlot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            event: Some(OsEvent::acquire_pooled()),
            role: Mutex::new(None),
        })
    }

    /// The event the owner waits on.
    pub fn event(&self) -> &Arc<OsEvent> {
        self.event.as_ref().expect("slot event present until drop")
    }

    /// Role assigned by the waker, if any.
    pub fn role(&self) -> Option<WokenRole> {
        *self.role.lock()
    }
}

impl Drop for WaitSlot {
    fn drop(&mut self) {
        if let Some(event) = self.event.take() {
            OsEvent::recycle(event);
        }
    }
}

/// Outcome of starting a hotspot update.
#[derive(Debug)]
pub enum HotExecution {
    /// The transaction is the group leader: acquire the row lock, then call
    /// [`GroupLockTable::register_update`].
    Leader,
    /// Granted follower execution immediately (no other hotspot update was in
    /// flight): register the update and execute without locking.
    Follower,
    /// Park on the slot; the waker assigns [`WokenRole`].
    Wait(Arc<WaitSlot>),
}

/// Outcome of cancelling a parked wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// Successfully removed from the queue.
    Cancelled,
    /// The grant raced ahead: the transaction must proceed with this role.
    AlreadyGranted(WokenRole),
}

/// Outcome of asking for the commit turn.
#[derive(Debug)]
pub enum CommitTurn {
    /// All dependency-list predecessors have committed: proceed.
    Ready,
    /// A predecessor rolled back; this transaction must cascade-abort.
    Doomed {
        /// The transaction whose rollback doomed us.
        cause: TxnId,
    },
    /// Wait on this event, then ask again.
    Wait(Arc<OsEvent>),
}

#[derive(Debug)]
struct Waiter {
    txn: TxnId,
    slot: Arc<WaitSlot>,
}

#[derive(Debug, Default)]
struct GroupState {
    /// Executed-but-uncommitted transactions in update order.
    dep_list: Vec<TxnId>,
    /// Transactions doomed to cascade-abort, with the causing transaction.
    doomed: FxHashMap<TxnId, TxnId>,
    /// Parked hotspot updates.
    waiting_updates: VecDeque<Waiter>,
    /// Current group leader (holder of the real row lock).
    leader: Option<TxnId>,
    /// Transaction whose hotspot update is currently in flight, if any.
    executing: Option<TxnId>,
    /// `granting_new_trx`: a granted hotspot update has not yet finished.
    granting_new_trx: bool,
    /// `switching_new_leader`: the leader is committing; stop granting.
    switching_new_leader: bool,
    /// Followers granted in the current group (for the batch size).
    granted_in_group: usize,
    /// Server-initiated rollback in progress (§4.4 rollback optimization):
    /// no new grants, no leader handover.
    rollback_pause: bool,
    /// Transactions between `begin_rollback` and `finish_rollback` on this
    /// record (granting stays paused until the last one resumes).
    rolling_back: Vec<TxnId>,
    /// The subset of `rolling_back` whose storage undo has not completed
    /// yet.  An update that registers while this is non-empty may have read
    /// a rolling-back transaction's uncommitted head (it was granted before
    /// the pause and registers after the doom scan), so it is doomed on
    /// registration — otherwise it could commit a value derived from an
    /// aborted write.  Once the undo has run (`mark_undone`) the head is
    /// clean again and later registrants need no doom.
    undo_pending: Vec<TxnId>,
    /// Transactions waiting for their commit turn.
    commit_waiters: Vec<(TxnId, Arc<OsEvent>)>,
    /// Set (under this state's mutex) when `maybe_gc` removed the entry from
    /// the shard map.  A thread that fetched the entry's `Arc` *before* the
    /// removal discovers the flag after locking and retries through the map
    /// — the fetch-then-lock lifecycle race that used to orphan waiters.
    dead: bool,
}

impl GroupState {
    fn is_idle(&self) -> bool {
        self.dep_list.is_empty()
            && self.waiting_updates.is_empty()
            && self.leader.is_none()
            && self.commit_waiters.is_empty()
            && self.doomed.is_empty()
            && self.rolling_back.is_empty()
    }

    /// Drains the commit waiters for the caller to wake **after** dropping
    /// the state guard (wake-outside-lock).
    #[must_use = "fire these events after dropping the state guard"]
    fn take_commit_waiters(&mut self) -> Vec<Arc<OsEvent>> {
        self.commit_waiters
            .drain(..)
            .map(|(_, event)| event)
            .collect()
    }

    /// Promotes the next parked update to leader of a fresh group.  The
    /// caller fires the returned slot's event after dropping the guard.
    fn promote_next_leader(&mut self, metrics: &EngineMetrics) -> Option<(TxnId, Arc<WaitSlot>)> {
        let waiter = self.waiting_updates.pop_front()?;
        self.leader = Some(waiter.txn);
        self.granted_in_group = 0;
        self.switching_new_leader = false;
        // The new leader's own update is considered in flight until it
        // calls `finish_update`, so nobody can slip in between.
        self.granting_new_trx = true;
        self.executing = Some(waiter.txn);
        metrics.groups_formed.inc();
        *waiter.slot.role.lock() = Some(WokenRole::NewLeader);
        Some((waiter.txn, waiter.slot))
    }
}

#[derive(Debug, Default)]
struct GroupEntry {
    state: Mutex<GroupState>,
}

/// Prepared state of a leader's **batched** commit handover: the leader's
/// hot records with their group entries already fetched (one entry-map
/// shard-lock take per shard) and quiesced by
/// [`GroupLockTable::begin_leader_commit`].  Handing this back to
/// [`GroupLockTable::finish_leader_handover`] promotes the next leaders
/// without ever going through the entry map again.
#[derive(Debug)]
pub struct LeaderCommit {
    entries: Vec<(RecordId, Arc<GroupEntry>)>,
}

impl LeaderCommit {
    /// Number of hot records in this commit batch.
    pub fn record_count(&self) -> usize {
        self.entries.len()
    }
}

/// Number of shards for the hot-row entry map.  Each hot row already has
/// its own `GroupEntry` mutex; sharding the *lookup* map keeps unrelated hot
/// rows from contending on one global mutex just to fetch their entry.
///
/// The map is sharded by **page**, not by record: all group-state mutation
/// happens under the per-row `GroupEntry` mutex, so the shard lock is only
/// held to clone an `Arc` out of the map — and page locality is exactly what
/// lets the batched commit handover fetch a leader's co-located hot records
/// with one shard-lock take (hot rows of one flash sale are loaded together
/// and land on the same page).
///
/// Trade: same-page hot rows now share one shard mutex for *every* entry
/// fetch (`begin_hot_update`, `register_update`, `commit_turn`, …), where
/// record-keyed sharding spread them across up to 64 shards.  The hold is a
/// hash plus an `Arc` clone — all group-state mutation still happens under
/// the per-row `GroupEntry` mutex — but workloads hammering several hot rows
/// of one page from many threads pay a new cross-row fetch serialization
/// point in exchange for the amortized commit handover.
const ENTRY_SHARDS: usize = 64;

/// One shard of the hot-row entry map.
type EntryShard = CachePadded<Mutex<FxHashMap<u64, Arc<GroupEntry>>>>;

/// The per-hot-row group-locking state (`hot_lock_sys` in the paper).
#[derive(Debug)]
pub struct GroupLockTable {
    config: GroupLockConfig,
    entry_shards: Box<[EntryShard]>,
    global_hot_update_order: AtomicU64,
    metrics: Arc<EngineMetrics>,
}

impl GroupLockTable {
    /// Creates a group-lock table.
    pub fn new(config: GroupLockConfig, metrics: Arc<EngineMetrics>) -> Self {
        Self {
            config,
            entry_shards: (0..ENTRY_SHARDS)
                .map(|_| CachePadded::new(Mutex::new(FxHashMap::default())))
                .collect(),
            global_hot_update_order: AtomicU64::new(1),
            metrics,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &GroupLockConfig {
        &self.config
    }

    #[inline]
    fn entry_shard_index(&self, record: RecordId) -> usize {
        // Page-keyed sharding: see the ENTRY_SHARDS docs.
        let page = record.page();
        let key = ((page.space_id as u64) << 32) | page.page_no as u64;
        (fxhash::hash_u64(key) % ENTRY_SHARDS as u64) as usize
    }

    #[inline]
    fn entry_shard(&self, record: RecordId) -> &Mutex<FxHashMap<u64, Arc<GroupEntry>>> {
        &self.entry_shards[self.entry_shard_index(record)]
    }

    fn entry(&self, record: RecordId) -> Arc<GroupEntry> {
        let mut entries = self.entry_shard(record).lock();
        let _scope = GuardScope::enter();
        Arc::clone(entries.entry(record.packed()).or_default())
    }

    /// Fetches one record's entry on the **commit-handover path**, counting
    /// the entry-map shard take in `handover_shard_locks` (the unbatched
    /// prepare/handover pair pays two of these per record; the batched path
    /// amortizes them across shard groups).
    fn entry_counted(&self, record: RecordId) -> Arc<GroupEntry> {
        self.metrics.handover_shard_locks.inc();
        self.entry(record)
    }

    /// Runs `f` on the record's *live* group state.
    ///
    /// Every public operation routes through here.  The shard map hands out
    /// `Arc<GroupEntry>` clones without holding the entry's state mutex, so a
    /// caller can fetch an entry, lose the CPU, and find that `maybe_gc`
    /// removed it from the map in between — enqueueing on such an orphan used
    /// to strand the waiter until `hot_wait_timeout` (and could elect two
    /// leaders for one hot row).  GC therefore marks removed entries `dead`
    /// under their own state mutex, and this helper re-validates after
    /// locking, retrying through the map until it holds a live entry.
    fn with_state<R>(&self, record: RecordId, mut f: impl FnMut(&mut GroupState) -> R) -> R {
        loop {
            let entry = self.entry(record);
            let mut state = entry.state.lock();
            let _scope = GuardScope::enter();
            if state.dead {
                continue;
            }
            return f(&mut state);
        }
    }

    /// Runs `f` on a record's live state through a **cached** entry `Arc`
    /// (the batched commit path fetches entries once per shard group and
    /// reuses them across prepare + handover).  A cached entry that `maybe_gc`
    /// killed in the meantime is replaced through the map — one more counted
    /// shard take — and the closure retried on the live entry.
    fn with_cached_state<R>(
        &self,
        record: RecordId,
        entry: &mut Arc<GroupEntry>,
        mut f: impl FnMut(&mut GroupState) -> R,
    ) -> R {
        loop {
            {
                let mut state = entry.state.lock();
                let _scope = GuardScope::enter();
                if !state.dead {
                    return f(&mut state);
                }
            }
            *entry = self.entry_counted(record);
        }
    }

    /// Like [`Self::with_state`], but never creates an entry: read-only
    /// queries and post-timeout cleanup must not resurrect a GC'd row (the
    /// §4.5 prevention check probes `both_updated` on every cold-lock
    /// conflict, which would otherwise repopulate the shard maps with empty
    /// entries nothing collects).  Returns `None` when the row has no live
    /// group state.
    fn with_existing_state<R>(
        &self,
        record: RecordId,
        mut f: impl FnMut(&mut GroupState) -> R,
    ) -> Option<R> {
        loop {
            let entry = {
                let entries = self.entry_shard(record).lock();
                let _scope = GuardScope::enter();
                Arc::clone(entries.get(&record.packed())?)
            };
            let mut state = entry.state.lock();
            let _scope = GuardScope::enter();
            if state.dead {
                continue;
            }
            return Some(f(&mut state));
        }
    }

    fn maybe_gc(&self, record: RecordId) {
        // Shard lock first, then the entry's state lock (the same nesting
        // order `entry()` + `with_state` compose to), so the idle check, the
        // dead mark and the map removal are one atomic step.
        let mut entries = self.entry_shard(record).lock();
        let _scope = GuardScope::enter();
        if let Some(existing) = entries.get(&record.packed()) {
            let mut state = existing.state.lock();
            if state.is_idle() {
                state.dead = true;
                drop(state);
                entries.remove(&record.packed());
            }
        }
    }

    // ------------------------------------------------------------------
    // Algorithm 1 — Execute
    // ------------------------------------------------------------------

    /// Starts a hotspot update (Algorithm 1, lines 2–6).
    ///
    /// `granting_new_trx` doubles as the "a hotspot update is executing right
    /// now" flag: when the group exists but nothing is mid-update (the leader
    /// is idle between statements, as in the paper's §4.5 worked example), an
    /// arriving update is granted follower execution immediately instead of
    /// parking.
    pub fn begin_hot_update(&self, txn: TxnId, record: RecordId) -> HotExecution {
        self.with_state(record, |state| {
            if state.leader.is_none() && state.waiting_updates.is_empty() && !state.rollback_pause {
                state.leader = Some(txn);
                state.switching_new_leader = false;
                state.granted_in_group = 0;
                state.granting_new_trx = true;
                state.executing = Some(txn);
                self.metrics.groups_formed.inc();
                return HotExecution::Leader;
            }
            let batch_open =
                self.config.batch_size == 0 || state.granted_in_group < self.config.batch_size;
            if !state.granting_new_trx
                && !state.switching_new_leader
                && !state.rollback_pause
                && state.waiting_updates.is_empty()
                && state.leader.is_some()
                && batch_open
            {
                state.granting_new_trx = true;
                state.granted_in_group += 1;
                state.executing = Some(txn);
                return HotExecution::Follower;
            }
            let slot = WaitSlot::new();
            state.waiting_updates.push_back(Waiter {
                txn,
                slot: Arc::clone(&slot),
            });
            HotExecution::Wait(slot)
        })
    }

    /// Parks on `slot` until granted, returning the role, or times out.
    pub fn wait_for_grant(
        &self,
        txn: TxnId,
        record: RecordId,
        slot: &Arc<WaitSlot>,
    ) -> Result<WokenRole> {
        let start = SimInstant::now();
        let deadline = start + self.config.hot_wait_timeout;
        loop {
            if let Some(role) = slot.role() {
                self.metrics.lock_wait_latency.record(start.elapsed());
                return Ok(role);
            }
            let remaining = deadline.saturating_duration_since(SimInstant::now());
            if remaining.is_zero() {
                return match self.cancel_hot_wait(txn, record) {
                    CancelOutcome::AlreadyGranted(role) => {
                        self.metrics.lock_wait_latency.record(start.elapsed());
                        Ok(role)
                    }
                    CancelOutcome::Cancelled => {
                        self.metrics.lock_wait_latency.record(start.elapsed());
                        Err(Error::LockWaitTimeout { txn, record })
                    }
                };
            }
            let _ = slot.event().wait_for(remaining);
            slot.event().reset();
        }
    }

    /// Removes a parked transaction that gave up waiting.
    pub fn cancel_hot_wait(&self, txn: TxnId, record: RecordId) -> CancelOutcome {
        self.with_state(record, |state| {
            if let Some(pos) = state.waiting_updates.iter().position(|w| w.txn == txn) {
                state.waiting_updates.remove(pos);
                return CancelOutcome::Cancelled;
            }
            // Not queued any more: the grant must have raced ahead of us.  The
            // role is recorded on the slot the granter holds a clone of; look
            // it up through the doomed/leader/dep_list state instead.
            if state.leader == Some(txn) {
                CancelOutcome::AlreadyGranted(WokenRole::NewLeader)
            } else {
                CancelOutcome::AlreadyGranted(WokenRole::Follower)
            }
        })
    }

    /// Registers an executed update (Algorithm 1, lines 7–9): assigns the
    /// global `hot_update_order` and appends the transaction to the
    /// dependency list.
    pub fn register_update(&self, txn: TxnId, record: RecordId) -> u64 {
        let order = self.global_hot_update_order.fetch_add(1, Ordering::Relaxed);
        self.with_state(record, |state| {
            if !state.dep_list.contains(&txn) {
                state.dep_list.push(txn);
            }
            // A registrant arriving while an undo is still pending was granted
            // before the pause but slipped past `begin_rollback`'s doom scan:
            // its upcoming read may observe the aborting transaction's head,
            // so it must cascade-abort too (see `GroupState::undo_pending`).
            if let Some(cause) = state.undo_pending.iter().find(|t| **t != txn).copied() {
                state.doomed.entry(txn).or_insert(cause);
            }
        });
        self.metrics.hotspot_group_entries.inc();
        order
    }

    /// Completes an update and grants the next follower if allowed
    /// (Algorithm 1, lines 11–20).  The granted follower's event fires after
    /// the state guard is dropped.
    pub fn finish_update(&self, txn: TxnId, record: RecordId, is_leader: bool) {
        let granted = self.with_state(record, |state| {
            // Whoever just finished (leader or follower) is no longer
            // mid-update.
            state.granting_new_trx = false;
            state.executing = None;
            if is_leader && state.leader == Some(txn) {
                state.switching_new_leader = false;
            }
            if state.switching_new_leader || state.rollback_pause {
                return None;
            }
            if self.config.batch_size > 0 && state.granted_in_group >= self.config.batch_size {
                return None;
            }
            let waiter = state.waiting_updates.pop_front()?;
            state.granting_new_trx = true;
            state.granted_in_group += 1;
            state.executing = Some(waiter.txn);
            *waiter.slot.role.lock() = Some(WokenRole::Follower);
            Some(waiter.slot)
        });
        if let Some(slot) = granted {
            slot.event().set();
        }
    }

    // ------------------------------------------------------------------
    // Algorithm 2 — Commit
    // ------------------------------------------------------------------

    /// Fetches the entries for a leader's hot records, grouped by entry
    /// shard: each distinct shard's map lock is taken **once** for all the
    /// records it hosts (counted in `handover_shard_locks`).
    fn fetch_hot_entries(&self, records: &[RecordId]) -> Vec<(RecordId, Arc<GroupEntry>)> {
        let mut keyed: Vec<(usize, RecordId)> = records
            .iter()
            .map(|r| (self.entry_shard_index(*r), *r))
            .collect();
        keyed.sort_unstable();
        let mut entries = Vec::with_capacity(records.len());
        for chunk in keyed.chunk_by(|a, b| a.0 == b.0) {
            self.metrics.handover_shard_locks.inc();
            let mut shard = self.entry_shards[chunk[0].0].lock();
            let _scope = GuardScope::enter();
            for (_, record) in chunk {
                entries.push((
                    *record,
                    Arc::clone(shard.entry(record.packed()).or_default()),
                ));
            }
        }
        entries
    }

    /// Batched leader-side commit preparation (Algorithm 2, lines 2–4, for a
    /// whole commit): fetches every hot record's entry with one shard-lock
    /// take per entry shard, marks each group `switching_new_leader` and
    /// waits until no granted follower is mid-update on any of them.  The
    /// returned handle caches the entry `Arc`s so
    /// [`GroupLockTable::finish_leader_handover`] promotes without going back
    /// through the entry map.
    ///
    /// The caller releases the real row locks **between** the two calls —
    /// ideally as one batched `release_record_locks` call — so every promoted
    /// leader finds its row lock free.
    pub fn begin_leader_commit(&self, txn: TxnId, records: &[RecordId]) -> LeaderCommit {
        let mut entries = self.fetch_hot_entries(records);
        for (record, entry) in entries.iter_mut() {
            // Per-record quiesce budget, matching the per-record
            // leader_prepare_commit this replaces: one stalled record's
            // vanished follower must not eat later records' wait budget and
            // force-clear their healthy in-flight followers.
            let deadline = SimInstant::now() + self.config.hot_wait_timeout * 4;
            loop {
                let quiesced = self.with_cached_state(*record, entry, |state| {
                    if state.leader == Some(txn) {
                        state.switching_new_leader = true;
                    }
                    !state.granting_new_trx
                });
                if quiesced {
                    break;
                }
                if SimInstant::now() > deadline {
                    // A granted follower disappeared without calling
                    // finish_update (it aborted on an unrelated error).
                    // Proceed rather than wedging the whole hot row.
                    self.with_cached_state(*record, entry, |state| {
                        state.granting_new_trx = false;
                    });
                    break;
                }
                ut_delay(10);
            }
        }
        LeaderCommit { entries }
    }

    /// Batched leader-side handover after the row locks were released
    /// (Algorithm 2, lines 7–10): promotes the next waiter of each prepared
    /// hot record to leader of a new group — reusing the entry `Arc`s cached
    /// by [`GroupLockTable::begin_leader_commit`], no entry-map locks — and
    /// fires every promoted leader's event only after the last state guard
    /// is dropped.  Returns the promotion per record (`None` with the
    /// dynamic batch size when the queue was empty).
    pub fn finish_leader_handover(
        &self,
        txn: TxnId,
        commit: LeaderCommit,
    ) -> Vec<(RecordId, Option<TxnId>)> {
        let LeaderCommit { mut entries } = commit;
        let mut promotions = Vec::with_capacity(entries.len());
        let mut to_wake: Vec<Arc<WaitSlot>> = Vec::new();
        for (record, entry) in entries.iter_mut() {
            let promoted = self.with_cached_state(*record, entry, |state| {
                if state.leader == Some(txn) {
                    state.leader = None;
                    // The committing leader is stepping down: its
                    // `switching_new_leader` mark must not outlive it.  Left
                    // set (as the rollback-pause return below used to), it
                    // wedges `wait_rollback_turn` — which requires the flag
                    // clear — for the full rollback deadline, freezing the
                    // hot row.
                    state.switching_new_leader = false;
                } else if state.leader.is_some() {
                    // Another transaction's group already owns this row (our
                    // own entry went idle, was GC'd, and the map entry was
                    // re-created since): nothing to hand over, and the live
                    // group's in-flight flags must not be clobbered.
                    return None;
                }
                if state.rollback_pause {
                    // No promotion while a rollback is draining; the last
                    // `resume_granting` promotes instead.
                    return None;
                }
                if let Some((new_leader, slot)) = state.promote_next_leader(&self.metrics) {
                    to_wake.push(slot);
                    Some(new_leader)
                } else {
                    // Dynamic batch size: release without nominating a
                    // leader; the next arrival starts a fresh group
                    // immediately.
                    state.switching_new_leader = false;
                    state.granting_new_trx = false;
                    state.executing = None;
                    None
                }
            });
            promotions.push((*record, promoted));
        }
        // Every guard is dropped: fire the promoted leaders' events.
        for slot in to_wake {
            slot.event().set();
        }
        promotions
    }

    /// Leader-side commit preparation for a single record (Algorithm 2,
    /// lines 2–4): stop granting and wait for the in-flight granted follower
    /// to complete its update.  One record of the batched
    /// [`GroupLockTable::begin_leader_commit`]; kept for the write path's
    /// error handling and per-record callers.
    pub fn leader_prepare_commit(&self, txn: TxnId, record: RecordId) {
        let _ = self.begin_leader_commit(txn, std::slice::from_ref(&record));
    }

    /// Leader-side handover for a single record after releasing the row lock
    /// (Algorithm 2, lines 7–10): promotes the next waiter to leader of a new
    /// group.  Returns the new leader, if any (with the dynamic batch size
    /// there may be none).
    pub fn leader_handover(&self, txn: TxnId, record: RecordId) -> Option<TxnId> {
        let commit = LeaderCommit {
            entries: vec![(record, self.entry_counted(record))],
        };
        self.finish_leader_handover(txn, commit)
            .pop()
            .and_then(|(_, promoted)| promoted)
    }

    /// Asks whether `txn` may commit now (commit-order guarantee, §4.3).
    pub fn commit_turn(&self, txn: TxnId, record: RecordId) -> CommitTurn {
        self.with_state(record, |state| {
            if let Some(cause) = state.doomed.get(&txn) {
                return CommitTurn::Doomed { cause: *cause };
            }
            match state.dep_list.first() {
                Some(first) if *first == txn => CommitTurn::Ready,
                None => CommitTurn::Ready,
                Some(_) if !state.dep_list.contains(&txn) => CommitTurn::Ready,
                Some(_) => {
                    let event = OsEvent::acquire_pooled();
                    state.commit_waiters.push((txn, Arc::clone(&event)));
                    CommitTurn::Wait(event)
                }
            }
        })
    }

    /// Detaches a commit-turn event after its wait ended (woken or timed out)
    /// and drains it back to the thread-local pool.  Removing the state's
    /// clone first is what makes the event unique and therefore recyclable;
    /// an event a granter still holds is simply dropped, never pooled.
    fn retire_commit_wait(&self, txn: TxnId, record: RecordId, event: Arc<OsEvent>) {
        self.with_existing_state(record, |state| {
            state
                .commit_waiters
                .retain(|(t, e)| !(*t == txn && Arc::ptr_eq(e, &event)));
        });
        OsEvent::recycle(event);
    }

    /// Blocks until `txn` may commit (or must cascade-abort).
    pub fn wait_commit_turn(&self, txn: TxnId, record: RecordId) -> Result<()> {
        let deadline = SimInstant::now() + self.config.hot_wait_timeout * 4;
        loop {
            match self.commit_turn(txn, record) {
                CommitTurn::Ready => return Ok(()),
                CommitTurn::Doomed { cause } => {
                    return Err(Error::CascadingAbort { txn, cause });
                }
                CommitTurn::Wait(event) => {
                    if SimInstant::now() > deadline {
                        self.retire_commit_wait(txn, record, event);
                        return Err(Error::LockWaitTimeout { txn, record });
                    }
                    let _ = event.wait_for(Duration::from_millis(50));
                    self.retire_commit_wait(txn, record, event);
                }
            }
        }
    }

    /// Finalises a commit: removes `txn` from the dependency list and wakes
    /// commit waiters (Algorithm 2, lines 11–12) — after dropping the state
    /// guard.
    pub fn finish_commit(&self, txn: TxnId, record: RecordId) {
        let woken = self.with_state(record, |state| {
            state.dep_list.retain(|t| *t != txn);
            state.doomed.remove(&txn);
            if state.leader == Some(txn) {
                // Normally leader_handover already ran; clear defensively so a
                // committed leader can never keep the entry alive (nor its
                // commit-in-progress mark wedge later rollback turns).
                state.leader = None;
                state.switching_new_leader = false;
            }
            state.take_commit_waiters()
        });
        for event in woken {
            event.set();
        }
        self.maybe_gc(record);
    }

    // ------------------------------------------------------------------
    // Algorithm 3 — Rollback
    // ------------------------------------------------------------------

    /// Starts a rollback of `txn` (Algorithm 3, lines 2–5, plus the §4.4
    /// rollback optimization): pauses granting, dooms every dependency-list
    /// successor and returns them (they must cascade-abort first).
    pub fn begin_rollback(&self, txn: TxnId, record: RecordId) -> Vec<TxnId> {
        let (successors, woken) = self.with_state(record, |state| {
            state.rollback_pause = true;
            if !state.rolling_back.contains(&txn) {
                state.rolling_back.push(txn);
            }
            if !state.undo_pending.contains(&txn) {
                state.undo_pending.push(txn);
            }
            if state.leader == Some(txn) {
                state.switching_new_leader = false;
            }
            if state.executing == Some(txn) {
                // The rolling-back transaction was itself mid-update (it
                // aborted between register and finish): clear the in-flight
                // flag so the rollback-order wait below does not wait for
                // itself.
                state.granting_new_trx = false;
                state.executing = None;
            }
            let successors: Vec<TxnId> = match state.dep_list.iter().position(|t| *t == txn) {
                Some(pos) => state.dep_list[pos + 1..].to_vec(),
                None => Vec::new(),
            };
            for succ in &successors {
                state.doomed.entry(*succ).or_insert(txn);
            }
            (successors, state.take_commit_waiters())
        });
        for event in woken {
            event.set();
        }
        successors
    }

    /// Blocks until `txn` is the newest entry of the dependency list and no
    /// grant is in flight (Algorithm 3, lines 6–7).
    pub fn wait_rollback_turn(&self, txn: TxnId, record: RecordId) -> Result<()> {
        let deadline = SimInstant::now() + self.config.hot_wait_timeout * 4;
        loop {
            let my_turn = self.with_state(record, |state| {
                let is_last = state.dep_list.last().map(|t| *t == txn).unwrap_or(true);
                is_last && !state.granting_new_trx && !state.switching_new_leader
            });
            if my_turn {
                return Ok(());
            }
            if SimInstant::now() > deadline {
                return Err(Error::LockWaitTimeout { txn, record });
            }
            ut_delay(10);
        }
    }

    /// Records that `txn`'s storage undo for `record` has completed: the
    /// record's head no longer carries the aborted write, so transactions
    /// registering from here on read clean data and are not doomed.  Call
    /// between the storage rollback and `finish_rollback`.
    pub fn mark_undone(&self, txn: TxnId, record: RecordId) {
        self.with_state(record, |state| {
            state.undo_pending.retain(|t| *t != txn);
        });
    }

    /// Finalises a rollback: removes `txn` from the dependency list, clears
    /// its doomed mark and wakes commit waiters (Algorithm 3, lines 8–9) —
    /// after dropping the state guard.
    pub fn finish_rollback(&self, txn: TxnId, record: RecordId) {
        let woken = self.with_state(record, |state| {
            state.dep_list.retain(|t| *t != txn);
            state.rolling_back.retain(|t| *t != txn);
            state.undo_pending.retain(|t| *t != txn);
            state.doomed.remove(&txn);
            if state.leader == Some(txn) {
                state.leader = None;
            }
            state.take_commit_waiters()
        });
        for event in woken {
            event.set();
        }
        self.maybe_gc(record);
    }

    /// Resumes granting after a server-initiated rollback completed (§4.4).
    /// If the row lock was left free, the next parked transaction is promoted
    /// to leader so the queue does not stall.
    pub fn resume_granting(&self, record: RecordId) -> Option<TxnId> {
        let promoted = self.with_state(record, |state| {
            // Another transaction may still be between `begin_rollback` and
            // `finish_rollback` on this record; granting stays paused until
            // the last of them resumes.
            if !state.rolling_back.is_empty() {
                return None;
            }
            state.rollback_pause = false;
            if state.leader.is_none() {
                return state.promote_next_leader(&self.metrics);
            }
            None
        });
        match promoted {
            Some((new_leader, slot)) => {
                // State guard dropped: fire the promotion.
                slot.event().set();
                Some(new_leader)
            }
            None => {
                // A rollback that left the row fully idle must not keep the
                // map entry alive.
                self.maybe_gc(record);
                None
            }
        }
    }

    // ------------------------------------------------------------------
    // Introspection (deadlock prevention §4.5, sweeper, tests)
    // ------------------------------------------------------------------

    /// True when both transactions have executed uncommitted updates on this
    /// hot row — the §4.5 deadlock-prevention predicate.
    pub fn both_updated(&self, record: RecordId, a: TxnId, b: TxnId) -> bool {
        self.with_existing_state(record, |state| {
            state.dep_list.contains(&a) && state.dep_list.contains(&b)
        })
        .unwrap_or(false)
    }

    /// Returns the transaction that doomed `txn` on this hot row, if any
    /// (lets the write path cascade-abort at the next statement instead of
    /// running to commit while the paused group waits on it).
    pub fn doomed_cause(&self, txn: TxnId, record: RecordId) -> Option<TxnId> {
        self.with_existing_state(record, |state| state.doomed.get(&txn).copied())
            .flatten()
    }

    /// Current dependency list (update order) of a hot row.
    pub fn dep_list(&self, record: RecordId) -> Vec<TxnId> {
        self.with_existing_state(record, |state| state.dep_list.clone())
            .unwrap_or_default()
    }

    /// True when the hot row still has any group activity (used by the
    /// hotspot sweeper to decide whether to demote).
    pub fn has_activity(&self, record: RecordId) -> bool {
        let entries = self.entry_shard(record).lock();
        entries
            .get(&record.packed())
            .map(|e| !e.state.lock().is_idle())
            .unwrap_or(false)
    }

    /// Current leader of the hot row, if any.
    pub fn leader_of(&self, record: RecordId) -> Option<TxnId> {
        let entries = self.entry_shard(record).lock();
        entries
            .get(&record.packed())
            .and_then(|e| e.state.lock().leader)
    }

    /// Number of parked hotspot updates.
    pub fn waiting_len(&self, record: RecordId) -> usize {
        let entries = self.entry_shard(record).lock();
        entries
            .get(&record.packed())
            .map(|e| e.state.lock().waiting_updates.len())
            .unwrap_or(0)
    }

    /// The next value the global hot-update order counter will hand out.
    pub fn next_hot_update_order(&self) -> u64 {
        self.global_hot_update_order.load(Ordering::Relaxed)
    }

    /// One-line rendering of a hot row's full group state (diagnostics).
    pub fn debug_state(&self, record: RecordId) -> String {
        self.with_existing_state(record, |state| {
            format!(
                "leader={:?} dep={:?} doomed={:?} waiting={:?} executing={:?} \
                 granting={} switching={} pause={} rolling_back={:?} undo_pending={:?} \
                 granted_in_group={} commit_waiters={:?}",
                state.leader,
                state.dep_list,
                state.doomed.keys().collect::<Vec<_>>(),
                state
                    .waiting_updates
                    .iter()
                    .map(|w| w.txn)
                    .collect::<Vec<_>>(),
                state.executing,
                state.granting_new_trx,
                state.switching_new_leader,
                state.rollback_pause,
                state.rolling_back,
                state.undo_pending,
                state.granted_in_group,
                state
                    .commit_waiters
                    .iter()
                    .map(|(t, _)| *t)
                    .collect::<Vec<_>>(),
            )
        })
        .unwrap_or_else(|| "idle (no entry)".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOT: RecordId = RecordId {
        space_id: 1,
        page_no: 0,
        heap_no: 0,
    };

    fn table() -> GroupLockTable {
        GroupLockTable::new(GroupLockConfig::default(), Arc::new(EngineMetrics::new()))
    }

    #[test]
    fn first_transaction_becomes_leader() {
        let g = table();
        assert!(matches!(
            g.begin_hot_update(TxnId(1), HOT),
            HotExecution::Leader
        ));
        assert_eq!(g.leader_of(HOT), Some(TxnId(1)));
        let order = g.register_update(TxnId(1), HOT);
        assert!(order >= 1);
        assert_eq!(g.dep_list(HOT), vec![TxnId(1)]);
    }

    #[test]
    fn second_transaction_waits_and_is_granted_as_follower() {
        let g = table();
        assert!(matches!(
            g.begin_hot_update(TxnId(1), HOT),
            HotExecution::Leader
        ));
        g.register_update(TxnId(1), HOT);
        let slot = match g.begin_hot_update(TxnId(2), HOT) {
            HotExecution::Wait(slot) => slot,
            other => panic!("expected Wait, got {other:?}"),
        };
        assert_eq!(g.waiting_len(HOT), 1);
        // Leader finishes its update: follower is granted.
        g.finish_update(TxnId(1), HOT, true);
        assert_eq!(slot.role(), Some(WokenRole::Follower));
        assert!(slot.event().is_set());
        let order2 = g.register_update(TxnId(2), HOT);
        g.finish_update(TxnId(2), HOT, false);
        assert_eq!(g.dep_list(HOT), vec![TxnId(1), TxnId(2)]);
        assert!(order2 > 1);
    }

    #[test]
    fn commit_order_follows_dependency_list() {
        let g = table();
        let _ = g.begin_hot_update(TxnId(1), HOT);
        g.register_update(TxnId(1), HOT);
        let slot2 = match g.begin_hot_update(TxnId(2), HOT) {
            HotExecution::Wait(s) => s,
            _ => unreachable!(),
        };
        g.finish_update(TxnId(1), HOT, true);
        assert_eq!(slot2.role(), Some(WokenRole::Follower));
        g.register_update(TxnId(2), HOT);
        g.finish_update(TxnId(2), HOT, false);

        // Txn 2 cannot commit before txn 1.
        assert!(matches!(g.commit_turn(TxnId(2), HOT), CommitTurn::Wait(_)));
        assert!(matches!(g.commit_turn(TxnId(1), HOT), CommitTurn::Ready));
        g.finish_commit(TxnId(1), HOT);
        assert!(matches!(g.commit_turn(TxnId(2), HOT), CommitTurn::Ready));
        g.finish_commit(TxnId(2), HOT);
        assert!(g.dep_list(HOT).is_empty());
        assert!(!g.has_activity(HOT));
    }

    #[test]
    fn leader_handover_promotes_next_waiter_to_new_leader() {
        let g = table();
        let _ = g.begin_hot_update(TxnId(1), HOT);
        g.register_update(TxnId(1), HOT);
        g.finish_update(TxnId(1), HOT, true);
        // The leader is idle, so the next arrival is granted follower
        // execution immediately (the §4.5 worked-example behaviour).
        assert!(matches!(
            g.begin_hot_update(TxnId(2), HOT),
            HotExecution::Follower
        ));
        g.register_update(TxnId(2), HOT);
        g.finish_update(TxnId(2), HOT, false);

        // A third arrives while the leader is committing: it must be parked
        // and promoted to the next group's leader at handover.
        g.leader_prepare_commit(TxnId(1), HOT);
        let slot3 = match g.begin_hot_update(TxnId(3), HOT) {
            HotExecution::Wait(s) => s,
            other => panic!("expected Wait, got {other:?}"),
        };
        let new_leader = g.leader_handover(TxnId(1), HOT);
        assert_eq!(new_leader, Some(TxnId(3)));
        assert_eq!(slot3.role(), Some(WokenRole::NewLeader));
        assert_eq!(g.leader_of(HOT), Some(TxnId(3)));
    }

    #[test]
    fn dynamic_batch_leaves_no_leader_when_queue_empty() {
        let g = table();
        let _ = g.begin_hot_update(TxnId(1), HOT);
        g.register_update(TxnId(1), HOT);
        g.finish_update(TxnId(1), HOT, true);
        g.leader_prepare_commit(TxnId(1), HOT);
        assert_eq!(g.leader_handover(TxnId(1), HOT), None);
        assert_eq!(g.leader_of(HOT), None);
        // Next arrival becomes leader immediately.
        assert!(matches!(
            g.begin_hot_update(TxnId(2), HOT),
            HotExecution::Leader
        ));
    }

    #[test]
    fn batch_size_limits_grants_per_group() {
        let g = GroupLockTable::new(
            GroupLockConfig {
                batch_size: 1,
                ..Default::default()
            },
            Arc::new(EngineMetrics::new()),
        );
        let _ = g.begin_hot_update(TxnId(1), HOT);
        g.register_update(TxnId(1), HOT);
        let slot2 = match g.begin_hot_update(TxnId(2), HOT) {
            HotExecution::Wait(s) => s,
            _ => unreachable!(),
        };
        let slot3 = match g.begin_hot_update(TxnId(3), HOT) {
            HotExecution::Wait(s) => s,
            _ => unreachable!(),
        };
        g.finish_update(TxnId(1), HOT, true);
        assert_eq!(slot2.role(), Some(WokenRole::Follower));
        g.register_update(TxnId(2), HOT);
        g.finish_update(TxnId(2), HOT, false);
        // Batch of 1 exhausted: txn 3 must NOT be granted as follower.
        assert_eq!(slot3.role(), None);
        // It becomes the next group's leader at handover.
        g.leader_prepare_commit(TxnId(1), HOT);
        assert_eq!(g.leader_handover(TxnId(1), HOT), Some(TxnId(3)));
        assert_eq!(slot3.role(), Some(WokenRole::NewLeader));
    }

    #[test]
    fn batched_handover_amortizes_entry_shard_takes_and_promotes_each_row() {
        let metrics = Arc::new(EngineMetrics::new());
        let g = GroupLockTable::new(GroupLockConfig::default(), Arc::clone(&metrics));
        // Four hot rows on ONE page: page-keyed entry sharding puts them in
        // one shard, so the batched fetch is a single counted take.
        let records: Vec<RecordId> = (0..4).map(|heap| RecordId::new(1, 0, heap)).collect();
        let mut slots = Vec::new();
        for (i, record) in records.iter().enumerate() {
            assert!(matches!(
                g.begin_hot_update(TxnId(1), *record),
                HotExecution::Leader
            ));
            g.register_update(TxnId(1), *record);
            g.finish_update(TxnId(1), *record, true);
            // Park one waiter per row while the leader is idle — force the
            // Wait path by marking the leader committing first.
            g.with_state(*record, |state| state.switching_new_leader = true);
            let slot = match g.begin_hot_update(TxnId(10 + i as u64), *record) {
                HotExecution::Wait(slot) => slot,
                other => panic!("expected Wait, got {other:?}"),
            };
            g.with_state(*record, |state| state.switching_new_leader = false);
            slots.push(slot);
        }

        let takes_before = metrics.handover_shard_locks.get();
        let prepared = g.begin_leader_commit(TxnId(1), &records);
        assert_eq!(prepared.record_count(), 4);
        let promotions = g.finish_leader_handover(TxnId(1), prepared);
        assert_eq!(
            metrics.handover_shard_locks.get() - takes_before,
            1,
            "four same-page rows must resolve in one entry-shard take"
        );
        for ((record, promoted), (i, slot)) in promotions.iter().zip(slots.iter().enumerate()) {
            assert_eq!(
                *promoted,
                Some(TxnId(10 + i as u64)),
                "waiter on {record} must be promoted to leader"
            );
            assert_eq!(slot.role(), Some(WokenRole::NewLeader));
            assert!(slot.event().is_set(), "promotion must fire the event");
            assert_eq!(g.leader_of(*record), Some(TxnId(10 + i as u64)));
        }
        // The unbatched pair pays two counted takes for one record.
        let single = RecordId::new(2, 0, 0);
        let _ = g.begin_hot_update(TxnId(2), single);
        g.register_update(TxnId(2), single);
        g.finish_update(TxnId(2), single, true);
        let takes_before = metrics.handover_shard_locks.get();
        g.leader_prepare_commit(TxnId(2), single);
        g.leader_handover(TxnId(2), single);
        assert_eq!(metrics.handover_shard_locks.get() - takes_before, 2);
    }

    #[test]
    fn rollback_dooms_successors_and_enforces_reverse_order() {
        let g = table();
        // T1 updates, then T3, then T2 (the paper's §4.4 example), following
        // the real grant flow: each follower registers and finishes its
        // update before the next one is granted.
        let _ = g.begin_hot_update(TxnId(1), HOT);
        g.register_update(TxnId(1), HOT);
        let slot3 = match g.begin_hot_update(TxnId(3), HOT) {
            HotExecution::Wait(s) => s,
            _ => unreachable!(),
        };
        let slot2 = match g.begin_hot_update(TxnId(2), HOT) {
            HotExecution::Wait(s) => s,
            _ => unreachable!(),
        };
        g.finish_update(TxnId(1), HOT, true);
        assert_eq!(slot3.role(), Some(WokenRole::Follower));
        g.register_update(TxnId(3), HOT);
        g.finish_update(TxnId(3), HOT, false);
        assert_eq!(slot2.role(), Some(WokenRole::Follower));
        g.register_update(TxnId(2), HOT);
        g.finish_update(TxnId(2), HOT, false);
        assert_eq!(g.dep_list(HOT), vec![TxnId(1), TxnId(3), TxnId(2)]);

        let doomed = g.begin_rollback(TxnId(1), HOT);
        assert_eq!(doomed, vec![TxnId(3), TxnId(2)]);
        // Successors cascade in reverse order.
        assert!(matches!(
            g.commit_turn(TxnId(2), HOT),
            CommitTurn::Doomed { cause: TxnId(1) }
        ));
        g.finish_rollback(TxnId(2), HOT);
        assert!(matches!(
            g.commit_turn(TxnId(3), HOT),
            CommitTurn::Doomed { cause: TxnId(1) }
        ));
        g.finish_rollback(TxnId(3), HOT);
        // Now T1 is last and may roll back.
        g.wait_rollback_turn(TxnId(1), HOT).unwrap();
        g.finish_rollback(TxnId(1), HOT);
        g.resume_granting(HOT);
        assert!(g.dep_list(HOT).is_empty());
        assert!(!g.has_activity(HOT));
    }

    #[test]
    fn late_registrant_during_rollback_is_doomed() {
        let g = table();
        // T1 is the leader and has an uncommitted update; T2 was granted
        // follower execution but has not registered yet when T1 begins its
        // rollback — the race `begin_rollback`'s doom scan cannot see.
        let _ = g.begin_hot_update(TxnId(1), HOT);
        g.register_update(TxnId(1), HOT);
        g.finish_update(TxnId(1), HOT, true);
        let doomed = g.begin_rollback(TxnId(1), HOT);
        assert!(doomed.is_empty(), "T2 has not registered yet");
        // T2 registers mid-rollback: it may have read T1's doomed head, so it
        // must cascade-abort instead of committing a value derived from it.
        g.register_update(TxnId(2), HOT);
        assert!(matches!(
            g.commit_turn(TxnId(2), HOT),
            CommitTurn::Doomed { cause: TxnId(1) }
        ));
        g.finish_rollback(TxnId(2), HOT);
        g.wait_rollback_turn(TxnId(1), HOT).unwrap();
        g.finish_rollback(TxnId(1), HOT);
        // Granting resumes only once no rollback is in flight.
        g.resume_granting(HOT);
        assert!(!g.has_activity(HOT));
        // A registrant arriving after the rollback fully finished is clean.
        let _ = g.begin_hot_update(TxnId(3), HOT);
        g.register_update(TxnId(3), HOT);
        assert!(matches!(g.commit_turn(TxnId(3), HOT), CommitTurn::Ready));
        g.finish_commit(TxnId(3), HOT);
    }

    #[test]
    fn both_updated_detects_shared_hot_row() {
        let g = table();
        let _ = g.begin_hot_update(TxnId(1), HOT);
        g.register_update(TxnId(1), HOT);
        let _ = g.begin_hot_update(TxnId(2), HOT);
        g.register_update(TxnId(2), HOT);
        assert!(g.both_updated(HOT, TxnId(1), TxnId(2)));
        assert!(!g.both_updated(HOT, TxnId(1), TxnId(9)));
    }

    #[test]
    fn wait_for_grant_times_out_when_never_granted() {
        let g = GroupLockTable::new(
            GroupLockConfig {
                hot_wait_timeout: Duration::from_millis(30),
                ..Default::default()
            },
            Arc::new(EngineMetrics::new()),
        );
        let _ = g.begin_hot_update(TxnId(1), HOT);
        let slot = match g.begin_hot_update(TxnId(2), HOT) {
            HotExecution::Wait(s) => s,
            _ => unreachable!(),
        };
        let err = g.wait_for_grant(TxnId(2), HOT, &slot).unwrap_err();
        assert!(matches!(err, Error::LockWaitTimeout { .. }));
        assert_eq!(g.waiting_len(HOT), 0);
    }

    #[test]
    fn hot_update_order_is_globally_increasing_across_records() {
        let g = table();
        let other = RecordId::new(2, 0, 0);
        let _ = g.begin_hot_update(TxnId(1), HOT);
        let a = g.register_update(TxnId(1), HOT);
        let _ = g.begin_hot_update(TxnId(2), other);
        let b = g.register_update(TxnId(2), other);
        assert!(b > a);
        assert_eq!(g.next_hot_update_order(), b + 1);
    }

    #[test]
    fn resume_granting_promotes_waiter_after_rollback() {
        let g = table();
        let _ = g.begin_hot_update(TxnId(1), HOT);
        g.register_update(TxnId(1), HOT);
        let slot2 = match g.begin_hot_update(TxnId(2), HOT) {
            HotExecution::Wait(s) => s,
            _ => unreachable!(),
        };
        g.begin_rollback(TxnId(1), HOT);
        g.wait_rollback_turn(TxnId(1), HOT).unwrap();
        g.finish_rollback(TxnId(1), HOT);
        // While paused, nobody was promoted.
        assert_eq!(slot2.role(), None);
        let promoted = g.resume_granting(HOT);
        assert_eq!(promoted, Some(TxnId(2)));
        assert_eq!(slot2.role(), Some(WokenRole::NewLeader));
    }
}
