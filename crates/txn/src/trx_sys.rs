//! The transaction system: id allocation, the active transaction list and
//! read-view creation.
//!
//! `TrxSys` is the moral equivalent of InnoDB's `trx_sys`: it hands out
//! transaction ids at `BEGIN`, commit sequence numbers (`trx_no`) at commit,
//! and tracks which transactions are currently active.  Read views are
//! created here in either the copying or copy-free mode (§3.1.2); the copying
//! mode intentionally locks and copies the active list so that the overhead
//! the paper describes is measurable.

use crate::readview::{ReadView, ReadViewMode};
use crate::transaction::Transaction;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use txsql_common::fxhash::FxHashSet;
use txsql_common::metrics::EngineMetrics;
use txsql_common::TxnId;
use txsql_lockmgr::registry::TxnLockRegistry;

/// The transaction system.
#[derive(Debug)]
pub struct TrxSys {
    next_txn_id: AtomicU64,
    next_trx_no: AtomicU64,
    /// Newest commit sequence number handed out (the copy-free visibility
    /// horizon — effectively the global `del_ts` clock).
    max_committed_trx_no: AtomicU64,
    /// The classic active transaction list (locked + copied by copying views).
    active: Mutex<FxHashSet<TxnId>>,
    read_view_mode: ReadViewMode,
    /// Lock registries checked at transaction teardown: `finish` asserts (in
    /// debug builds) that `release_all` drained the finished transaction's
    /// bookkeeping, so leaks surface at the transaction that caused them.
    lock_registries: Vec<Arc<TxnLockRegistry>>,
    /// Engine metrics handle threaded into every transaction at `begin` so
    /// its per-transaction scratch (`TxnMetrics`) can flush on drop.
    engine_metrics: Option<Arc<EngineMetrics>>,
}

impl TrxSys {
    /// Creates a transaction system using the given read-view mode.
    pub fn new(read_view_mode: ReadViewMode) -> Self {
        Self {
            next_txn_id: AtomicU64::new(1),
            next_trx_no: AtomicU64::new(1),
            max_committed_trx_no: AtomicU64::new(0),
            active: Mutex::new(FxHashSet::default()),
            read_view_mode,
            lock_registries: Vec::new(),
            engine_metrics: None,
        }
    }

    /// Attaches the lock registries whose drained state `finish` asserts.
    pub fn with_lock_registries(mut self, registries: Vec<Arc<TxnLockRegistry>>) -> Self {
        self.lock_registries = registries;
        self
    }

    /// Seeds the id and commit-sequence counters — used when rebuilding the
    /// transaction system after crash recovery, so a restarted engine never
    /// re-issues a transaction id or `trx_no` that appears in the recovered
    /// log.  The copy-free visibility horizon starts at `next_trx_no - 1`
    /// (everything recovered as committed is visible).
    pub fn with_start(self, next_txn_id: u64, next_trx_no: u64) -> Self {
        self.next_txn_id
            .store(next_txn_id.max(1), Ordering::Relaxed);
        self.next_trx_no
            .store(next_trx_no.max(1), Ordering::Relaxed);
        self.max_committed_trx_no
            .store(next_trx_no.max(1) - 1, Ordering::Relaxed);
        self
    }

    /// Attaches the engine metrics every transaction's scratch flushes to.
    pub fn with_engine_metrics(mut self, metrics: Arc<EngineMetrics>) -> Self {
        self.engine_metrics = Some(metrics);
        self
    }

    /// The configured read-view mode.
    pub fn read_view_mode(&self) -> ReadViewMode {
        self.read_view_mode
    }

    /// Starts a transaction: allocates an id and registers it active.  The
    /// transaction's metrics scratch is attached to the engine metrics when
    /// configured ([`TrxSys::with_engine_metrics`]).
    pub fn begin(&self) -> Transaction {
        let id = TxnId(self.next_txn_id.fetch_add(1, Ordering::Relaxed));
        self.active.lock().insert(id);
        match &self.engine_metrics {
            Some(metrics) => Transaction::attached_to(id, Arc::clone(metrics)),
            None => Transaction::new(id),
        }
    }

    /// Allocates a commit sequence number for a committing transaction.
    pub fn allocate_trx_no(&self) -> u64 {
        self.next_trx_no.fetch_add(1, Ordering::Relaxed)
    }

    /// Marks a transaction finished.  For commits, pass the `trx_no` it
    /// committed with (this advances the copy-free visibility horizon — the
    /// transaction's `del_ts`); for rollbacks pass `None`.
    pub fn finish(&self, txn: TxnId, committed_trx_no: Option<u64>) {
        self.active.lock().remove(&txn);
        if let Some(no) = committed_trx_no {
            self.max_committed_trx_no.fetch_max(no, Ordering::AcqRel);
        }
        // A finished transaction must not keep registry entries alive:
        // release_all already drained them, so this is a debug-only check
        // (one lookup in the transaction's own shard).  Removing leftovers
        // here would hide the leak — the page-queue/holder entries they
        // refer to would stay behind silently.
        if cfg!(debug_assertions) {
            for registry in &self.lock_registries {
                debug_assert_eq!(
                    registry.record_count_of(txn),
                    0,
                    "transaction {txn} finished with lock bookkeeping still registered"
                );
            }
        }
    }

    /// Number of currently active transactions.
    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }

    /// True when the transaction is still registered active.
    pub fn is_active(&self, txn: TxnId) -> bool {
        self.active.lock().contains(&txn)
    }

    /// Newest committed `trx_no` (the copy-free horizon).
    pub fn commit_horizon(&self) -> u64 {
        self.max_committed_trx_no.load(Ordering::Acquire)
    }

    /// Creates a read view for `owner` in the configured mode.
    pub fn read_view(&self, owner: TxnId) -> ReadView {
        self.read_view_in_mode(owner, self.read_view_mode)
    }

    /// Creates a read view in an explicit mode (used by the ablation bench).
    pub fn read_view_in_mode(&self, owner: TxnId, mode: ReadViewMode) -> ReadView {
        match mode {
            ReadViewMode::Copying => {
                // Lock and copy the active list — the cost §3.1.2 eliminates.
                let active_ids = self.active.lock().clone();
                ReadView::Copying {
                    active_ids,
                    low_limit: TxnId(self.next_txn_id.load(Ordering::Relaxed)),
                    owner,
                }
            }
            ReadViewMode::CopyFree => ReadView::CopyFree {
                commit_horizon: self.commit_horizon(),
                owner,
            },
        }
    }
}

impl Default for TrxSys {
    fn default() -> Self {
        Self::new(ReadViewMode::CopyFree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txsql_storage::VisibilityJudge;

    #[test]
    fn begin_assigns_increasing_ids_and_tracks_active() {
        let sys = TrxSys::default();
        let a = sys.begin();
        let b = sys.begin();
        assert!(b.id > a.id);
        assert_eq!(sys.active_count(), 2);
        assert!(sys.is_active(a.id));
        sys.finish(a.id, None);
        assert_eq!(sys.active_count(), 1);
        assert!(!sys.is_active(a.id));
    }

    #[test]
    fn finish_asserts_registries_drained() {
        let registry = Arc::new(TxnLockRegistry::new(8));
        let sys =
            TrxSys::new(ReadViewMode::CopyFree).with_lock_registries(vec![Arc::clone(&registry)]);
        // Clean teardown passes the drained-registry check.
        let t = sys.begin();
        sys.finish(t.id, None);
        assert!(registry.is_empty());
        // A leaked entry is loud in debug builds (and deliberately left
        // intact rather than silently dropped — it still refers to live
        // lock-table state).
        if cfg!(debug_assertions) {
            let t2 = sys.begin();
            registry.remember_record(t2.id, txsql_common::RecordId::new(1, 0, 0));
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                sys.finish(t2.id, None);
            }));
            assert!(caught.is_err(), "debug build must flag leaked bookkeeping");
            assert_eq!(
                registry.record_count_of(t2.id),
                1,
                "leftover must not be dropped"
            );
        }
    }

    #[test]
    fn with_start_seeds_counters_past_recovered_ids() {
        let sys = TrxSys::default().with_start(42, 17);
        let t = sys.begin();
        assert_eq!(t.id, TxnId(42));
        assert_eq!(sys.allocate_trx_no(), 17);
        // Everything recovered as committed (trx_no <= 16) is visible.
        assert_eq!(sys.commit_horizon(), 16);
        sys.finish(t.id, None);
    }

    #[test]
    fn commit_horizon_advances_with_commits() {
        let sys = TrxSys::default();
        let t = sys.begin();
        assert_eq!(sys.commit_horizon(), 0);
        let no = sys.allocate_trx_no();
        sys.finish(t.id, Some(no));
        assert_eq!(sys.commit_horizon(), no);
        // Rollbacks do not advance the horizon.
        let t2 = sys.begin();
        sys.finish(t2.id, None);
        assert_eq!(sys.commit_horizon(), no);
    }

    #[test]
    fn copying_view_snapshot_isolates_concurrent_commits() {
        let sys = TrxSys::new(ReadViewMode::Copying);
        let writer = sys.begin();
        let reader = sys.begin();
        let view = sys.read_view(reader.id);
        // Writer commits after the view was created.
        let no = sys.allocate_trx_no();
        sys.finish(writer.id, Some(no));
        // Its version is still invisible to the old view.
        assert!(!view.is_visible(writer.id, Some(no)));
        // A fresh view sees it.
        let fresh = sys.read_view(reader.id);
        assert!(fresh.is_visible(writer.id, Some(no)));
    }

    #[test]
    fn copy_free_view_snapshot_isolates_concurrent_commits() {
        let sys = TrxSys::new(ReadViewMode::CopyFree);
        let writer = sys.begin();
        let reader = sys.begin();
        let view = sys.read_view(reader.id);
        let no = sys.allocate_trx_no();
        sys.finish(writer.id, Some(no));
        assert!(!view.is_visible(writer.id, Some(no)));
        let fresh = sys.read_view(reader.id);
        assert!(fresh.is_visible(writer.id, Some(no)));
    }

    #[test]
    fn both_modes_agree_on_visibility_of_settled_history() {
        let sys = TrxSys::new(ReadViewMode::CopyFree);
        let writer = sys.begin();
        let no = sys.allocate_trx_no();
        sys.finish(writer.id, Some(no));
        let reader = sys.begin();
        let copying = sys.read_view_in_mode(reader.id, ReadViewMode::Copying);
        let copy_free = sys.read_view_in_mode(reader.id, ReadViewMode::CopyFree);
        assert!(copying.is_visible(writer.id, Some(no)));
        assert!(copy_free.is_visible(writer.id, Some(no)));
        // An uncommitted write from a later transaction is invisible to both.
        let other = sys.begin();
        assert!(!copying.is_visible(other.id, None));
        assert!(!copy_free.is_visible(other.id, None));
    }
}
