//! Per-transaction metrics scratch ([`TxnMetrics`]).
//!
//! The lock tables' uncontended acquire/release cycle used to pay 2+ relaxed
//! atomic RMWs into the shared `EngineMetrics` per cycle (`locks_created`,
//! `locks_released`, `release_shard_locks`, plus four more per grant-scan
//! histogram record).  Every [`Transaction`](crate::Transaction) now carries
//! a [`TxnMetrics`]: a `Cell`-based [`MetricsScratch`] the engine passes as
//! the [`MetricsSink`](txsql_common::metrics::MetricsSink) to the lock
//! tables' `*_in` entry points, so the per-cycle counts are plain integer
//! arithmetic on transaction-private memory.
//!
//! The accumulated counts drain to the shared `EngineMetrics` in **one**
//! batch of atomics per transaction: [`TxnMetrics::flush`] runs on `Drop`,
//! which covers commit, rollback *and* every abort/error path — a
//! transaction that dies mid-statement cannot lose counts (the stress tests
//! assert released-lock totals balance across forced-rollback storms).
//! Until a transaction finishes, its in-flight counts are simply not yet
//! visible in snapshots — the price of keeping the hot path atomics-free.

use std::sync::Arc;
use txsql_common::metrics::{EngineMetrics, MetricsScratch};

/// A transaction's private metrics scratch, flushed to the engine-wide
/// [`EngineMetrics`] when the transaction finishes (and on drop, so no abort
/// path can lose counts).
#[derive(Debug, Default)]
pub struct TxnMetrics {
    scratch: MetricsScratch,
    target: Option<Arc<EngineMetrics>>,
}

impl TxnMetrics {
    /// A scratch attached to `target`: counts recorded through
    /// [`TxnMetrics::sink`] reach `target` at the next flush/drop.
    pub fn attached(target: Arc<EngineMetrics>) -> Self {
        Self {
            scratch: MetricsScratch::new(),
            target: Some(target),
        }
    }

    /// A detached scratch (tests / transactions created outside an engine):
    /// counts accumulate but are dropped with the transaction.
    pub fn detached() -> Self {
        Self::default()
    }

    /// The sink to hand to the lock tables' `*_in` entry points.
    #[inline]
    pub fn sink(&self) -> &MetricsScratch {
        &self.scratch
    }

    /// True when nothing is waiting to be flushed.
    pub fn is_empty(&self) -> bool {
        self.scratch.is_empty()
    }

    /// Drains the accumulated counts into the attached engine metrics (no-op
    /// when detached or empty).  Safe to call repeatedly; `Drop` calls it as
    /// the backstop.
    pub fn flush(&self) {
        if let Some(target) = &self.target {
            self.scratch.flush(target);
        }
    }
}

impl Drop for TxnMetrics {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txsql_common::metrics::MetricsSink;

    #[test]
    fn drop_flushes_pending_counts() {
        let engine = Arc::new(EngineMetrics::new());
        {
            let metrics = TxnMetrics::attached(Arc::clone(&engine));
            metrics.sink().on_lock_created();
            metrics.sink().on_locks_released(2);
            metrics.sink().on_release_shard_lock();
            metrics.sink().on_grant_scan(3);
            assert_eq!(engine.locks_created.get(), 0, "nothing until flush");
            assert!(!metrics.is_empty());
        }
        // The scope end dropped the scratch: everything must have landed.
        assert_eq!(engine.locks_created.get(), 1);
        assert_eq!(engine.locks_released.get(), 2);
        assert_eq!(engine.release_shard_locks.get(), 1);
        assert_eq!(engine.grant_scan_len.count(), 1);
        assert_eq!(engine.grant_scan_len.max_micros(), 3);
    }

    #[test]
    fn explicit_flush_then_drop_does_not_double_count() {
        let engine = Arc::new(EngineMetrics::new());
        {
            let metrics = TxnMetrics::attached(Arc::clone(&engine));
            metrics.sink().on_locks_released(5);
            metrics.flush();
            assert_eq!(engine.locks_released.get(), 5);
            assert!(metrics.is_empty());
        }
        assert_eq!(engine.locks_released.get(), 5);
    }

    #[test]
    fn detached_scratch_drops_its_counts_silently() {
        let metrics = TxnMetrics::detached();
        metrics.sink().on_lock_created();
        metrics.flush();
        assert!(!metrics.is_empty(), "no target, nothing drained");
    }
}
