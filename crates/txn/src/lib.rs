//! # txsql-txn
//!
//! Transaction-manager substrate: transaction lifecycle, the active
//! transaction list and MVCC read views.
//!
//! The paper's second general optimization (§3.1.2) replaces the classic
//! *copying* active-transaction-list read view — which must lock and copy the
//! list on every snapshot — with a *copy-free* scheme based on a per-
//! transaction deletion timestamp (`del_ts`).  Both variants are implemented
//! here behind the same [`txsql_storage::VisibilityJudge`] interface so the
//! engine (and the `readview` Criterion bench) can switch between them:
//!
//! * [`readview::ReadView::Copying`] — locks the active list, copies the ids.
//! * [`readview::ReadView::CopyFree`] — one atomic load of the newest commit
//!   sequence number; visibility is decided from version commit numbers (the
//!   `del_ts` of their writers) alone.
//!
//! [`trx_sys::TrxSys`] owns transaction-id / commit-number allocation and the
//! active list; [`transaction::Transaction`] is the per-worker handle that
//! accumulates write/read sets and hotspot participation.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod metrics;
pub mod readview;
pub mod transaction;
pub mod trx_sys;

pub use metrics::TxnMetrics;
pub use readview::{ReadView, ReadViewMode};
pub use transaction::{HotRole, Transaction, TxnState};
pub use trx_sys::TrxSys;
