//! MVCC read views: the copying and copy-free variants (§3.1.2).
//!
//! A read view answers one question for the storage layer: *is a row version
//! written by transaction `W` (committed with sequence number `c`, or still
//! uncommitted) visible to me?*
//!
//! * The **copying** view is what InnoDB's classic `readView` does: at
//!   creation it locks the active-transaction list and copies the ids of all
//!   transactions active at that instant.  A version is visible when its
//!   writer committed and was not in that copied set.  The copy (and the lock
//!   protecting it) is the overhead §3.1.2 wants to avoid.
//! * The **copy-free** view records a single number: the newest commit
//!   sequence number (`trx_no`) at creation time — effectively the `del_ts`
//!   horizon.  A version is visible when its writer's commit number is at or
//!   below that horizon.  No list is locked or copied.
//!
//! Both variants implement [`VisibilityJudge`] so the storage layer does not
//! care which one is in use; the `readview` bench measures the creation-cost
//! difference under concurrency.

use txsql_common::fxhash::FxHashSet;
use txsql_common::TxnId;
use txsql_storage::VisibilityJudge;

/// Which read-view implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadViewMode {
    /// Copy the active transaction list (baseline MySQL behaviour).
    Copying,
    /// Copy-free `del_ts` visibility (the §3.1.2 optimization).
    CopyFree,
}

/// A snapshot for MVCC reads.
#[derive(Debug, Clone)]
pub enum ReadView {
    /// Classic copying view.
    Copying {
        /// Ids of transactions that were active when the view was created.
        active_ids: FxHashSet<TxnId>,
        /// Ids at or above this limit did not exist yet at view creation.
        low_limit: TxnId,
        /// The transaction this view belongs to (sees its own writes).
        owner: TxnId,
    },
    /// Copy-free view based on commit sequence numbers.
    CopyFree {
        /// Newest commit sequence number visible to this view.
        commit_horizon: u64,
        /// The transaction this view belongs to (sees its own writes).
        owner: TxnId,
    },
}

impl ReadView {
    /// The owning transaction.
    pub fn owner(&self) -> TxnId {
        match self {
            ReadView::Copying { owner, .. } | ReadView::CopyFree { owner, .. } => *owner,
        }
    }

    /// Which mode this view was created in.
    pub fn mode(&self) -> ReadViewMode {
        match self {
            ReadView::Copying { .. } => ReadViewMode::Copying,
            ReadView::CopyFree { .. } => ReadViewMode::CopyFree,
        }
    }
}

impl VisibilityJudge for ReadView {
    fn is_visible(&self, writer: TxnId, commit_no: Option<u64>) -> bool {
        match self {
            ReadView::Copying {
                active_ids,
                low_limit,
                owner,
            } => {
                if writer == *owner {
                    return true;
                }
                // The bulk loader (TxnId::INVALID) is always visible.
                if !writer.is_valid() {
                    return true;
                }
                if commit_no.is_none() {
                    return false;
                }
                // Started after the view was created?
                if writer >= *low_limit {
                    return false;
                }
                // Active (uncommitted) when the view was created?
                !active_ids.contains(&writer)
            }
            ReadView::CopyFree {
                commit_horizon,
                owner,
            } => {
                if writer == *owner {
                    return true;
                }
                if !writer.is_valid() {
                    return true;
                }
                match commit_no {
                    Some(no) => no <= *commit_horizon,
                    None => false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn copying(active: &[u64], low_limit: u64, owner: u64) -> ReadView {
        ReadView::Copying {
            active_ids: active.iter().map(|i| TxnId(*i)).collect(),
            low_limit: TxnId(low_limit),
            owner: TxnId(owner),
        }
    }

    #[test]
    fn copying_view_hides_active_and_future_writers() {
        let view = copying(&[5, 7], 10, 99);
        // Committed, old, not active at view creation: visible.
        assert!(view.is_visible(TxnId(3), Some(2)));
        // Active at view creation: invisible even though now committed.
        assert!(!view.is_visible(TxnId(5), Some(8)));
        // Started after the view: invisible.
        assert!(!view.is_visible(TxnId(11), Some(9)));
        // Uncommitted: invisible.
        assert!(!view.is_visible(TxnId(3), None));
        // Own writes: visible even uncommitted.
        assert!(view.is_visible(TxnId(99), None));
        // Bulk-loaded data: visible.
        assert!(view.is_visible(TxnId::INVALID, Some(0)));
    }

    #[test]
    fn copy_free_view_uses_commit_horizon() {
        let view = ReadView::CopyFree {
            commit_horizon: 10,
            owner: TxnId(99),
        };
        assert!(view.is_visible(TxnId(1), Some(10)));
        assert!(view.is_visible(TxnId(1), Some(1)));
        assert!(!view.is_visible(TxnId(1), Some(11)));
        assert!(!view.is_visible(TxnId(1), None));
        assert!(view.is_visible(TxnId(99), None));
        assert!(view.is_visible(TxnId::INVALID, Some(0)));
    }

    #[test]
    fn both_views_agree_on_committed_history() {
        // A writer that committed before either snapshot must be visible to
        // both; a writer that committed after must be invisible to both.
        let copying_view = copying(&[], 100, 1);
        let copy_free_view = ReadView::CopyFree {
            commit_horizon: 50,
            owner: TxnId(1),
        };
        for (writer, commit_no, expected) in
            [(TxnId(10), Some(20u64), true), (TxnId(10), None, false)]
        {
            assert_eq!(copying_view.is_visible(writer, commit_no), expected);
            assert_eq!(copy_free_view.is_visible(writer, commit_no), expected);
        }
    }

    #[test]
    fn accessors() {
        let v = ReadView::CopyFree {
            commit_horizon: 1,
            owner: TxnId(2),
        };
        assert_eq!(v.owner(), TxnId(2));
        assert_eq!(v.mode(), ReadViewMode::CopyFree);
        let c = copying(&[], 1, 3);
        assert_eq!(c.mode(), ReadViewMode::Copying);
        assert_eq!(c.owner(), TxnId(3));
    }
}
