//! The per-worker transaction handle.

use crate::metrics::TxnMetrics;
use std::sync::Arc;
use std::time::Instant;
use txsql_common::fxhash::{FxHashMap, FxHashSet};
use txsql_common::metrics::{EngineMetrics, MetricsScratch};
use txsql_common::{RecordId, Row, TableId, TxnId};

/// Lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Executing statements.
    Active,
    /// In the 2PC prepare/commit pipeline.
    Preparing,
    /// Committed durably.
    Committed,
    /// Rolled back.
    Aborted,
}

/// Role a transaction plays on a particular hot row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HotRole {
    /// Group leader: acquired the real row lock for its group.
    Leader,
    /// Follower: executed without locking inside a group.
    Follower,
}

/// A transaction: owned by exactly one worker thread.
#[derive(Debug)]
pub struct Transaction {
    /// Transaction id assigned at begin.
    pub id: TxnId,
    /// Current lifecycle state.
    pub state: TxnState,
    /// Wall-clock start, used for latency accounting.
    pub started_at: Instant,
    /// Rows written: `(table, record)` in execution order (duplicates kept out).
    write_set: Vec<(TableId, RecordId)>,
    /// Rows read, with the writer of the version actually observed (used by
    /// the serializability checker and Aria validation).  Capturing the
    /// writer *at read time* — instead of re-reading the chain at commit —
    /// is what lets the checker attribute `wr`/`rw` edges to the version a
    /// statement really saw, even when later writers commit in between.
    read_set: Vec<(TableId, RecordId, TxnId)>,
    /// Hot rows this transaction updated, with its role and hot-update order.
    hot_updates: FxHashMap<u64, (HotRole, u64)>,
    /// Rows whose lock this transaction currently holds through the lock
    /// manager (leaders and plain-2PL writers; followers hold none).  A hash
    /// set so the per-statement "already locked?" check is O(1) no matter
    /// how many rows the transaction touches.
    locked_records: FxHashSet<RecordId>,
    /// Records read from an uncommitted version (Bamboo-style dirty reads),
    /// together with the writer depended upon.
    dirty_reads_from: Vec<TxnId>,
    /// Record locks whose early release (Bamboo) has been deferred by the
    /// write path: they are accumulated here and flushed through one batched
    /// `release_record_locks` call at a statement boundary, so the lock-table
    /// and registry shard locks are taken once per batch instead of once per
    /// row.
    pending_early_releases: Vec<RecordId>,
    /// After-images of every change, in execution order — the material the
    /// binlog (replication) is built from at commit.
    changes: Vec<(TableId, i64, Row)>,
    /// Cumulative time spent blocked on locks / queues / commit ordering.
    blocked: std::time::Duration,
    /// Transaction-private metrics scratch: the lock tables' hot-path
    /// counters accumulate here (plain `Cell` arithmetic) and flush to the
    /// engine's shared `EngineMetrics` once, when the transaction drops —
    /// commit, rollback and abort paths alike (see [`TxnMetrics`]).
    metrics: TxnMetrics,
}

impl Transaction {
    /// Creates a new active transaction with a detached metrics scratch
    /// (counts are kept but never flushed — tests and stand-alone use).
    pub fn new(id: TxnId) -> Self {
        Self::with_metrics(id, TxnMetrics::detached())
    }

    /// Creates a new active transaction attached to the engine's metrics:
    /// the scratch flushes there when the transaction finishes.
    pub fn attached_to(id: TxnId, engine_metrics: Arc<EngineMetrics>) -> Self {
        Self::with_metrics(id, TxnMetrics::attached(engine_metrics))
    }

    fn with_metrics(id: TxnId, metrics: TxnMetrics) -> Self {
        Self {
            id,
            state: TxnState::Active,
            started_at: Instant::now(),
            write_set: Vec::new(),
            read_set: Vec::new(),
            hot_updates: FxHashMap::default(),
            locked_records: FxHashSet::default(),
            dirty_reads_from: Vec::new(),
            pending_early_releases: Vec::new(),
            changes: Vec::new(),
            blocked: std::time::Duration::ZERO,
            metrics,
        }
    }

    /// The transaction's metrics scratch in sink form — what the engine
    /// passes to the lock tables' `*_in` entry points so per-cycle counters
    /// cost no atomic RMW.
    #[inline]
    pub fn metrics_sink(&self) -> &MetricsScratch {
        self.metrics.sink()
    }

    /// The transaction's metrics scratch (flush control / introspection).
    pub fn metrics(&self) -> &TxnMetrics {
        &self.metrics
    }

    /// True while the transaction can still execute statements.
    pub fn is_active(&self) -> bool {
        self.state == TxnState::Active
    }

    /// Records a write.  Idempotent per `(table, record)`.
    pub fn record_write(&mut self, table: TableId, record: RecordId) {
        if !self.write_set.contains(&(table, record)) {
            self.write_set.push((table, record));
        }
    }

    /// Records a read of the version produced by `writer`
    /// (`TxnId::INVALID` for a bulk-loaded base version).  The first
    /// observation wins: re-reading a row does not overwrite the version the
    /// transaction's logic actually consumed.
    pub fn record_read(&mut self, table: TableId, record: RecordId, writer: TxnId) {
        if !self
            .read_set
            .iter()
            .any(|(t, r, _)| *t == table && *r == record)
        {
            self.read_set.push((table, record, writer));
        }
    }

    /// The write set in execution order.
    pub fn write_set(&self) -> &[(TableId, RecordId)] {
        &self.write_set
    }

    /// The read set in execution order: `(table, record, version writer)`.
    pub fn read_set(&self) -> &[(TableId, RecordId, TxnId)] {
        &self.read_set
    }

    /// Registers participation in a hot-row group.
    pub fn record_hot_update(&mut self, record: RecordId, role: HotRole, order: u64) {
        self.hot_updates.insert(record.packed(), (role, order));
    }

    /// Hot rows this transaction updated (record, role, order).
    pub fn hot_updates(&self) -> Vec<(RecordId, HotRole, u64)> {
        self.hot_updates
            .iter()
            .map(|(packed, (role, order))| (RecordId::from_packed(*packed), *role, *order))
            .collect()
    }

    /// Role on a specific hot row, if the transaction updated it.
    pub fn hot_role(&self, record: RecordId) -> Option<HotRole> {
        self.hot_updates
            .get(&record.packed())
            .map(|(role, _)| *role)
    }

    /// True when this transaction updated the given hot row.
    pub fn updated_hot_row(&self, record: RecordId) -> bool {
        self.hot_updates.contains_key(&record.packed())
    }

    /// True when the transaction updated *any* hot row.
    pub fn has_hot_updates(&self) -> bool {
        !self.hot_updates.is_empty()
    }

    /// Remembers that this transaction holds the lock-manager lock on a record.
    pub fn record_lock(&mut self, record: RecordId) {
        self.locked_records.insert(record);
    }

    /// Records this transaction currently holds locks on.
    pub fn locked_records(&self) -> &FxHashSet<RecordId> {
        &self.locked_records
    }

    /// True when this transaction holds the lock-manager lock on `record`.
    #[inline]
    pub fn holds_lock(&self, record: RecordId) -> bool {
        self.locked_records.contains(&record)
    }

    /// Records that this transaction read uncommitted data written by `writer`
    /// (Bamboo early-lock-release path); commit must wait for `writer`.
    pub fn record_dirty_read_from(&mut self, writer: TxnId) {
        if writer != self.id && !self.dirty_reads_from.contains(&writer) {
            self.dirty_reads_from.push(writer);
        }
    }

    /// Writers of uncommitted data this transaction depends on.
    pub fn dirty_reads_from(&self) -> &[TxnId] {
        &self.dirty_reads_from
    }

    /// Defers the early release (Bamboo) of `record` to the next
    /// statement-boundary flush.  The lock stays held — and the record stays
    /// registry-tracked — until [`Transaction::take_pending_early_releases`]
    /// hands the batch to `release_record_locks`.
    pub fn defer_early_release(&mut self, record: RecordId) {
        self.pending_early_releases.push(record);
    }

    /// Record locks awaiting a batched early-release flush.
    pub fn pending_early_releases(&self) -> &[RecordId] {
        &self.pending_early_releases
    }

    /// Takes the deferred early releases for one batched
    /// `release_record_locks` call, leaving the buffer empty (its allocation
    /// is handed out with the batch).
    pub fn take_pending_early_releases(&mut self) -> Vec<RecordId> {
        std::mem::take(&mut self.pending_early_releases)
    }

    /// Number of statements' worth of work recorded (reads + writes); used by
    /// the metrics to compute locks-per-query style ratios.
    pub fn touched_rows(&self) -> usize {
        self.read_set.len() + self.write_set.len()
    }

    /// Records an after-image for the binlog.
    pub fn record_change(&mut self, table: TableId, pk: i64, after: Row) {
        self.changes.push((table, pk, after));
    }

    /// Accumulates time spent blocked (lock waits, hotspot queues, commit-turn
    /// waits) — the numerator of the blocked share in the CPU-utilisation
    /// proxy (Figure 6b).
    pub fn add_blocked(&mut self, blocked: std::time::Duration) {
        self.blocked += blocked;
    }

    /// Total blocked time accumulated so far.
    pub fn blocked_time(&self) -> std::time::Duration {
        self.blocked
    }

    /// After-images accumulated so far, in execution order.
    pub fn changes(&self) -> &[(TableId, i64, Row)] {
        &self.changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_and_read_sets_deduplicate() {
        let mut t = Transaction::new(TxnId(1));
        let r = RecordId::new(1, 0, 0);
        t.record_write(TableId(1), r);
        t.record_write(TableId(1), r);
        t.record_read(TableId(1), r, TxnId(7));
        t.record_read(TableId(1), r, TxnId(8));
        assert_eq!(t.write_set().len(), 1);
        assert_eq!(t.read_set().len(), 1);
        // First observation wins: the version the logic consumed is kept.
        assert_eq!(t.read_set()[0].2, TxnId(7));
        assert_eq!(t.touched_rows(), 2);
    }

    #[test]
    fn hot_update_bookkeeping() {
        let mut t = Transaction::new(TxnId(2));
        let hot = RecordId::new(1, 0, 0);
        let cold = RecordId::new(1, 0, 1);
        assert!(!t.has_hot_updates());
        t.record_hot_update(hot, HotRole::Follower, 42);
        assert!(t.updated_hot_row(hot));
        assert!(!t.updated_hot_row(cold));
        assert_eq!(t.hot_role(hot), Some(HotRole::Follower));
        assert_eq!(t.hot_updates(), vec![(hot, HotRole::Follower, 42)]);
        assert!(t.has_hot_updates());
    }

    #[test]
    fn dirty_read_dependencies_ignore_self_and_duplicates() {
        let mut t = Transaction::new(TxnId(3));
        t.record_dirty_read_from(TxnId(3));
        t.record_dirty_read_from(TxnId(4));
        t.record_dirty_read_from(TxnId(4));
        assert_eq!(t.dirty_reads_from(), &[TxnId(4)]);
    }

    #[test]
    fn state_starts_active() {
        let t = Transaction::new(TxnId(5));
        assert!(t.is_active());
        assert_eq!(t.state, TxnState::Active);
    }

    #[test]
    fn locked_records_deduplicate() {
        let mut t = Transaction::new(TxnId(6));
        let r = RecordId::new(2, 1, 0);
        t.record_lock(r);
        t.record_lock(r);
        assert_eq!(t.locked_records().len(), 1);
        assert!(t.holds_lock(r));
        assert!(!t.holds_lock(RecordId::new(2, 1, 1)));
    }
}
