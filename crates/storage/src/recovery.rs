//! Crash recovery.
//!
//! Recovery rebuilds the engine from a [`CheckpointImage`] plus the durable
//! suffix of the redo log, then deals with in-flight transactions:
//!
//! 1. **Replay** — every durable `Insert`/`Update` record is re-applied as an
//!    uncommitted version written by its original transaction, and
//!    `UndoHeader` records restore each transaction's header field
//!    (which may carry a `hot_update_order`, §5.3).  Replay is *idempotent*:
//!    a row image the chain already carries (same writer, same image, still
//!    uncommitted) is skipped instead of double-applied, so replaying the
//!    same durable suffix twice — or a suffix that overlaps the checkpoint —
//!    yields the same state.  Duplicate `Commit` markers keep the first
//!    `trx_no`.
//! 2. **Commit/rollback resolution** — transactions with a durable `Commit`
//!    marker are committed with their original `trx_no`; transactions with a
//!    durable `Rollback` marker are undone.
//! 3. **Active-transaction rollback** — transactions with neither marker are
//!    rolled back *in reverse hot-update order* (transactions without a hot
//!    order are rolled back first), reproducing the paper's single-threaded
//!    sequential rollback.  The rollback order is also reported so the
//!    failure-recovery experiment can verify it.
//!
//! # Torn tails
//!
//! A mid-flush crash can leave a *torn* record at the end of the durable
//! suffix ([`LogFrame::Torn`]).  [`recover_frames`] scan-stops at the last
//! intact record — the torn record never reached disk whole, so the
//! transaction it belonged to simply falls into the rollback pass.  A torn
//! frame anywhere *except* the tail means the log itself is corrupt and
//! recovery refuses with [`Error::CorruptLog`].

use crate::storage::{CheckpointImage, Storage};
use crate::undo::UndoHeader;
use crate::wal::{LogFrame, RedoRecord};
use std::time::Duration;
use txsql_common::fxhash::{FxHashMap, FxHashSet};
use txsql_common::{Error, Lsn, Result, Row, TableId, TxnId};

/// Everything recovery learned, separated from the recovered engine so it can
/// be logged, asserted on by the recovery oracle, and used to reseed the
/// transaction system after a restart.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Transactions whose commit marker was durable (re-committed), sorted.
    pub committed: Vec<TxnId>,
    /// In-flight transactions rolled back during recovery, in the order they
    /// were rolled back (reverse hot-update order).
    pub rolled_back: Vec<TxnId>,
    /// Number of redo records replayed.
    pub replayed: usize,
    /// Row images skipped because the chain already carried them (idempotent
    /// replay of an overlapping or duplicated suffix).
    pub duplicate_replays_skipped: usize,
    /// Hot-update orders recovered from persisted undo headers, in rollback
    /// order (descending).
    pub recovered_hot_orders: Vec<(TxnId, u64)>,
    /// LSN of the torn record recovery scan-stopped at, if any.
    pub torn_tail: Option<Lsn>,
    /// Highest transaction id seen in the durable suffix (0 if none).
    pub max_txn_id: u64,
    /// Highest commit sequence number seen in the durable suffix (0 if none).
    pub max_trx_no: u64,
}

impl RecoveryReport {
    /// One-line human-readable summary (the recovery outcome log).
    pub fn summary(&self) -> String {
        let torn = match self.torn_tail {
            Some(lsn) => format!("torn tail at lsn {}", lsn.0),
            None => "clean tail".to_string(),
        };
        format!(
            "recovery: replayed {} records ({} duplicates skipped), \
             {} committed, {} rolled back ({} hot-ordered), {}",
            self.replayed,
            self.duplicate_replays_skipped,
            self.committed.len(),
            self.rolled_back.len(),
            self.recovered_hot_orders.len(),
            torn
        )
    }
}

/// Outcome of a recovery run: the recovered engine plus its report.
#[derive(Debug)]
pub struct RecoveryOutcome {
    /// The recovered storage engine.
    pub storage: Storage,
    /// What recovery did (for logging and the recovery oracle).
    pub report: RecoveryReport,
}

#[derive(Default)]
struct TxnRecoveryState {
    committed_as: Option<u64>,
    rolled_back: bool,
    header: UndoHeader,
    touched: Vec<(TableId, i64)>,
    last_seq: usize,
}

/// Applies one row image as an uncommitted version written by `txn`,
/// inserting the row if its primary key does not exist yet (it may have been
/// created after the checkpoint).  Returns `false` when the chain already
/// carries this exact uncommitted image from `txn` — the idempotent-replay
/// guard against double-applying an overlapping or duplicated suffix.
fn replay_row(storage: &Storage, txn: TxnId, table_id: TableId, pk: i64, row: Row) -> Result<bool> {
    let table = storage.table(table_id)?;
    match table.lookup_pk(pk) {
        Ok(record) => {
            let slot = table.slot(record)?;
            let mut guard = slot.write();
            let already_applied = guard
                .iter()
                .any(|v| v.commit_no.is_none() && v.writer == txn && v.row == row);
            if already_applied {
                return Ok(false);
            }
            guard.push_uncommitted(row, txn);
        }
        Err(_) => {
            table.insert_versions(
                pk,
                crate::version::RecordVersions::new_uncommitted(row, txn),
            )?;
        }
    }
    Ok(true)
}

/// Recovers a storage engine from `checkpoint` and the durable redo suffix,
/// given as plain records (no torn tail).  See [`recover_frames`] for the
/// frame-aware entry point a restarted process uses.
pub fn recover(
    checkpoint: &CheckpointImage,
    durable_redo: &[RedoRecord],
    fsync_latency: Duration,
) -> Result<RecoveryOutcome> {
    recover_records(checkpoint, durable_redo, None, fsync_latency)
}

/// Recovers a storage engine from `checkpoint` and the durable log suffix as
/// read back after a crash.  A [`LogFrame::Torn`] frame at the tail makes
/// recovery scan-stop at the last intact record; a torn frame anywhere else
/// is a corrupt log and recovery refuses with [`Error::CorruptLog`].
pub fn recover_frames(
    checkpoint: &CheckpointImage,
    frames: &[(Lsn, LogFrame)],
    fsync_latency: Duration,
) -> Result<RecoveryOutcome> {
    let mut records = Vec::with_capacity(frames.len());
    let mut torn_tail = None;
    for (i, (lsn, frame)) in frames.iter().enumerate() {
        match frame {
            LogFrame::Intact(record) => records.push(record.clone()),
            LogFrame::Torn if i + 1 == frames.len() => torn_tail = Some(*lsn),
            LogFrame::Torn => {
                return Err(Error::CorruptLog {
                    reason: format!("torn record at lsn {} before the log tail", lsn.0),
                });
            }
        }
    }
    recover_records(checkpoint, &records, torn_tail, fsync_latency)
}

fn recover_records(
    checkpoint: &CheckpointImage,
    durable_redo: &[RedoRecord],
    torn_tail: Option<Lsn>,
    fsync_latency: Duration,
) -> Result<RecoveryOutcome> {
    let storage = Storage::from_checkpoint(checkpoint, fsync_latency)?;
    let mut states: FxHashMap<TxnId, TxnRecoveryState> = FxHashMap::default();
    let mut replayed = 0usize;
    let mut duplicate_replays_skipped = 0usize;

    // Pass 1: replay physical changes and collect per-transaction metadata.
    for (seq, record) in durable_redo.iter().enumerate() {
        let txn = record.txn();
        let state = states.entry(txn).or_default();
        state.last_seq = seq;
        match record {
            RedoRecord::Begin { .. } => {}
            RedoRecord::Update {
                table, pk, after, ..
            } => {
                if replay_row(&storage, txn, *table, *pk, after.clone())? {
                    state.touched.push((*table, *pk));
                    replayed += 1;
                } else {
                    duplicate_replays_skipped += 1;
                }
            }
            RedoRecord::Insert { table, pk, row, .. } => {
                if replay_row(&storage, txn, *table, *pk, row.clone())? {
                    state.touched.push((*table, *pk));
                    replayed += 1;
                } else {
                    duplicate_replays_skipped += 1;
                }
            }
            RedoRecord::UndoHeader { field, .. } => {
                state.header = UndoHeader::from_raw(*field);
            }
            RedoRecord::Commit { trx_no, .. } => {
                // A duplicated suffix can carry the same Commit marker twice;
                // the first trx_no wins (they are identical in practice).
                if state.committed_as.is_none() {
                    state.committed_as = Some(*trx_no);
                }
            }
            RedoRecord::Rollback { .. } => {
                state.rolled_back = true;
            }
        }
    }

    // Pass 2: resolve committed transactions.
    let mut committed = Vec::new();
    let mut max_trx_no = 0u64;
    for (txn, state) in states.iter() {
        if let Some(trx_no) = state.committed_as {
            max_trx_no = max_trx_no.max(trx_no);
            for (table_id, pk) in &state.touched {
                let table = storage.table(*table_id)?;
                if let Ok(record) = table.lookup_pk(*pk) {
                    table.slot(record)?.write().commit_writer(*txn, trx_no);
                }
            }
            committed.push(*txn);
        }
    }
    committed.sort_unstable();

    // Pass 3: roll back transactions that did not reach a durable commit —
    // both those with a durable rollback marker and those still active.
    // Order: transactions WITHOUT a recovered hot-update order first (they
    // cannot have stacked uncommitted versions under a hotspot chain), then
    // hotspot transactions in reverse hot-update order (§5.3).
    let mut to_roll_back: Vec<(TxnId, Option<u64>, usize)> = states
        .iter()
        .filter(|(_, s)| s.committed_as.is_none() && !s.touched.is_empty())
        .map(|(txn, s)| (*txn, s.header.hot_update_order(), s.last_seq))
        .collect();
    to_roll_back.sort_by(|a, b| match (a.1, b.1) {
        (None, None) => b.2.cmp(&a.2),
        (None, Some(_)) => std::cmp::Ordering::Less,
        (Some(_), None) => std::cmp::Ordering::Greater,
        (Some(x), Some(y)) => y.cmp(&x),
    });

    let mut rolled_back = Vec::new();
    let mut recovered_hot_orders = Vec::new();
    let mut seen: FxHashSet<TxnId> = FxHashSet::default();
    for (txn, hot_order, _) in to_roll_back {
        if !seen.insert(txn) {
            continue;
        }
        if let Some(order) = hot_order {
            recovered_hot_orders.push((txn, order));
        }
        let state = &states[&txn];
        for (table_id, pk) in state.touched.iter().rev() {
            let table = storage.table(*table_id)?;
            if let Ok(record) = table.lookup_pk(*pk) {
                let slot = table.slot(record)?;
                let mut guard = slot.write();
                guard.rollback_writer(txn);
                // If the insert created the row and nothing committed remains,
                // drop the index entry again.
                if guard.visible_row(&crate::version::ReadCommitted).is_none()
                    && guard.version_count() == 0
                {
                    drop(guard);
                    table.unindex_pk(*pk);
                }
            }
        }
        rolled_back.push(txn);
    }
    recovered_hot_orders.sort_by_key(|(_, order)| std::cmp::Reverse(*order));

    let max_txn_id = states.keys().map(|t| t.0).max().unwrap_or(0);
    Ok(RecoveryOutcome {
        storage,
        report: RecoveryReport {
            committed,
            rolled_back,
            replayed,
            duplicate_replays_skipped,
            recovered_hot_orders,
            torn_tail,
            max_txn_id,
            max_trx_no,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use txsql_common::{RecordId, TableId};

    /// Builds a storage with one table, one hot row (pk=1) and one cold row
    /// (pk=2), returning (storage, table id, hot rid, cold rid, checkpoint).
    fn setup() -> (Storage, TableId, RecordId, RecordId, CheckpointImage) {
        let storage = Storage::default();
        let tid = TableId(1);
        storage.create_table(TableSchema::new(tid, "t", 2)).unwrap();
        let hot = storage.load_row(tid, Row::from_ints(&[1, 1])).unwrap();
        let cold = storage.load_row(tid, Row::from_ints(&[2, 100])).unwrap();
        let checkpoint = storage.checkpoint();
        (storage, tid, hot, cold, checkpoint)
    }

    #[test]
    fn committed_transactions_survive_a_crash() {
        let (storage, tid, hot, _cold, checkpoint) = setup();
        let txn = TxnId(10);
        storage.begin_txn(txn);
        storage
            .apply_update(txn, tid, hot, Row::from_ints(&[1, 2]))
            .unwrap();
        let lsn = storage.commit_writes(txn, 1, &[(tid, hot)]).unwrap();
        storage.redo().flush_to(lsn).unwrap();

        let outcome = recover(
            &checkpoint,
            &storage.redo().durable_records(),
            Duration::ZERO,
        )
        .unwrap();
        assert_eq!(outcome.report.committed, vec![txn]);
        assert!(outcome.report.rolled_back.is_empty());
        assert_eq!(outcome.report.max_txn_id, 10);
        assert_eq!(outcome.report.max_trx_no, 1);
        let t = outcome.storage.table(tid).unwrap();
        let rid = t.lookup_pk(1).unwrap();
        assert_eq!(
            outcome
                .storage
                .read_committed(tid, rid)
                .unwrap()
                .unwrap()
                .get_int(1),
            Some(2)
        );
    }

    #[test]
    fn unflushed_commit_is_rolled_back() {
        let (storage, tid, hot, _cold, checkpoint) = setup();
        let txn = TxnId(10);
        storage.begin_txn(txn);
        let lsn = storage
            .apply_update(txn, tid, hot, Row::from_ints(&[1, 2]))
            .unwrap();
        storage.redo().flush_to(lsn).unwrap();
        // Commit marker exists but is NOT flushed.
        storage.commit_writes(txn, 1, &[(tid, hot)]).unwrap();

        let outcome = recover(
            &checkpoint,
            &storage.redo().durable_records(),
            Duration::ZERO,
        )
        .unwrap();
        assert!(outcome.report.committed.is_empty());
        assert_eq!(outcome.report.rolled_back, vec![txn]);
        let t = outcome.storage.table(tid).unwrap();
        let rid = t.lookup_pk(1).unwrap();
        assert_eq!(
            outcome
                .storage
                .read_committed(tid, rid)
                .unwrap()
                .unwrap()
                .get_int(1),
            Some(1)
        );
    }

    #[test]
    fn hotspot_transactions_roll_back_in_reverse_hot_order() {
        let (storage, tid, hot, _cold, checkpoint) = setup();
        // Three uncommitted hotspot updates, orders 1,2,3 (paper §4.4 example).
        for (t, order, val) in [(1u64, 1u64, 2i64), (3, 2, 3), (2, 3, 4)] {
            let txn = TxnId(t);
            storage.begin_txn(txn);
            storage
                .apply_update(txn, tid, hot, Row::from_ints(&[1, val]))
                .unwrap();
            storage.set_hot_update_order(txn, order);
        }
        storage.redo().flush_all().unwrap();

        let outcome = recover(
            &checkpoint,
            &storage.redo().durable_records(),
            Duration::ZERO,
        )
        .unwrap();
        // Reverse hot-update order: order 3 (T2), then order 2 (T3), then order 1 (T1).
        assert_eq!(
            outcome.report.rolled_back,
            vec![TxnId(2), TxnId(3), TxnId(1)]
        );
        assert_eq!(
            outcome.report.recovered_hot_orders,
            vec![(TxnId(2), 3), (TxnId(3), 2), (TxnId(1), 1)]
        );
        let t = outcome.storage.table(tid).unwrap();
        let rid = t.lookup_pk(1).unwrap();
        assert_eq!(
            outcome
                .storage
                .read_committed(tid, rid)
                .unwrap()
                .unwrap()
                .get_int(1),
            Some(1)
        );
    }

    #[test]
    fn inserts_after_checkpoint_are_replayed_and_resolved() {
        let (storage, tid, _hot, _cold, checkpoint) = setup();
        let committed_txn = TxnId(5);
        storage.begin_txn(committed_txn);
        let (rid, _) = storage
            .apply_insert(committed_txn, tid, Row::from_ints(&[10, 10]))
            .unwrap();
        let lsn = storage
            .commit_writes(committed_txn, 2, &[(tid, rid)])
            .unwrap();
        storage.redo().flush_to(lsn).unwrap();

        let active_txn = TxnId(6);
        storage.begin_txn(active_txn);
        storage
            .apply_insert(active_txn, tid, Row::from_ints(&[11, 11]))
            .unwrap();
        storage.redo().flush_all().unwrap();

        let outcome = recover(
            &checkpoint,
            &storage.redo().durable_records(),
            Duration::ZERO,
        )
        .unwrap();
        let t = outcome.storage.table(tid).unwrap();
        assert!(t.lookup_pk(10).is_ok(), "committed insert must survive");
        assert!(
            t.lookup_pk(11).is_err(),
            "uncommitted insert must be rolled back"
        );
        assert_eq!(outcome.report.committed, vec![committed_txn]);
        assert!(outcome.report.rolled_back.contains(&active_txn));
    }

    #[test]
    fn recovery_is_idempotent_when_rerun() {
        // A crash during recovery: running recovery again over the same
        // durable log must yield the same state (§5.3 last paragraph).
        let (storage, tid, hot, _cold, checkpoint) = setup();
        for (t, order, val) in [(1u64, 1u64, 2i64), (2, 2, 3)] {
            let txn = TxnId(t);
            storage.begin_txn(txn);
            storage
                .apply_update(txn, tid, hot, Row::from_ints(&[1, val]))
                .unwrap();
            storage.set_hot_update_order(txn, order);
        }
        storage.redo().flush_all().unwrap();
        let durable = storage.redo().durable_records();

        let first = recover(&checkpoint, &durable, Duration::ZERO).unwrap();
        let second = recover(&checkpoint, &durable, Duration::ZERO).unwrap();
        let value = |outcome: &RecoveryOutcome| {
            let t = outcome.storage.table(tid).unwrap();
            let rid = t.lookup_pk(1).unwrap();
            outcome
                .storage
                .read_committed(tid, rid)
                .unwrap()
                .unwrap()
                .get_int(1)
        };
        assert_eq!(value(&first), value(&second));
        assert_eq!(first.report.rolled_back, second.report.rolled_back);
    }

    #[test]
    fn replaying_the_same_suffix_twice_is_idempotent() {
        // The same durable suffix concatenated with itself — e.g. an archiver
        // handing recovery an overlapping log segment — must not double-apply
        // versions or double-commit.
        let (storage, tid, hot, _cold, checkpoint) = setup();
        let committed = TxnId(1);
        storage.begin_txn(committed);
        storage
            .apply_update(committed, tid, hot, Row::from_ints(&[1, 7]))
            .unwrap();
        storage.commit_writes(committed, 1, &[(tid, hot)]).unwrap();
        let in_flight = TxnId(2);
        storage.begin_txn(in_flight);
        storage
            .apply_update(in_flight, tid, hot, Row::from_ints(&[1, 9]))
            .unwrap();
        storage.redo().flush_all().unwrap();

        let suffix = storage.redo().durable_records();
        let mut doubled = suffix.clone();
        doubled.extend(suffix.iter().cloned());

        let once = recover(&checkpoint, &suffix, Duration::ZERO).unwrap();
        let twice = recover(&checkpoint, &doubled, Duration::ZERO).unwrap();
        assert_eq!(twice.report.replayed, once.report.replayed);
        assert_eq!(twice.report.duplicate_replays_skipped, once.report.replayed);
        assert_eq!(once.report.committed, twice.report.committed);
        assert_eq!(once.report.rolled_back, twice.report.rolled_back);
        for outcome in [&once, &twice] {
            let t = outcome.storage.table(tid).unwrap();
            let rid = t.lookup_pk(1).unwrap();
            let slot = t.slot(rid).unwrap();
            assert_eq!(
                slot.read()
                    .visible_row(&crate::version::ReadCommitted)
                    .unwrap()
                    .get_int(1),
                Some(7)
            );
            // No stacked duplicates: base + one replayed committed version.
            assert_eq!(slot.read().version_count(), 2);
        }
    }

    #[test]
    fn duplicate_commit_marker_is_applied_once() {
        let (storage, tid, hot, _cold, checkpoint) = setup();
        let txn = TxnId(4);
        storage.begin_txn(txn);
        storage
            .apply_update(txn, tid, hot, Row::from_ints(&[1, 42]))
            .unwrap();
        storage.commit_writes(txn, 9, &[(tid, hot)]).unwrap();
        storage.redo().flush_all().unwrap();
        let mut suffix = storage.redo().durable_records();
        suffix.push(RedoRecord::Commit { txn, trx_no: 9 });

        let outcome = recover(&checkpoint, &suffix, Duration::ZERO).unwrap();
        assert_eq!(outcome.report.committed, vec![txn]);
        assert_eq!(outcome.report.max_trx_no, 9);
        let t = outcome.storage.table(tid).unwrap();
        let rid = t.lookup_pk(1).unwrap();
        assert_eq!(
            outcome
                .storage
                .read_committed(tid, rid)
                .unwrap()
                .unwrap()
                .get_int(1),
            Some(42)
        );
    }

    #[test]
    fn torn_tail_scan_stops_at_last_intact_record() {
        let (storage, tid, hot, _cold, checkpoint) = setup();
        let durable_txn = TxnId(1);
        storage.begin_txn(durable_txn);
        storage
            .apply_update(durable_txn, tid, hot, Row::from_ints(&[1, 5]))
            .unwrap();
        storage
            .commit_writes(durable_txn, 1, &[(tid, hot)])
            .unwrap();
        storage.redo().flush_all().unwrap();
        // Simulate a mid-flush crash image: the durable frames plus a torn
        // record where the next commit marker would have been.
        let mut frames = storage.redo().durable_frames();
        let torn_at = Lsn(storage.redo().latest_lsn().0 + 1);
        frames.push((torn_at, LogFrame::Torn));

        let outcome = recover_frames(&checkpoint, &frames, Duration::ZERO).unwrap();
        assert_eq!(outcome.report.torn_tail, Some(torn_at));
        assert_eq!(outcome.report.committed, vec![durable_txn]);
        assert!(outcome.report.summary().contains("torn tail"));
    }

    #[test]
    fn torn_record_before_the_tail_is_corrupt() {
        let (_storage, _tid, _hot, _cold, checkpoint) = setup();
        let frames = vec![
            (Lsn(1), LogFrame::Torn),
            (
                Lsn(2),
                LogFrame::Intact(RedoRecord::Begin { txn: TxnId(1) }),
            ),
        ];
        let err = recover_frames(&checkpoint, &frames, Duration::ZERO).unwrap_err();
        assert!(matches!(err, Error::CorruptLog { .. }));
    }

    #[test]
    fn empty_log_recovers_checkpoint_exactly() {
        let (_storage, tid, _hot, _cold, checkpoint) = setup();
        let outcome = recover(&checkpoint, &[], Duration::ZERO).unwrap();
        assert_eq!(outcome.report.replayed, 0);
        assert_eq!(outcome.report.summary(), outcome.report.summary());
        let t = outcome.storage.table(tid).unwrap();
        assert_eq!(t.row_count(), 2);
    }
}
