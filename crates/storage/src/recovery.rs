//! Crash recovery.
//!
//! Recovery rebuilds the engine from a [`CheckpointImage`] plus the durable
//! suffix of the redo log, then deals with in-flight transactions:
//!
//! 1. **Replay** — every durable `Insert`/`Update` record is re-applied as an
//!    uncommitted version written by its original transaction, and
//!    `UndoHeader` records restore each transaction's header field
//!    (which may carry a `hot_update_order`, §5.3).
//! 2. **Commit/rollback resolution** — transactions with a durable `Commit`
//!    marker are committed with their original `trx_no`; transactions with a
//!    durable `Rollback` marker are undone.
//! 3. **Active-transaction rollback** — transactions with neither marker are
//!    rolled back *in reverse hot-update order* (transactions without a hot
//!    order are rolled back first), reproducing the paper's single-threaded
//!    sequential rollback.  The rollback order is also reported so the
//!    failure-recovery experiment can verify it.

use crate::storage::{CheckpointImage, Storage};
use crate::undo::UndoHeader;
use crate::wal::RedoRecord;
use std::time::Duration;
use txsql_common::fxhash::{FxHashMap, FxHashSet};
use txsql_common::{Result, Row, TableId, TxnId};

/// Statistics and outcome of a recovery run.
#[derive(Debug)]
pub struct RecoveryOutcome {
    /// The recovered storage engine.
    pub storage: Storage,
    /// Transactions whose commit marker was durable (re-committed).
    pub committed: Vec<TxnId>,
    /// In-flight transactions rolled back during recovery, in the order they
    /// were rolled back (reverse hot-update order).
    pub rolled_back: Vec<TxnId>,
    /// Number of redo records replayed.
    pub replayed: usize,
    /// Hot-update orders recovered from persisted undo headers.
    pub recovered_hot_orders: Vec<(TxnId, u64)>,
}

#[derive(Default)]
struct TxnRecoveryState {
    committed_as: Option<u64>,
    rolled_back: bool,
    header: UndoHeader,
    touched: Vec<(TableId, i64)>,
    last_seq: usize,
}

/// Applies one row image as an uncommitted version written by `txn`,
/// inserting the row if its primary key does not exist yet (it may have been
/// created after the checkpoint).
fn replay_row(storage: &Storage, txn: TxnId, table_id: TableId, pk: i64, row: Row) -> Result<()> {
    let table = storage.table(table_id)?;
    match table.lookup_pk(pk) {
        Ok(record) => {
            let slot = table.slot(record)?;
            slot.write().push_uncommitted(row, txn);
        }
        Err(_) => {
            let record = table.insert_versions(
                pk,
                crate::version::RecordVersions::new_uncommitted(row, txn),
            )?;
            let _ = record;
        }
    }
    Ok(())
}

/// Recovers a storage engine from `checkpoint` and the durable redo suffix.
pub fn recover(
    checkpoint: &CheckpointImage,
    durable_redo: &[RedoRecord],
    fsync_latency: Duration,
) -> Result<RecoveryOutcome> {
    let storage = Storage::from_checkpoint(checkpoint, fsync_latency)?;
    let mut states: FxHashMap<TxnId, TxnRecoveryState> = FxHashMap::default();
    let mut replayed = 0usize;

    // Pass 1: replay physical changes and collect per-transaction metadata.
    for (seq, record) in durable_redo.iter().enumerate() {
        let txn = record.txn();
        let state = states.entry(txn).or_default();
        state.last_seq = seq;
        match record {
            RedoRecord::Begin { .. } => {}
            RedoRecord::Update {
                table, pk, after, ..
            } => {
                replay_row(&storage, txn, *table, *pk, after.clone())?;
                state.touched.push((*table, *pk));
                replayed += 1;
            }
            RedoRecord::Insert { table, pk, row, .. } => {
                replay_row(&storage, txn, *table, *pk, row.clone())?;
                state.touched.push((*table, *pk));
                replayed += 1;
            }
            RedoRecord::UndoHeader { field, .. } => {
                state.header = UndoHeader::from_raw(*field);
            }
            RedoRecord::Commit { trx_no, .. } => {
                state.committed_as = Some(*trx_no);
            }
            RedoRecord::Rollback { .. } => {
                state.rolled_back = true;
            }
        }
    }

    // Pass 2: resolve committed transactions.
    let mut committed = Vec::new();
    for (txn, state) in states.iter() {
        if let Some(trx_no) = state.committed_as {
            for (table_id, pk) in &state.touched {
                let table = storage.table(*table_id)?;
                if let Ok(record) = table.lookup_pk(*pk) {
                    table.slot(record)?.write().commit_writer(*txn, trx_no);
                }
            }
            committed.push(*txn);
        }
    }
    committed.sort_unstable();

    // Pass 3: roll back transactions that did not reach a durable commit —
    // both those with a durable rollback marker and those still active.
    // Order: transactions WITHOUT a recovered hot-update order first (they
    // cannot have stacked uncommitted versions under a hotspot chain), then
    // hotspot transactions in reverse hot-update order (§5.3).
    let mut to_roll_back: Vec<(TxnId, Option<u64>, usize)> = states
        .iter()
        .filter(|(_, s)| s.committed_as.is_none() && !s.touched.is_empty())
        .map(|(txn, s)| (*txn, s.header.hot_update_order(), s.last_seq))
        .collect();
    to_roll_back.sort_by(|a, b| match (a.1, b.1) {
        (None, None) => b.2.cmp(&a.2),
        (None, Some(_)) => std::cmp::Ordering::Less,
        (Some(_), None) => std::cmp::Ordering::Greater,
        (Some(x), Some(y)) => y.cmp(&x),
    });

    let mut rolled_back = Vec::new();
    let mut recovered_hot_orders = Vec::new();
    let mut seen: FxHashSet<TxnId> = FxHashSet::default();
    for (txn, hot_order, _) in to_roll_back {
        if !seen.insert(txn) {
            continue;
        }
        if let Some(order) = hot_order {
            recovered_hot_orders.push((txn, order));
        }
        let state = &states[&txn];
        for (table_id, pk) in state.touched.iter().rev() {
            let table = storage.table(*table_id)?;
            if let Ok(record) = table.lookup_pk(*pk) {
                let slot = table.slot(record)?;
                let mut guard = slot.write();
                guard.rollback_writer(txn);
                // If the insert created the row and nothing committed remains,
                // drop the index entry again.
                if guard.visible_row(&crate::version::ReadCommitted).is_none()
                    && guard.version_count() == 0
                {
                    drop(guard);
                    table.unindex_pk(*pk);
                }
            }
        }
        rolled_back.push(txn);
    }
    recovered_hot_orders.sort_by_key(|(_, order)| std::cmp::Reverse(*order));

    Ok(RecoveryOutcome {
        storage,
        committed,
        rolled_back,
        replayed,
        recovered_hot_orders,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use txsql_common::{RecordId, TableId};

    /// Builds a storage with one table, one hot row (pk=1) and one cold row
    /// (pk=2), returning (storage, table id, hot rid, cold rid, checkpoint).
    fn setup() -> (Storage, TableId, RecordId, RecordId, CheckpointImage) {
        let storage = Storage::default();
        let tid = TableId(1);
        storage.create_table(TableSchema::new(tid, "t", 2)).unwrap();
        let hot = storage.load_row(tid, Row::from_ints(&[1, 1])).unwrap();
        let cold = storage.load_row(tid, Row::from_ints(&[2, 100])).unwrap();
        let checkpoint = storage.checkpoint();
        (storage, tid, hot, cold, checkpoint)
    }

    #[test]
    fn committed_transactions_survive_a_crash() {
        let (storage, tid, hot, _cold, checkpoint) = setup();
        let txn = TxnId(10);
        storage.begin_txn(txn);
        storage
            .apply_update(txn, tid, hot, Row::from_ints(&[1, 2]))
            .unwrap();
        let lsn = storage.commit_writes(txn, 1, &[(tid, hot)]).unwrap();
        storage.redo().flush_to(lsn);

        let outcome = recover(
            &checkpoint,
            &storage.redo().durable_records(),
            Duration::ZERO,
        )
        .unwrap();
        assert_eq!(outcome.committed, vec![txn]);
        assert!(outcome.rolled_back.is_empty());
        let t = outcome.storage.table(tid).unwrap();
        let rid = t.lookup_pk(1).unwrap();
        assert_eq!(
            outcome
                .storage
                .read_committed(tid, rid)
                .unwrap()
                .unwrap()
                .get_int(1),
            Some(2)
        );
    }

    #[test]
    fn unflushed_commit_is_rolled_back() {
        let (storage, tid, hot, _cold, checkpoint) = setup();
        let txn = TxnId(10);
        storage.begin_txn(txn);
        let lsn = storage
            .apply_update(txn, tid, hot, Row::from_ints(&[1, 2]))
            .unwrap();
        storage.redo().flush_to(lsn);
        // Commit marker exists but is NOT flushed.
        storage.commit_writes(txn, 1, &[(tid, hot)]).unwrap();

        let outcome = recover(
            &checkpoint,
            &storage.redo().durable_records(),
            Duration::ZERO,
        )
        .unwrap();
        assert!(outcome.committed.is_empty());
        assert_eq!(outcome.rolled_back, vec![txn]);
        let t = outcome.storage.table(tid).unwrap();
        let rid = t.lookup_pk(1).unwrap();
        assert_eq!(
            outcome
                .storage
                .read_committed(tid, rid)
                .unwrap()
                .unwrap()
                .get_int(1),
            Some(1)
        );
    }

    #[test]
    fn hotspot_transactions_roll_back_in_reverse_hot_order() {
        let (storage, tid, hot, _cold, checkpoint) = setup();
        // Three uncommitted hotspot updates, orders 1,2,3 (paper §4.4 example).
        for (t, order, val) in [(1u64, 1u64, 2i64), (3, 2, 3), (2, 3, 4)] {
            let txn = TxnId(t);
            storage.begin_txn(txn);
            storage
                .apply_update(txn, tid, hot, Row::from_ints(&[1, val]))
                .unwrap();
            storage.set_hot_update_order(txn, order);
        }
        storage.redo().flush_all();

        let outcome = recover(
            &checkpoint,
            &storage.redo().durable_records(),
            Duration::ZERO,
        )
        .unwrap();
        // Reverse hot-update order: order 3 (T2), then order 2 (T3), then order 1 (T1).
        assert_eq!(outcome.rolled_back, vec![TxnId(2), TxnId(3), TxnId(1)]);
        assert_eq!(
            outcome.recovered_hot_orders,
            vec![(TxnId(2), 3), (TxnId(3), 2), (TxnId(1), 1)]
        );
        let t = outcome.storage.table(tid).unwrap();
        let rid = t.lookup_pk(1).unwrap();
        assert_eq!(
            outcome
                .storage
                .read_committed(tid, rid)
                .unwrap()
                .unwrap()
                .get_int(1),
            Some(1)
        );
    }

    #[test]
    fn inserts_after_checkpoint_are_replayed_and_resolved() {
        let (storage, tid, _hot, _cold, checkpoint) = setup();
        let committed_txn = TxnId(5);
        storage.begin_txn(committed_txn);
        let (rid, _) = storage
            .apply_insert(committed_txn, tid, Row::from_ints(&[10, 10]))
            .unwrap();
        let lsn = storage
            .commit_writes(committed_txn, 2, &[(tid, rid)])
            .unwrap();
        storage.redo().flush_to(lsn);

        let active_txn = TxnId(6);
        storage.begin_txn(active_txn);
        storage
            .apply_insert(active_txn, tid, Row::from_ints(&[11, 11]))
            .unwrap();
        storage.redo().flush_all();

        let outcome = recover(
            &checkpoint,
            &storage.redo().durable_records(),
            Duration::ZERO,
        )
        .unwrap();
        let t = outcome.storage.table(tid).unwrap();
        assert!(t.lookup_pk(10).is_ok(), "committed insert must survive");
        assert!(
            t.lookup_pk(11).is_err(),
            "uncommitted insert must be rolled back"
        );
        assert_eq!(outcome.committed, vec![committed_txn]);
        assert!(outcome.rolled_back.contains(&active_txn));
    }

    #[test]
    fn recovery_is_idempotent_when_rerun() {
        // A crash during recovery: running recovery again over the same
        // durable log must yield the same state (§5.3 last paragraph).
        let (storage, tid, hot, _cold, checkpoint) = setup();
        for (t, order, val) in [(1u64, 1u64, 2i64), (2, 2, 3)] {
            let txn = TxnId(t);
            storage.begin_txn(txn);
            storage
                .apply_update(txn, tid, hot, Row::from_ints(&[1, val]))
                .unwrap();
            storage.set_hot_update_order(txn, order);
        }
        storage.redo().flush_all();
        let durable = storage.redo().durable_records();

        let first = recover(&checkpoint, &durable, Duration::ZERO).unwrap();
        let second = recover(&checkpoint, &durable, Duration::ZERO).unwrap();
        let value = |outcome: &RecoveryOutcome| {
            let t = outcome.storage.table(tid).unwrap();
            let rid = t.lookup_pk(1).unwrap();
            outcome
                .storage
                .read_committed(tid, rid)
                .unwrap()
                .unwrap()
                .get_int(1)
        };
        assert_eq!(value(&first), value(&second));
        assert_eq!(first.rolled_back, second.rolled_back);
    }

    #[test]
    fn empty_log_recovers_checkpoint_exactly() {
        let (_storage, tid, _hot, _cold, checkpoint) = setup();
        let outcome = recover(&checkpoint, &[], Duration::ZERO).unwrap();
        assert_eq!(outcome.replayed, 0);
        let t = outcome.storage.table(tid).unwrap();
        assert_eq!(t.row_count(), 2);
    }
}
