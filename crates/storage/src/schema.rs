//! Table schemas.
//!
//! Schemas in this engine are intentionally minimal: a table has a name, a
//! fixed number of columns (column 0 is the integer primary key), and a
//! `rows_per_page` packing factor.  The packing factor matters because the
//! lock manager (`lock_sys`) is sharded by *page*: the more rows share a
//! page, the more unrelated rows contend on the same shard mutex — one of the
//! effects the lightweight-locking optimization (§3.1.1) targets.

use txsql_common::TableId;

/// Default number of records per page.  InnoDB packs on the order of a
/// hundred short rows into a 16 KiB page; we use the same order of magnitude
/// so page-level contention behaves comparably.
pub const DEFAULT_ROWS_PER_PAGE: u16 = 128;

/// Static description of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table identifier; also used as the tablespace id (`space_id`).
    pub id: TableId,
    /// Human-readable name (used in examples and benchmark output).
    pub name: String,
    /// Number of columns, including the primary key column 0.
    pub n_columns: usize,
    /// Records packed into one page.
    pub rows_per_page: u16,
}

impl TableSchema {
    /// Creates a schema with the default page packing.
    pub fn new(id: TableId, name: impl Into<String>, n_columns: usize) -> Self {
        assert!(
            n_columns >= 1,
            "a table needs at least the primary key column"
        );
        Self {
            id,
            name: name.into(),
            n_columns,
            rows_per_page: DEFAULT_ROWS_PER_PAGE,
        }
    }

    /// Overrides the number of rows per page (used by tests that want to force
    /// many or few rows to share a lock-manager shard).
    pub fn with_rows_per_page(mut self, rows_per_page: u16) -> Self {
        assert!(rows_per_page > 0, "rows_per_page must be positive");
        self.rows_per_page = rows_per_page;
        self
    }

    /// The tablespace id used in record identifiers for this table.
    pub fn space_id(&self) -> u32 {
        self.id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_defaults() {
        let s = TableSchema::new(TableId(3), "sbtest", 4);
        assert_eq!(s.space_id(), 3);
        assert_eq!(s.rows_per_page, DEFAULT_ROWS_PER_PAGE);
        assert_eq!(s.name, "sbtest");
    }

    #[test]
    fn rows_per_page_override() {
        let s = TableSchema::new(TableId(1), "t", 2).with_rows_per_page(1);
        assert_eq!(s.rows_per_page, 1);
    }

    #[test]
    #[should_panic(expected = "at least the primary key")]
    fn zero_columns_rejected() {
        let _ = TableSchema::new(TableId(1), "t", 0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rows_per_page_rejected() {
        let _ = TableSchema::new(TableId(1), "t", 1).with_rows_per_page(0);
    }
}
