//! Undo log: per-transaction undo segments.
//!
//! Each transaction owns an [`UndoSegment`] containing the before-images of
//! the rows it modified plus an [`UndoHeader`].  The header reproduces the
//! paper's recovery trick (§5.3): InnoDB's `TRX_UNDO_TRX_NO` field normally
//! stores the commit sequence number (`trx_no`), but while a hotspot
//! transaction is uncommitted that field is unused — so TXSQL repurposes it,
//! setting the top bit to 1 and storing the `hot_update_order` there.  After
//! a crash, recovery reads the field back and, when the top bit is set, uses
//! the hot-update order to roll back uncommitted hotspot transactions in the
//! correct (reverse) order.

use parking_lot::Mutex;
use txsql_common::fxhash::FxHashMap;
use txsql_common::{RecordId, Row, TableId, TxnId};

/// Top bit of the `TRX_UNDO_TRX_NO` field: set → the value is a
/// `hot_update_order`, clear → the value is a commit `trx_no` (§5.3).
pub const HOT_UPDATE_ORDER_FLAG: u64 = 1 << 63;

/// The undo segment header (the repurposed `TRX_UNDO_TRX_NO` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UndoHeader {
    field: u64,
}

impl UndoHeader {
    /// An empty header (neither a trx_no nor a hot_update_order recorded yet).
    pub const fn empty() -> Self {
        Self { field: 0 }
    }

    /// Encodes a commit sequence number.
    pub fn with_trx_no(trx_no: u64) -> Self {
        assert!(
            trx_no & HOT_UPDATE_ORDER_FLAG == 0,
            "trx_no overflows the header field"
        );
        Self { field: trx_no }
    }

    /// Encodes a hot update order (top bit set).
    pub fn with_hot_update_order(order: u64) -> Self {
        assert!(
            order & HOT_UPDATE_ORDER_FLAG == 0,
            "hot_update_order overflows the header field"
        );
        Self {
            field: order | HOT_UPDATE_ORDER_FLAG,
        }
    }

    /// The raw field value as persisted in the redo log.
    pub fn raw(&self) -> u64 {
        self.field
    }

    /// Rebuilds a header from its persisted raw value.
    pub fn from_raw(field: u64) -> Self {
        Self { field }
    }

    /// Returns the hot update order if the field currently encodes one.
    pub fn hot_update_order(&self) -> Option<u64> {
        if self.field & HOT_UPDATE_ORDER_FLAG != 0 {
            Some(self.field & !HOT_UPDATE_ORDER_FLAG)
        } else {
            None
        }
    }

    /// Returns the commit sequence number if the field currently encodes one.
    pub fn trx_no(&self) -> Option<u64> {
        if self.field != 0 && self.field & HOT_UPDATE_ORDER_FLAG == 0 {
            Some(self.field)
        } else {
            None
        }
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.field == 0
    }
}

/// What a single undo record reverses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UndoRecord {
    /// An update: restore `before` at `record`.
    Update {
        /// Table the row belongs to.
        table: TableId,
        /// The updated record.
        record: RecordId,
        /// Row image before the update.
        before: Row,
    },
    /// An insert: remove the row (unindex `pk`) at `record`.
    Insert {
        /// Table the row belongs to.
        table: TableId,
        /// The inserted record.
        record: RecordId,
        /// Primary key to unindex on rollback.
        pk: i64,
    },
    /// A delete: restore the row (tombstone removal).
    Delete {
        /// Table the row belongs to.
        table: TableId,
        /// The deleted record.
        record: RecordId,
        /// Row image before the delete.
        before: Row,
    },
}

impl UndoRecord {
    /// The record this undo entry refers to.
    pub fn record(&self) -> RecordId {
        match self {
            UndoRecord::Update { record, .. }
            | UndoRecord::Insert { record, .. }
            | UndoRecord::Delete { record, .. } => *record,
        }
    }
}

/// A transaction's undo segment.
#[derive(Debug, Clone, Default)]
pub struct UndoSegment {
    /// The (repurposed) undo header.
    pub header: UndoHeader,
    /// Undo records in the order the operations were performed.
    pub records: Vec<UndoRecord>,
}

impl UndoSegment {
    /// Number of undo records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no operations have been logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates undo records in rollback order (reverse of execution).
    pub fn rollback_order(&self) -> impl Iterator<Item = &UndoRecord> {
        self.records.iter().rev()
    }
}

/// The undo log: all active transactions' undo segments.
#[derive(Debug, Default)]
pub struct UndoLog {
    segments: Mutex<FxHashMap<TxnId, UndoSegment>>,
}

impl UndoLog {
    /// Creates an empty undo log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a transaction (idempotent).
    pub fn register(&self, txn: TxnId) {
        self.segments.lock().entry(txn).or_default();
    }

    /// Appends an undo record for `txn`.
    pub fn push(&self, txn: TxnId, record: UndoRecord) {
        self.segments
            .lock()
            .entry(txn)
            .or_default()
            .records
            .push(record);
    }

    /// Sets the undo header field for `txn`.
    pub fn set_header(&self, txn: TxnId, header: UndoHeader) {
        self.segments.lock().entry(txn).or_default().header = header;
    }

    /// Reads the undo header for `txn`.
    pub fn header(&self, txn: TxnId) -> UndoHeader {
        self.segments
            .lock()
            .get(&txn)
            .map(|s| s.header)
            .unwrap_or_default()
    }

    /// Number of undo records accumulated by `txn`.
    pub fn segment_len(&self, txn: TxnId) -> usize {
        self.segments.lock().get(&txn).map(|s| s.len()).unwrap_or(0)
    }

    /// Removes and returns the segment for `txn` (at commit or after rollback).
    pub fn take(&self, txn: TxnId) -> Option<UndoSegment> {
        self.segments.lock().remove(&txn)
    }

    /// Clones the segment for `txn` without removing it (rollback needs to
    /// read the records while the transaction is still considered active).
    pub fn snapshot(&self, txn: TxnId) -> Option<UndoSegment> {
        self.segments.lock().get(&txn).cloned()
    }

    /// Transactions that currently own an undo segment.
    pub fn active_transactions(&self) -> Vec<TxnId> {
        self.segments.lock().keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips_trx_no_and_hot_order() {
        let commit = UndoHeader::with_trx_no(42);
        assert_eq!(commit.trx_no(), Some(42));
        assert_eq!(commit.hot_update_order(), None);
        let hot = UndoHeader::with_hot_update_order(7);
        assert_eq!(hot.hot_update_order(), Some(7));
        assert_eq!(hot.trx_no(), None);
        // Raw persistence round trip (what the redo log stores).
        assert_eq!(UndoHeader::from_raw(hot.raw()), hot);
        assert_eq!(UndoHeader::from_raw(commit.raw()), commit);
        assert!(UndoHeader::empty().is_empty());
    }

    #[test]
    fn effective_periods_do_not_overlap() {
        // §5.3: the same field stores hot_update_order while uncommitted and
        // trx_no after commit; the top bit disambiguates.
        let hot = UndoHeader::with_hot_update_order(99);
        let committed = UndoHeader::with_trx_no(99);
        assert_ne!(hot.raw(), committed.raw());
        assert!(hot.raw() & HOT_UPDATE_ORDER_FLAG != 0);
        assert!(committed.raw() & HOT_UPDATE_ORDER_FLAG == 0);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn oversized_trx_no_rejected() {
        let _ = UndoHeader::with_trx_no(HOT_UPDATE_ORDER_FLAG);
    }

    #[test]
    fn undo_log_accumulates_and_takes_segments() {
        let log = UndoLog::new();
        let txn = TxnId(5);
        log.register(txn);
        log.push(
            txn,
            UndoRecord::Update {
                table: TableId(1),
                record: RecordId::new(1, 0, 0),
                before: Row::from_ints(&[1, 10]),
            },
        );
        log.push(
            txn,
            UndoRecord::Insert {
                table: TableId(1),
                record: RecordId::new(1, 0, 1),
                pk: 2,
            },
        );
        log.set_header(txn, UndoHeader::with_hot_update_order(3));
        assert_eq!(log.segment_len(txn), 2);
        assert_eq!(log.header(txn).hot_update_order(), Some(3));
        assert_eq!(log.active_transactions(), vec![txn]);

        let seg = log.take(txn).unwrap();
        assert_eq!(seg.len(), 2);
        // Rollback order is reverse execution order.
        let first_rollback = seg.rollback_order().next().unwrap();
        assert!(matches!(first_rollback, UndoRecord::Insert { pk: 2, .. }));
        assert!(log.take(txn).is_none());
        assert_eq!(log.segment_len(txn), 0);
    }

    #[test]
    fn snapshot_does_not_remove_segment() {
        let log = UndoLog::new();
        let txn = TxnId(1);
        log.push(
            txn,
            UndoRecord::Delete {
                table: TableId(2),
                record: RecordId::new(2, 0, 0),
                before: Row::from_ints(&[9]),
            },
        );
        let snap = log.snapshot(txn).unwrap();
        assert_eq!(snap.len(), 1);
        assert_eq!(log.segment_len(txn), 1);
    }

    #[test]
    fn undo_record_exposes_its_record_id() {
        let r = RecordId::new(4, 5, 6);
        let rec = UndoRecord::Update {
            table: TableId(4),
            record: r,
            before: Row::default(),
        };
        assert_eq!(rec.record(), r);
    }
}
