//! Pages and heap records.
//!
//! A [`Page`] is a fixed-capacity array of record slots; the slot index is
//! the `heap_no` of the paper's `<space_id, page_no, heap_no>` addressing.
//! Each slot holds the record's MVCC version chain behind its own
//! `parking_lot::RwLock` so that physical access (latching) is independent of
//! the *logical* row locks managed by `txsql-lockmgr` — the same separation
//! InnoDB makes between page latches and record locks.

use crate::version::RecordVersions;
use parking_lot::RwLock;
use std::sync::Arc;
use txsql_common::{HeapNo, PageNo, SpaceId};

/// A heap record slot: the version chain behind a latch.
pub type RecordSlot = Arc<RwLock<RecordVersions>>;

/// A fixed-capacity page of record slots.
#[derive(Debug)]
pub struct Page {
    space_id: SpaceId,
    page_no: PageNo,
    capacity: u16,
    slots: Vec<RecordSlot>,
}

impl Page {
    /// Creates an empty page.
    pub fn new(space_id: SpaceId, page_no: PageNo, capacity: u16) -> Self {
        assert!(capacity > 0, "page capacity must be positive");
        Self {
            space_id,
            page_no,
            capacity,
            slots: Vec::new(),
        }
    }

    /// The page's tablespace.
    pub fn space_id(&self) -> SpaceId {
        self.space_id
    }

    /// The page number within its tablespace.
    pub fn page_no(&self) -> PageNo {
        self.page_no
    }

    /// Number of allocated slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no slot is allocated yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// True when no more records fit on this page.
    pub fn is_full(&self) -> bool {
        self.slots.len() >= self.capacity as usize
    }

    /// Allocates the next slot for `versions`, returning its `heap_no`, or
    /// `None` if the page is full.
    pub fn allocate(&mut self, versions: RecordVersions) -> Option<HeapNo> {
        if self.is_full() {
            return None;
        }
        let heap_no = self.slots.len() as HeapNo;
        self.slots.push(Arc::new(RwLock::new(versions)));
        Some(heap_no)
    }

    /// Returns the slot at `heap_no`.
    pub fn slot(&self, heap_no: HeapNo) -> Option<&RecordSlot> {
        self.slots.get(heap_no as usize)
    }

    /// Iterates over `(heap_no, slot)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (HeapNo, &RecordSlot)> {
        self.slots.iter().enumerate().map(|(i, s)| (i as HeapNo, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txsql_common::Row;

    #[test]
    fn allocation_assigns_sequential_heap_numbers() {
        let mut page = Page::new(1, 0, 4);
        for expected in 0..4u16 {
            let heap_no = page.allocate(RecordVersions::new_committed(Row::from_ints(&[
                expected as i64
            ])));
            assert_eq!(heap_no, Some(expected));
        }
        assert!(page.is_full());
        assert_eq!(page.allocate(RecordVersions::default()), None);
        assert_eq!(page.len(), 4);
    }

    #[test]
    fn slots_are_individually_lockable() {
        let mut page = Page::new(1, 0, 2);
        page.allocate(RecordVersions::new_committed(Row::from_ints(&[1, 10])));
        page.allocate(RecordVersions::new_committed(Row::from_ints(&[2, 20])));
        let s0 = page.slot(0).unwrap();
        let s1 = page.slot(1).unwrap();
        // Holding a write latch on slot 0 must not block reading slot 1.
        let _w = s0.write();
        let r = s1.read();
        assert_eq!(r.latest_row().unwrap().get_int(1), Some(20));
    }

    #[test]
    fn missing_slot_returns_none() {
        let page = Page::new(1, 0, 2);
        assert!(page.slot(0).is_none());
        assert!(page.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_page_rejected() {
        let _ = Page::new(1, 0, 0);
    }

    #[test]
    fn iter_visits_all_slots_in_order() {
        let mut page = Page::new(3, 7, 8);
        for i in 0..5 {
            page.allocate(RecordVersions::new_committed(Row::from_ints(&[i])));
        }
        let heap_nos: Vec<_> = page.iter().map(|(h, _)| h).collect();
        assert_eq!(heap_nos, vec![0, 1, 2, 3, 4]);
        assert_eq!(page.space_id(), 3);
        assert_eq!(page.page_no(), 7);
    }
}
