//! # txsql-storage
//!
//! An in-memory, InnoDB-like storage engine substrate for the TXSQL
//! reproduction.
//!
//! The paper's optimizations live in the lock manager and transaction
//! manager, but they only make sense on top of a storage engine that has the
//! same moving parts as InnoDB:
//!
//! * rows addressed by `<space_id, page_no, heap_no>` and organised in pages
//!   ([`heap`]),
//! * tables with a primary-key index ([`schema`], [`table`]),
//! * MVCC version chains so snapshot reads never block ([`version`]),
//! * per-transaction undo segments whose *header* can carry either the commit
//!   sequence number or the `hot_update_order` (paper §5.3) ([`undo`]),
//! * a redo log / WAL with an explicit durability horizon so crashes can be
//!   simulated ([`wal`]),
//! * crash-fault injection that kills the simulated process at named crash
//!   points from a seeded plan ([`fault`]),
//! * and crash recovery that replays the durable redo suffix (scan-stopping
//!   at a torn tail) and rolls back uncommitted transactions in the correct
//!   (hotspot-aware) order ([`recovery`]).
//!
//! The [`Storage`] facade ties these together and is what the transaction
//! layer (`txsql-txn`, `txsql-core`) talks to.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod fault;
pub mod heap;
pub mod recovery;
pub mod schema;
pub mod storage;
pub mod table;
pub mod undo;
pub mod version;
pub mod wal;

pub use fault::{CrashPoint, FaultInjector, FaultPlan};
pub use schema::TableSchema;
pub use storage::Storage;
pub use table::Table;
pub use undo::{UndoHeader, UndoRecord, UndoSegment};
pub use version::{RecordVersions, Version, VisibilityJudge};
pub use wal::{LogFrame, RedoLog, RedoRecord};
