//! Redo log (write-ahead log) with an explicit durability horizon.
//!
//! The log is the engine's only "disk".  Appending is cheap and in-memory;
//! durability is modelled by [`RedoLog::flush_to`], which advances the
//! durable LSN after paying the configured fsync latency.  A simulated crash
//! ([`RedoLog::durable_records`]) keeps only what was flushed — everything
//! the paper's failure-recovery experiment (§6.4.6) needs.
//!
//! The commit pipeline in `txsql-core` writes three kinds of records per
//! transaction: its row changes (physical redo, including uncommitted ones),
//! its undo-header updates (so `hot_update_order` survives a crash, §5.3) and
//! a final `Commit`/`Rollback` marker.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use txsql_common::latency::simulate_delay;
use txsql_common::{Lsn, RecordId, Row, TableId, TxnId};

/// One redo log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RedoRecord {
    /// Transaction start marker.
    Begin {
        /// The starting transaction.
        txn: TxnId,
    },
    /// A row update (physical redo of the after-image).
    Update {
        /// Writing transaction.
        txn: TxnId,
        /// Table of the row.
        table: TableId,
        /// The updated record.
        record: RecordId,
        /// Primary key of the row (so recovery can rebuild the index).
        pk: i64,
        /// After-image.
        after: Row,
    },
    /// A row insert.
    Insert {
        /// Writing transaction.
        txn: TxnId,
        /// Table of the row.
        table: TableId,
        /// Allocated record id.
        record: RecordId,
        /// Primary key.
        pk: i64,
        /// Inserted row.
        row: Row,
    },
    /// The undo header field for `txn` changed (carries the raw
    /// `TRX_UNDO_TRX_NO` field, which may encode a `hot_update_order`).
    UndoHeader {
        /// Owning transaction.
        txn: TxnId,
        /// Raw header field (see [`crate::undo::UndoHeader`]).
        field: u64,
    },
    /// Commit marker with the commit sequence number.
    Commit {
        /// Committing transaction.
        txn: TxnId,
        /// Commit sequence number (`trx_no`).
        trx_no: u64,
    },
    /// Rollback marker (the transaction's changes must be undone if replayed).
    Rollback {
        /// Rolled-back transaction.
        txn: TxnId,
    },
}

impl RedoRecord {
    /// The transaction this record belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            RedoRecord::Begin { txn }
            | RedoRecord::Update { txn, .. }
            | RedoRecord::Insert { txn, .. }
            | RedoRecord::UndoHeader { txn, .. }
            | RedoRecord::Commit { txn, .. }
            | RedoRecord::Rollback { txn } => *txn,
        }
    }
}

/// The redo log.
#[derive(Debug)]
pub struct RedoLog {
    records: Mutex<Vec<(Lsn, RedoRecord)>>,
    next_lsn: AtomicU64,
    durable_lsn: AtomicU64,
    fsync_latency: Duration,
    fsync_count: AtomicU64,
}

impl Default for RedoLog {
    fn default() -> Self {
        Self::new(Duration::ZERO)
    }
}

impl RedoLog {
    /// Creates an empty log whose flushes cost `fsync_latency`.
    pub fn new(fsync_latency: Duration) -> Self {
        Self {
            records: Mutex::new(Vec::new()),
            next_lsn: AtomicU64::new(1),
            durable_lsn: AtomicU64::new(0),
            fsync_latency,
            fsync_count: AtomicU64::new(0),
        }
    }

    /// Appends a record, returning its LSN.  The record is *not* durable
    /// until a flush covers its LSN.
    pub fn append(&self, record: RedoRecord) -> Lsn {
        let lsn = Lsn(self.next_lsn.fetch_add(1, Ordering::Relaxed));
        self.records.lock().push((lsn, record));
        lsn
    }

    /// Highest LSN ever assigned.
    pub fn latest_lsn(&self) -> Lsn {
        Lsn(self.next_lsn.load(Ordering::Relaxed).saturating_sub(1))
    }

    /// Highest durable LSN.
    pub fn durable_lsn(&self) -> Lsn {
        Lsn(self.durable_lsn.load(Ordering::Relaxed))
    }

    /// Number of fsyncs performed (group commit reduces this; Figure 13).
    pub fn fsync_count(&self) -> u64 {
        self.fsync_count.load(Ordering::Relaxed)
    }

    /// Makes everything up to `lsn` durable.  Pays one fsync latency if there
    /// is anything new to flush; callers batching multiple transactions behind
    /// one flush is exactly the group-commit optimization.
    pub fn flush_to(&self, lsn: Lsn) {
        let current = self.durable_lsn.load(Ordering::Acquire);
        if lsn.0 <= current {
            return;
        }
        simulate_delay(self.fsync_latency);
        self.fsync_count.fetch_add(1, Ordering::Relaxed);
        self.durable_lsn.fetch_max(lsn.0, Ordering::AcqRel);
    }

    /// Flushes everything appended so far.
    pub fn flush_all(&self) {
        self.flush_to(self.latest_lsn());
    }

    /// Records that survive a crash: everything with `lsn <= durable_lsn`.
    pub fn durable_records(&self) -> Vec<RedoRecord> {
        let durable = self.durable_lsn();
        self.records
            .lock()
            .iter()
            .filter(|(lsn, _)| *lsn <= durable)
            .map(|(_, r)| r.clone())
            .collect()
    }

    /// All records regardless of durability (used by replication, which ships
    /// from the in-memory log buffer, and by tests).
    pub fn all_records(&self) -> Vec<RedoRecord> {
        self.records.lock().iter().map(|(_, r)| r.clone()).collect()
    }

    /// Total number of appended records.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(txn: u64, pk: i64, val: i64) -> RedoRecord {
        RedoRecord::Update {
            txn: TxnId(txn),
            table: TableId(1),
            record: RecordId::new(1, 0, pk as u16),
            pk,
            after: Row::from_ints(&[pk, val]),
        }
    }

    #[test]
    fn lsns_are_monotonic() {
        let log = RedoLog::default();
        let a = log.append(RedoRecord::Begin { txn: TxnId(1) });
        let b = log.append(upd(1, 0, 5));
        assert!(b > a);
        assert_eq!(log.latest_lsn(), b);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn unflushed_records_do_not_survive_a_crash() {
        let log = RedoLog::default();
        log.append(upd(1, 0, 5));
        let flushed_up_to = log.append(RedoRecord::Commit {
            txn: TxnId(1),
            trx_no: 1,
        });
        log.flush_to(flushed_up_to);
        log.append(upd(2, 0, 6)); // never flushed
        let survived = log.durable_records();
        assert_eq!(survived.len(), 2);
        assert!(matches!(
            survived.last().unwrap(),
            RedoRecord::Commit { .. }
        ));
        assert_eq!(log.all_records().len(), 3);
    }

    #[test]
    fn flush_is_idempotent_and_monotonic() {
        let log = RedoLog::default();
        let lsn = log.append(upd(1, 0, 1));
        log.flush_to(lsn);
        let count = log.fsync_count();
        log.flush_to(lsn); // no new data: no extra fsync
        log.flush_to(Lsn(0));
        assert_eq!(log.fsync_count(), count);
        assert_eq!(log.durable_lsn(), lsn);
    }

    #[test]
    fn group_flush_covers_multiple_transactions_with_one_fsync() {
        let log = RedoLog::default();
        for t in 1..=10u64 {
            log.append(upd(t, 0, t as i64));
            log.append(RedoRecord::Commit {
                txn: TxnId(t),
                trx_no: t,
            });
        }
        log.flush_all();
        assert_eq!(log.fsync_count(), 1);
        assert_eq!(log.durable_records().len(), 20);
    }

    #[test]
    fn record_txn_accessor() {
        assert_eq!(RedoRecord::Rollback { txn: TxnId(3) }.txn(), TxnId(3));
        assert_eq!(upd(9, 1, 1).txn(), TxnId(9));
    }
}
