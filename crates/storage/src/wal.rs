//! Redo log (write-ahead log) with an explicit durability horizon.
//!
//! The log is the engine's only "disk".  Appending is cheap and in-memory;
//! durability is modelled by [`RedoLog::flush_to`], which advances the
//! durable LSN after paying the configured fsync latency.  A simulated crash
//! ([`RedoLog::durable_records`]) keeps only what was flushed — everything
//! the paper's failure-recovery experiment (§6.4.6) needs.
//!
//! The commit pipeline in `txsql-core` writes three kinds of records per
//! transaction: its row changes (physical redo, including uncommitted ones),
//! its undo-header updates (so `hot_update_order` survives a crash, §5.3) and
//! a final `Commit`/`Rollback` marker.
//!
//! # Durability contract
//!
//! Flushers are serialized behind a flush latch: when [`RedoLog::flush_to`]
//! returns `Ok(())`, every record at or below the requested LSN has been
//! covered by a *completed* fsync.  The durable horizon only ever advances
//! after the fsync that covers it finishes — there is no window in which a
//! caller can observe `durable_lsn >= lsn` while the covering fsync is still
//! in flight on another thread.
//!
//! # Crash model
//!
//! A [`crate::fault::FaultInjector`] can kill the simulated process at named
//! crash points.  Once crashed, the durable horizon is frozen (the crash
//! image): appends are swallowed, flushes fail with [`Error::Crashed`], and
//! [`RedoLog::durable_frames`] returns exactly what a restarted process would
//! read back — possibly ending in a [`LogFrame::Torn`] frame when a
//! mid-flush crash cut the durable suffix inside a flush batch.

use crate::fault::{CrashPoint, FaultInjector, FsyncFault};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txsql_common::latency::simulate_delay;
use txsql_common::{Error, Lsn, RecordId, Result, Row, TableId, TxnId};

/// How many times a transiently failing fsync is retried (with backoff)
/// before the engine degrades to read-only.
pub const MAX_FSYNC_RETRIES: u64 = 3;

/// One redo log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RedoRecord {
    /// Transaction start marker.
    Begin {
        /// The starting transaction.
        txn: TxnId,
    },
    /// A row update (physical redo of the after-image).
    Update {
        /// Writing transaction.
        txn: TxnId,
        /// Table of the row.
        table: TableId,
        /// The updated record.
        record: RecordId,
        /// Primary key of the row (so recovery can rebuild the index).
        pk: i64,
        /// After-image.
        after: Row,
    },
    /// A row insert.
    Insert {
        /// Writing transaction.
        txn: TxnId,
        /// Table of the row.
        table: TableId,
        /// Allocated record id.
        record: RecordId,
        /// Primary key.
        pk: i64,
        /// Inserted row.
        row: Row,
    },
    /// The undo header field for `txn` changed (carries the raw
    /// `TRX_UNDO_TRX_NO` field, which may encode a `hot_update_order`).
    UndoHeader {
        /// Owning transaction.
        txn: TxnId,
        /// Raw header field (see [`crate::undo::UndoHeader`]).
        field: u64,
    },
    /// Commit marker with the commit sequence number.
    Commit {
        /// Committing transaction.
        txn: TxnId,
        /// Commit sequence number (`trx_no`).
        trx_no: u64,
    },
    /// Rollback marker (the transaction's changes must be undone if replayed).
    Rollback {
        /// Rolled-back transaction.
        txn: TxnId,
    },
}

impl RedoRecord {
    /// The transaction this record belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            RedoRecord::Begin { txn }
            | RedoRecord::Update { txn, .. }
            | RedoRecord::Insert { txn, .. }
            | RedoRecord::UndoHeader { txn, .. }
            | RedoRecord::Commit { txn, .. }
            | RedoRecord::Rollback { txn } => *txn,
        }
    }
}

/// One frame of the durable log suffix, as a restarted process reads it back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogFrame {
    /// A fully durable record.
    Intact(RedoRecord),
    /// A torn record: a mid-flush crash cut the durable suffix here.  Recovery
    /// scan-stops at the last intact record (see [`crate::recovery`]).
    Torn,
}

/// The redo log.
#[derive(Debug)]
pub struct RedoLog {
    records: Mutex<Vec<(Lsn, RedoRecord)>>,
    next_lsn: AtomicU64,
    durable_lsn: AtomicU64,
    /// LSN of the torn record a mid-flush crash left behind (0 = none).
    torn_lsn: AtomicU64,
    /// Serializes flushers: `flush_to` returning `Ok` means the covering
    /// fsync *completed* (the durability contract, see the module docs).
    flush_lock: Mutex<()>,
    fsync_latency: Duration,
    fsync_count: AtomicU64,
    faults: Arc<FaultInjector>,
}

impl Default for RedoLog {
    fn default() -> Self {
        Self::new(Duration::ZERO)
    }
}

impl RedoLog {
    /// Creates an empty log whose flushes cost `fsync_latency` and that never
    /// experiences injected faults.
    pub fn new(fsync_latency: Duration) -> Self {
        Self::with_faults(fsync_latency, FaultInjector::disabled())
    }

    /// Creates an empty log wired to a fault injector.
    pub fn with_faults(fsync_latency: Duration, faults: Arc<FaultInjector>) -> Self {
        Self {
            records: Mutex::new(Vec::new()),
            next_lsn: AtomicU64::new(1),
            durable_lsn: AtomicU64::new(0),
            torn_lsn: AtomicU64::new(0),
            flush_lock: Mutex::new(()),
            fsync_latency,
            fsync_count: AtomicU64::new(0),
            faults,
        }
    }

    /// The fault injector this log reports to.
    pub fn faults(&self) -> &Arc<FaultInjector> {
        &self.faults
    }

    /// Appends a record, returning its LSN.  The record is *not* durable
    /// until a flush covers its LSN.  After an injected crash the append is
    /// swallowed (the process is dead; nothing reaches the log buffer).
    pub fn append(&self, record: RedoRecord) -> Lsn {
        let lsn = Lsn(self.next_lsn.fetch_add(1, Ordering::Relaxed));
        if self.faults.crashed() {
            return lsn;
        }
        self.records.lock().push((lsn, record));
        lsn
    }

    /// Registers a hit of `point` and surfaces the injected crash (or an
    /// earlier crash / read-only degradation) as an error.  Called by the
    /// storage write paths at their named crash points.
    pub fn crash_point(&self, point: CrashPoint) -> Result<()> {
        if self.faults.hit(point) {
            return Err(Error::Crashed {
                point: point.name(),
            });
        }
        self.faults.check_writable()
    }

    /// Highest LSN ever assigned.
    pub fn latest_lsn(&self) -> Lsn {
        Lsn(self.next_lsn.load(Ordering::Relaxed).saturating_sub(1))
    }

    /// Highest durable LSN.
    pub fn durable_lsn(&self) -> Lsn {
        Lsn(self.durable_lsn.load(Ordering::Relaxed))
    }

    /// LSN of the torn record a mid-flush crash left behind, if any.
    pub fn torn_lsn(&self) -> Option<Lsn> {
        match self.torn_lsn.load(Ordering::Acquire) {
            0 => None,
            lsn => Some(Lsn(lsn)),
        }
    }

    /// Number of fsyncs performed (group commit reduces this; Figure 13).
    pub fn fsync_count(&self) -> u64 {
        self.fsync_count.load(Ordering::Relaxed)
    }

    /// Makes everything up to `lsn` durable.  Pays one fsync latency if there
    /// is anything new to flush; callers batching multiple transactions behind
    /// one flush is exactly the group-commit optimization.
    ///
    /// Flushers are serialized: `Ok(())` means the fsync covering `lsn` has
    /// *completed*.  Transient injected fsync errors are retried up to
    /// [`MAX_FSYNC_RETRIES`] times with backoff; persistent ones (or an
    /// exhausted budget) degrade the engine to read-only.  An injected
    /// mid-flush crash cuts the durable suffix inside this flush batch and
    /// leaves a torn record behind.
    pub fn flush_to(&self, lsn: Lsn) -> Result<()> {
        // Safe unlatched fast path: the durable horizon only advances after a
        // *completed* fsync, so observing `durable >= lsn` here really does
        // mean the data is on disk.
        if lsn.0 <= self.durable_lsn.load(Ordering::Acquire) {
            return Ok(());
        }
        let _flusher = self.flush_lock.lock();
        self.faults.check_writable()?;
        // Re-check under the latch: the previous flusher may have covered us
        // (group commit), in which case we owe no extra fsync.
        if lsn.0 <= self.durable_lsn.load(Ordering::Acquire) {
            return Ok(());
        }
        let mut retries = 0;
        loop {
            let fault = self.faults.fsync_attempt();
            if self.faults.crashed() {
                // A plan may crash *at* an injected fsync error.
                return Err(Error::Crashed {
                    point: CrashPoint::FsyncError.name(),
                });
            }
            match fault {
                FsyncFault::Ok => break,
                FsyncFault::Transient => {
                    if retries >= MAX_FSYNC_RETRIES {
                        self.faults.degrade_read_only();
                        return Err(Error::ReadOnly {
                            reason: "fsync retry budget exhausted",
                        });
                    }
                    retries += 1;
                    self.faults.note_fsync_retry();
                    // Bounded backoff before the next attempt.
                    simulate_delay(self.fsync_latency);
                }
                FsyncFault::Persistent => {
                    self.faults.degrade_read_only();
                    return Err(Error::ReadOnly {
                        reason: "fsync failed persistently",
                    });
                }
            }
        }
        simulate_delay(self.fsync_latency);
        if self.faults.hit(CrashPoint::MidFlush) {
            // The crash landed inside this flush batch: the durable horizon
            // advances only part-way to the target and the first record past
            // it becomes the torn tail a restarted process reads back.
            let current = self.durable_lsn.load(Ordering::Acquire);
            let cut = lsn
                .0
                .saturating_sub(self.faults.torn_cut_back())
                .max(current);
            self.durable_lsn.store(cut, Ordering::Release);
            let torn = {
                let records = self.records.lock();
                records
                    .iter()
                    .filter(|(l, _)| l.0 > cut)
                    .map(|(l, _)| l.0)
                    .min()
            };
            if let Some(torn) = torn {
                self.torn_lsn.store(torn, Ordering::Release);
            }
            return Err(Error::Crashed {
                point: CrashPoint::MidFlush.name(),
            });
        }
        if self.faults.crashed() {
            // The process died (at some other crash point) while our fsync
            // was in flight: the durable horizon is frozen at the crash
            // image and this flush must not be acknowledged.
            return Err(Error::Crashed { point: "crashed" });
        }
        self.fsync_count.fetch_add(1, Ordering::Relaxed);
        self.durable_lsn.fetch_max(lsn.0, Ordering::AcqRel);
        Ok(())
    }

    /// Flushes everything appended so far.
    pub fn flush_all(&self) -> Result<()> {
        self.flush_to(self.latest_lsn())
    }

    /// Drops every record with `lsn <= min(lsn, durable_lsn)` from the log
    /// buffer (checkpoint truncation).  Never removes an un-flushed record.
    /// Returns the number of records removed.
    pub fn truncate_to(&self, lsn: Lsn) -> u64 {
        let limit = lsn.0.min(self.durable_lsn.load(Ordering::Acquire));
        let mut records = self.records.lock();
        let before = records.len();
        records.retain(|(l, _)| l.0 > limit);
        (before - records.len()) as u64
    }

    /// Records that survive a crash: everything with `lsn <= durable_lsn`,
    /// in LSN order.
    pub fn durable_records(&self) -> Vec<RedoRecord> {
        self.durable_frames()
            .into_iter()
            .filter_map(|(_, frame)| match frame {
                LogFrame::Intact(record) => Some(record),
                LogFrame::Torn => None,
            })
            .collect()
    }

    /// The durable log suffix exactly as a restarted process reads it back:
    /// intact records in LSN order, optionally followed by a single
    /// [`LogFrame::Torn`] frame when a mid-flush crash cut the suffix.
    pub fn durable_frames(&self) -> Vec<(Lsn, LogFrame)> {
        let durable = self.durable_lsn();
        let mut frames: Vec<(Lsn, LogFrame)> = self
            .records
            .lock()
            .iter()
            .filter(|(lsn, _)| *lsn <= durable)
            .map(|(lsn, record)| (*lsn, LogFrame::Intact(record.clone())))
            .collect();
        frames.sort_by_key(|(lsn, _)| *lsn);
        if let Some(torn) = self.torn_lsn() {
            frames.push((torn, LogFrame::Torn));
        }
        frames
    }

    /// All records regardless of durability (used by replication, which ships
    /// from the in-memory log buffer, and by tests), in LSN order.
    pub fn all_records(&self) -> Vec<RedoRecord> {
        let mut records: Vec<(Lsn, RedoRecord)> = self.records.lock().clone();
        records.sort_by_key(|(lsn, _)| *lsn);
        records.into_iter().map(|(_, r)| r).collect()
    }

    /// Total number of appended records.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn upd(txn: u64, pk: i64, val: i64) -> RedoRecord {
        RedoRecord::Update {
            txn: TxnId(txn),
            table: TableId(1),
            record: RecordId::new(1, 0, pk as u16),
            pk,
            after: Row::from_ints(&[pk, val]),
        }
    }

    #[test]
    fn lsns_are_monotonic() {
        let log = RedoLog::default();
        let a = log.append(RedoRecord::Begin { txn: TxnId(1) });
        let b = log.append(upd(1, 0, 5));
        assert!(b > a);
        assert_eq!(log.latest_lsn(), b);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn unflushed_records_do_not_survive_a_crash() {
        let log = RedoLog::default();
        log.append(upd(1, 0, 5));
        let flushed_up_to = log.append(RedoRecord::Commit {
            txn: TxnId(1),
            trx_no: 1,
        });
        log.flush_to(flushed_up_to).unwrap();
        log.append(upd(2, 0, 6)); // never flushed
        let survived = log.durable_records();
        assert_eq!(survived.len(), 2);
        assert!(matches!(
            survived.last().unwrap(),
            RedoRecord::Commit { .. }
        ));
        assert_eq!(log.all_records().len(), 3);
    }

    #[test]
    fn flush_is_idempotent_and_monotonic() {
        let log = RedoLog::default();
        let lsn = log.append(upd(1, 0, 1));
        log.flush_to(lsn).unwrap();
        let count = log.fsync_count();
        log.flush_to(lsn).unwrap(); // no new data: no extra fsync
        log.flush_to(Lsn(0)).unwrap();
        assert_eq!(log.fsync_count(), count);
        assert_eq!(log.durable_lsn(), lsn);
    }

    #[test]
    fn group_flush_covers_multiple_transactions_with_one_fsync() {
        let log = RedoLog::default();
        for t in 1..=10u64 {
            log.append(upd(t, 0, t as i64));
            log.append(RedoRecord::Commit {
                txn: TxnId(t),
                trx_no: t,
            });
        }
        log.flush_all().unwrap();
        assert_eq!(log.fsync_count(), 1);
        assert_eq!(log.durable_records().len(), 20);
    }

    #[test]
    fn record_txn_accessor() {
        assert_eq!(RedoRecord::Rollback { txn: TxnId(3) }.txn(), TxnId(3));
        assert_eq!(upd(9, 1, 1).txn(), TxnId(9));
    }

    #[test]
    fn mid_flush_crash_leaves_a_torn_tail() {
        let plan = FaultPlan::none()
            .crash_at(CrashPoint::MidFlush, 1)
            .with_torn_cut_back(1);
        let log = RedoLog::with_faults(Duration::ZERO, FaultInjector::new(plan));
        for t in 1..=3u64 {
            log.append(upd(t, 0, t as i64));
        }
        let target = log.latest_lsn();
        let err = log.flush_to(target).unwrap_err();
        assert!(matches!(err, Error::Crashed { point: "mid_flush" }));
        // The durable horizon stopped one record short of the flush target
        // and the record past it is the torn tail.
        assert_eq!(log.durable_lsn(), Lsn(target.0 - 1));
        assert_eq!(log.torn_lsn(), Some(target));
        let frames = log.durable_frames();
        assert_eq!(frames.len(), 3);
        assert!(matches!(frames.last().unwrap().1, LogFrame::Torn));
        assert_eq!(log.durable_records().len(), 2);
        // The dead process swallows further appends and rejects flushes.
        log.append(upd(9, 0, 9));
        assert_eq!(log.len(), 3);
        assert!(log.flush_all().is_err());
        assert_eq!(log.durable_lsn(), Lsn(target.0 - 1));
    }

    #[test]
    fn transient_fsync_errors_are_retried_with_backoff() {
        let plan = FaultPlan::none().with_transient_fsync_errors(2);
        let log = RedoLog::with_faults(Duration::ZERO, FaultInjector::new(plan));
        let lsn = log.append(upd(1, 0, 1));
        log.flush_to(lsn).unwrap();
        assert_eq!(log.durable_lsn(), lsn);
        assert_eq!(log.fsync_count(), 1);
    }

    #[test]
    fn persistent_fsync_failure_degrades_to_read_only() {
        let plan = FaultPlan::none().with_persistent_fsync_failure();
        let log = RedoLog::with_faults(Duration::ZERO, FaultInjector::new(plan));
        let lsn = log.append(upd(1, 0, 1));
        let err = log.flush_to(lsn).unwrap_err();
        assert!(matches!(err, Error::ReadOnly { .. }));
        assert!(log.faults().is_read_only());
        assert_eq!(log.durable_lsn(), Lsn(0));
        // Every subsequent flush fails fast without touching the horizon.
        assert!(matches!(
            log.flush_to(lsn).unwrap_err(),
            Error::ReadOnly { .. }
        ));
    }

    #[test]
    fn exhausted_transient_budget_degrades_to_read_only() {
        let plan = FaultPlan::none().with_transient_fsync_errors(MAX_FSYNC_RETRIES + 5);
        let log = RedoLog::with_faults(Duration::ZERO, FaultInjector::new(plan));
        let lsn = log.append(upd(1, 0, 1));
        let err = log.flush_to(lsn).unwrap_err();
        assert!(matches!(err, Error::ReadOnly { .. }));
    }

    #[test]
    fn truncate_never_removes_unflushed_records() {
        let log = RedoLog::default();
        let a = log.append(upd(1, 0, 1));
        log.append(upd(2, 0, 2));
        let c = log.append(upd(3, 0, 3));
        log.flush_to(a).unwrap();
        // Asking to truncate past the durable horizon is clamped to it.
        let removed = log.truncate_to(c);
        assert_eq!(removed, 1);
        assert_eq!(log.len(), 2);
        log.flush_all().unwrap();
        assert_eq!(log.truncate_to(c), 2);
        assert!(log.is_empty());
    }

    #[test]
    fn pre_append_crash_point_fires_and_pins_the_log() {
        let plan = FaultPlan::none().crash_at(CrashPoint::PreAppend, 2);
        let log = RedoLog::with_faults(Duration::ZERO, FaultInjector::new(plan));
        log.crash_point(CrashPoint::PreAppend).unwrap();
        let lsn = log.append(upd(1, 0, 1));
        log.flush_to(lsn).unwrap();
        let err = log.crash_point(CrashPoint::PreAppend).unwrap_err();
        assert!(matches!(
            err,
            Error::Crashed {
                point: "pre_append"
            }
        ));
        // Everything durable before the crash is preserved, nothing after.
        assert_eq!(log.durable_records().len(), 1);
        assert!(log.crash_point(CrashPoint::PostAppendPreFlush).is_err());
    }
}
