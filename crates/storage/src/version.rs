//! MVCC version chains.
//!
//! Every heap record owns a chain of [`Version`]s, newest first.  The newest
//! version is the "current" row an updater sees; older versions are what
//! snapshot readers reconstruct through their read view, exactly like
//! InnoDB's undo-based row versions.
//!
//! Two properties of the chain are load-bearing for the paper's protocols:
//!
//! * **Uncommitted stacking.** Group locking (§3.3) and Bamboo both allow a
//!   transaction to update a row whose newest version is still uncommitted.
//!   The chain therefore may contain several uncommitted versions, each from
//!   a different writer, stacked in update order.
//! * **Reverse-order rollback.** The rollback-order guarantee (§4.4) means a
//!   transaction only ever rolls back when its versions are the newest ones
//!   on the chain, so rollback is "pop from the front", and cascading aborts
//!   pop deeper prefixes.

use txsql_common::{Row, TxnId};

/// One version of a row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Version {
    /// The row image this version represents.
    pub row: Row,
    /// Transaction that wrote this version.
    pub writer: TxnId,
    /// Commit sequence number (`trx_no`) assigned when the writer committed;
    /// `None` while the writer is still active (or was rolled back and the
    /// version removed).
    pub commit_no: Option<u64>,
}

impl Version {
    /// True once the writing transaction has committed.
    pub fn is_committed(&self) -> bool {
        self.commit_no.is_some()
    }
}

/// Decides whether a row version is visible to a reader.
///
/// Implemented by the read views in `txsql-txn`: the classic *copying*
/// active-transaction-list view and the paper's *copy-free* `del_ts` view
/// (§3.1.2) both reduce to this question at the storage layer.
pub trait VisibilityJudge {
    /// Should a version written by `writer` (committed with `commit_no`, or
    /// uncommitted if `None`) be visible to this reader?
    fn is_visible(&self, writer: TxnId, commit_no: Option<u64>) -> bool;
}

/// A visibility judge that sees only committed data (READ COMMITTED snapshot
/// taken "now"), used for bulk loads, administrative scans and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReadCommitted;

impl VisibilityJudge for ReadCommitted {
    fn is_visible(&self, _writer: TxnId, commit_no: Option<u64>) -> bool {
        commit_no.is_some()
    }
}

/// The full version chain of one heap record.
#[derive(Debug, Clone, Default)]
pub struct RecordVersions {
    /// Versions, newest first.  Index 0 is the current row.
    versions: Vec<Version>,
    /// Tombstone flag for deleted records.
    deleted: bool,
}

impl RecordVersions {
    /// Creates a chain with a single, already-committed base version (bulk
    /// load path — the loader behaves like a transaction that committed with
    /// `commit_no = 0`).
    pub fn new_committed(row: Row) -> Self {
        Self {
            versions: vec![Version {
                row,
                writer: TxnId::INVALID,
                commit_no: Some(0),
            }],
            deleted: false,
        }
    }

    /// Creates a chain whose base version was written by `writer` and is not
    /// yet committed (transactional insert path).
    pub fn new_uncommitted(row: Row, writer: TxnId) -> Self {
        Self {
            versions: vec![Version {
                row,
                writer,
                commit_no: None,
            }],
            deleted: false,
        }
    }

    /// The newest version (the one an updater operates on).
    pub fn latest(&self) -> Option<&Version> {
        self.versions.first()
    }

    /// The newest row image, cloned.
    pub fn latest_row(&self) -> Option<Row> {
        self.versions.first().map(|v| v.row.clone())
    }

    /// Writer of the newest version.
    pub fn latest_writer(&self) -> Option<TxnId> {
        self.versions.first().map(|v| v.writer)
    }

    /// True when the newest version is not yet committed.
    pub fn has_uncommitted_head(&self) -> bool {
        self.versions
            .first()
            .map(|v| !v.is_committed())
            .unwrap_or(false)
    }

    /// Number of versions currently retained.
    pub fn version_count(&self) -> usize {
        self.versions.len()
    }

    /// True when the record has been deleted (tombstoned).
    pub fn is_deleted(&self) -> bool {
        self.deleted
    }

    /// Marks the record deleted / undeleted.
    pub fn set_deleted(&mut self, deleted: bool) {
        self.deleted = deleted;
    }

    /// Pushes a new uncommitted version written by `writer`.
    ///
    /// Group locking and Bamboo may push onto an uncommitted head; plain 2PL
    /// only pushes onto committed heads because the row lock serialises
    /// writers across commit.
    pub fn push_uncommitted(&mut self, row: Row, writer: TxnId) {
        self.versions.insert(
            0,
            Version {
                row,
                writer,
                commit_no: None,
            },
        );
    }

    /// Marks every version written by `writer` as committed with `commit_no`.
    /// Returns the number of versions committed.
    pub fn commit_writer(&mut self, writer: TxnId, commit_no: u64) -> usize {
        let mut n = 0;
        for v in &mut self.versions {
            if v.writer == writer && v.commit_no.is_none() {
                v.commit_no = Some(commit_no);
                n += 1;
            }
        }
        n
    }

    /// Removes the uncommitted versions written by `writer`.
    ///
    /// Returns the number of versions removed.
    ///
    /// Group locking rolls writers back strictly in reverse update order (the
    /// dependency list enforces it), so in that protocol the removed versions
    /// are always the newest ones.  Bamboo's cascading aborts may transiently
    /// remove a version from the middle of the uncommitted prefix; the
    /// remaining dirty versions above it belong to transactions that are
    /// themselves doomed to cascade, so the final state is still correct.
    pub fn rollback_writer(&mut self, writer: TxnId) -> usize {
        let before = self.versions.len();
        self.versions
            .retain(|v| !(v.writer == writer && v.commit_no.is_none()));
        before - self.versions.len()
    }

    /// Returns the newest version visible to `judge`, walking the chain from
    /// newest to oldest (the MVCC read path).
    pub fn visible_row<J: VisibilityJudge>(&self, judge: &J) -> Option<Row> {
        if self.deleted {
            return None;
        }
        self.versions
            .iter()
            .find(|v| judge.is_visible(v.writer, v.commit_no))
            .map(|v| v.row.clone())
    }

    /// Drops committed versions older than the newest committed one, keeping
    /// the chain short (a stand-in for purge; called opportunistically by the
    /// engine).  Uncommitted versions are never purged.
    pub fn purge_old_committed(&mut self) -> usize {
        let Some(first_committed) = self.versions.iter().position(|v| v.is_committed()) else {
            return 0;
        };
        let before = self.versions.len();
        self.versions.truncate(first_committed + 1);
        before - self.versions.len()
    }

    /// Iterates over versions, newest first (used by the serializability
    /// checker and tests).
    pub fn iter(&self) -> std::slice::Iter<'_, Version> {
        self.versions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: i64) -> Row {
        Row::from_ints(&[1, v])
    }

    #[test]
    fn committed_base_is_visible_to_read_committed() {
        let chain = RecordVersions::new_committed(row(10));
        assert_eq!(
            chain.visible_row(&ReadCommitted).unwrap().get_int(1),
            Some(10)
        );
        assert!(!chain.has_uncommitted_head());
    }

    #[test]
    fn uncommitted_head_hidden_from_read_committed() {
        let mut chain = RecordVersions::new_committed(row(10));
        chain.push_uncommitted(row(20), TxnId(5));
        assert!(chain.has_uncommitted_head());
        assert_eq!(chain.latest_row().unwrap().get_int(1), Some(20));
        // Snapshot readers still see the committed value.
        assert_eq!(
            chain.visible_row(&ReadCommitted).unwrap().get_int(1),
            Some(10)
        );
    }

    #[test]
    fn commit_makes_version_visible() {
        let mut chain = RecordVersions::new_committed(row(10));
        chain.push_uncommitted(row(20), TxnId(5));
        assert_eq!(chain.commit_writer(TxnId(5), 7), 1);
        assert_eq!(
            chain.visible_row(&ReadCommitted).unwrap().get_int(1),
            Some(20)
        );
    }

    #[test]
    fn rollback_removes_only_writers_versions() {
        let mut chain = RecordVersions::new_committed(row(10));
        chain.push_uncommitted(row(20), TxnId(5));
        assert_eq!(chain.rollback_writer(TxnId(5)), 1);
        assert_eq!(chain.latest_row().unwrap().get_int(1), Some(10));
        assert_eq!(chain.version_count(), 1);
        // Rolling back a writer with no versions is a no-op.
        assert_eq!(chain.rollback_writer(TxnId(9)), 0);
    }

    #[test]
    fn group_locking_style_stacked_uncommitted_versions() {
        // T1, T3, T2 update the hot row in that order without committing
        // (the cascade example in §4.4 of the paper).
        let mut chain = RecordVersions::new_committed(row(1));
        chain.push_uncommitted(row(2), TxnId(1));
        chain.push_uncommitted(row(3), TxnId(3));
        chain.push_uncommitted(row(4), TxnId(2));
        assert_eq!(chain.version_count(), 4);
        assert_eq!(chain.latest_row().unwrap().get_int(1), Some(4));
        // Rollback in reverse update order: T2, then T3, then T1.
        chain.rollback_writer(TxnId(2));
        assert_eq!(chain.latest_row().unwrap().get_int(1), Some(3));
        chain.rollback_writer(TxnId(3));
        assert_eq!(chain.latest_row().unwrap().get_int(1), Some(2));
        chain.rollback_writer(TxnId(1));
        assert_eq!(chain.latest_row().unwrap().get_int(1), Some(1));
    }

    #[test]
    fn purge_keeps_newest_committed_and_uncommitted() {
        let mut chain = RecordVersions::new_committed(row(1));
        for i in 0..5u64 {
            chain.push_uncommitted(row(10 + i as i64), TxnId(i + 1));
            chain.commit_writer(TxnId(i + 1), i + 1);
        }
        chain.push_uncommitted(row(99), TxnId(42));
        let purged = chain.purge_old_committed();
        assert!(purged > 0);
        // One uncommitted head + one committed version remain.
        assert_eq!(chain.version_count(), 2);
        assert_eq!(chain.latest_row().unwrap().get_int(1), Some(99));
        assert_eq!(
            chain.visible_row(&ReadCommitted).unwrap().get_int(1),
            Some(14)
        );
    }

    #[test]
    fn deleted_records_are_invisible() {
        let mut chain = RecordVersions::new_committed(row(1));
        chain.set_deleted(true);
        assert!(chain.is_deleted());
        assert!(chain.visible_row(&ReadCommitted).is_none());
    }

    #[test]
    fn transactional_insert_starts_uncommitted() {
        let chain = RecordVersions::new_uncommitted(row(5), TxnId(9));
        assert!(chain.has_uncommitted_head());
        assert!(chain.visible_row(&ReadCommitted).is_none());
        assert_eq!(chain.latest_writer(), Some(TxnId(9)));
    }
}
