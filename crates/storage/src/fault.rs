//! Crash-fault injection for the storage layer.
//!
//! A [`FaultInjector`] is threaded into [`crate::wal::RedoLog`] and
//! [`crate::Storage`] and fires at *named crash points* according to a seeded
//! [`FaultPlan`]:
//!
//! * [`CrashPoint::PreAppend`] — the process dies before a redo record is
//!   appended (the record is lost entirely);
//! * [`CrashPoint::PostAppendPreFlush`] — the record reached the in-memory
//!   log buffer but the durability horizon is frozen before any flush covers
//!   it;
//! * [`CrashPoint::MidFlush`] — the crash lands *inside* a flush batch: the
//!   durable horizon advances only part-way through the batch and the first
//!   record past it becomes a **torn tail** (recovery scan-stops there, see
//!   [`crate::recovery`]);
//! * [`CrashPoint::FsyncError`] — fired once per *injected fsync error*;
//!   transient errors are retried with bounded backoff, persistent ones
//!   degrade the engine to read-only instead of panicking;
//! * [`CrashPoint::Checkpoint`] — the crash lands between publishing a new
//!   checkpoint image and truncating the log behind it;
//! * [`CrashPoint::PreBinlogShip`] / [`CrashPoint::PostShipPreAck`] /
//!   [`CrashPoint::PostAck`] — the crash lands inside the commit→binlog
//!   pipeline: after the redo flush but before the batch is shipped to the
//!   replicas, between shipping and collecting the semi-sync acknowledgement,
//!   or after the ack quorum was met but before the client is answered.  The
//!   commit is already durable in redo at all three points, so recovery must
//!   preserve it even though the client never saw an `Ok`.
//!
//! A crash is modelled as "the process died": once the injector is crashed,
//! the redo log's durable horizon is frozen (the crash image), writes return
//! [`Error::Crashed`] and the only legitimate continuation is
//! `Database::restart_from_crash` in `txsql-core`.  Every `hit` is also a
//! deterministic-scheduler yield point, so `txsql-sim` seed exploration
//! interleaves crashes with commits, handovers and group-commit batches.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use txsql_common::metrics::EngineMetrics;
use txsql_common::{Error, Result};

/// A named site where an injected crash may fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Before a redo record is appended (the record is dropped).
    PreAppend,
    /// After a redo record is appended, before any flush covers it.
    PostAppendPreFlush,
    /// Inside a flush batch (produces a torn tail).
    MidFlush,
    /// At an injected fsync error (fires once per injected error).
    FsyncError,
    /// Between publishing a checkpoint image and truncating the log.
    Checkpoint,
    /// After the redo flush, before the batch is shipped to the binlog hooks.
    PreBinlogShip,
    /// After the batch was shipped to the replicas, before the ack quorum.
    PostShipPreAck,
    /// After the ack quorum was met, before the client acknowledgement.
    PostAck,
}

impl CrashPoint {
    /// All crash points, in declaration order (seeded plans cycle these).
    pub const ALL: [CrashPoint; 8] = [
        CrashPoint::PreAppend,
        CrashPoint::PostAppendPreFlush,
        CrashPoint::MidFlush,
        CrashPoint::FsyncError,
        CrashPoint::Checkpoint,
        CrashPoint::PreBinlogShip,
        CrashPoint::PostShipPreAck,
        CrashPoint::PostAck,
    ];

    /// Stable name used in [`Error::Crashed`] and logs.
    pub fn name(&self) -> &'static str {
        match self {
            CrashPoint::PreAppend => "pre_append",
            CrashPoint::PostAppendPreFlush => "post_append_pre_flush",
            CrashPoint::MidFlush => "mid_flush",
            CrashPoint::FsyncError => "fsync_error",
            CrashPoint::Checkpoint => "checkpoint",
            CrashPoint::PreBinlogShip => "pre_binlog_ship",
            CrashPoint::PostShipPreAck => "post_ship_pre_ack",
            CrashPoint::PostAck => "post_ack",
        }
    }

    fn index(&self) -> usize {
        match self {
            CrashPoint::PreAppend => 0,
            CrashPoint::PostAppendPreFlush => 1,
            CrashPoint::MidFlush => 2,
            CrashPoint::FsyncError => 3,
            CrashPoint::Checkpoint => 4,
            CrashPoint::PreBinlogShip => 5,
            CrashPoint::PostShipPreAck => 6,
            CrashPoint::PostAck => 7,
        }
    }
}

/// What a plan injects: at most one crash plus optional fsync errors.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Crash at the `n`-th hit of a crash point (1-based), if set.
    crash: Option<(CrashPoint, u64)>,
    /// How many records a [`CrashPoint::MidFlush`] crash cuts back from the
    /// flush target (1 = the batch's last record becomes the torn tail).
    torn_cut_back: u64,
    /// Number of fsync attempts that fail transiently before succeeding.
    fsync_transient_errors: u64,
    /// After the transient budget, every fsync fails (degrades to read-only).
    fsync_fail_persistently: bool,
}

impl FaultPlan {
    /// A plan that injects nothing (equivalent to running without faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// Crash at the `nth_hit`-th (1-based) hit of `point`.
    pub fn crash_at(mut self, point: CrashPoint, nth_hit: u64) -> Self {
        self.crash = Some((point, nth_hit.max(1)));
        self
    }

    /// Sets how many records a mid-flush crash cuts back from the target.
    pub fn with_torn_cut_back(mut self, records: u64) -> Self {
        self.torn_cut_back = records;
        self
    }

    /// Injects `n` transient fsync errors (each retried with backoff).
    pub fn with_transient_fsync_errors(mut self, n: u64) -> Self {
        self.fsync_transient_errors = n;
        self
    }

    /// Makes every fsync after the transient budget fail persistently.
    pub fn with_persistent_fsync_failure(mut self) -> Self {
        self.fsync_fail_persistently = true;
        self
    }

    /// The planned crash site and 1-based hit count, if any — exposed so
    /// exploration harnesses can assert per-crash-point coverage.
    pub fn crash_target(&self) -> Option<(CrashPoint, u64)> {
        self.crash
    }

    /// True when the plan injects anything at all.
    pub fn is_active(&self) -> bool {
        self.crash.is_some() || self.fsync_transient_errors > 0 || self.fsync_fail_persistently
    }

    /// Derives a deterministic plan from an exploration seed: the seed picks
    /// the crash point, how many hits to let pass first, the torn-tail cut
    /// depth and whether transient fsync errors precede the crash.  Every
    /// point in [`CrashPoint::ALL`] except `FsyncError` is covered by
    /// `seed % 4`; `FsyncError` crashes are driven by the seeds that also
    /// inject fsync errors.
    pub fn seeded(seed: u64) -> Self {
        let point = match seed % 4 {
            0 => CrashPoint::PreAppend,
            1 => CrashPoint::PostAppendPreFlush,
            2 => CrashPoint::MidFlush,
            _ => CrashPoint::Checkpoint,
        };
        // Let between 1 and 12 hits pass so crashes land at different depths
        // of the workload (mid-commit, mid-handover, mid-batch).
        let nth_hit = 1 + (seed / 4) % 12;
        let mut plan = FaultPlan::none()
            .crash_at(point, nth_hit)
            .with_torn_cut_back(1 + seed % 3);
        if seed.is_multiple_of(5) {
            // Exercise the bounded-retry path under exploration too; two
            // transient errors stay under the retry budget so the flush
            // still succeeds.
            plan = plan.with_transient_fsync_errors(2);
        }
        plan
    }

    /// Derives a deterministic plan targeting the commit→binlog pipeline
    /// crash points: `seed % 4` picks `pre_binlog_ship`, `post_ship_pre_ack`,
    /// `post_ack` or *no* primary crash (those seeds explore replica-side
    /// faults alone), and `seed / 4` picks how many hits pass first.  Used by
    /// the replication recovery oracle (`sim_replication.rs`).
    pub fn seeded_binlog(seed: u64) -> Self {
        let point = match seed % 4 {
            0 => CrashPoint::PreBinlogShip,
            1 => CrashPoint::PostShipPreAck,
            2 => CrashPoint::PostAck,
            _ => return FaultPlan::none(),
        };
        let nth_hit = 1 + (seed / 4) % 6;
        FaultPlan::none().crash_at(point, nth_hit)
    }
}

/// Outcome of one simulated fsync attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncFault {
    /// The fsync succeeds.
    Ok,
    /// The fsync fails transiently (retry after backoff).
    Transient,
    /// The fsync fails persistently (degrade to read-only).
    Persistent,
}

/// Runtime state of an injected fault plan; shared by the redo log, the
/// storage facade and the engine.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Fast path: false = no plan, every check short-circuits.
    active: bool,
    hits: [AtomicU64; CrashPoint::ALL.len()],
    fsync_attempts: AtomicU64,
    crashed: AtomicBool,
    read_only: AtomicBool,
    metrics: Option<Arc<EngineMetrics>>,
}

impl FaultInjector {
    /// An injector that never fires (the default for engines without a plan).
    pub fn disabled() -> Arc<Self> {
        Self::new(FaultPlan::none())
    }

    /// Creates an injector for `plan`.
    pub fn new(plan: FaultPlan) -> Arc<Self> {
        Self::build(plan, None)
    }

    /// Creates an injector whose firings are counted in `metrics`
    /// (`crash_injected`, `fsync_retries`).
    pub fn with_metrics(plan: FaultPlan, metrics: Arc<EngineMetrics>) -> Arc<Self> {
        Self::build(plan, Some(metrics))
    }

    fn build(plan: FaultPlan, metrics: Option<Arc<EngineMetrics>>) -> Arc<Self> {
        let active = plan.is_active();
        Arc::new(Self {
            plan,
            active,
            hits: std::array::from_fn(|_| AtomicU64::new(0)),
            fsync_attempts: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            read_only: AtomicBool::new(false),
            metrics,
        })
    }

    /// The plan this injector runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True when the injector can fire at all.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// True once an injected crash fired: the simulated process is dead and
    /// the durable redo suffix is frozen.
    pub fn crashed(&self) -> bool {
        self.active && self.crashed.load(Ordering::Acquire)
    }

    /// True once the engine degraded to read-only (persistent fsync failure).
    pub fn is_read_only(&self) -> bool {
        self.active && self.read_only.load(Ordering::Acquire)
    }

    /// Degrades the engine to read-only (writes rejected, reads fine).
    pub fn degrade_read_only(&self) {
        self.read_only.store(true, Ordering::Release);
    }

    /// Errors when the engine can no longer accept writes (crashed or
    /// read-only); the cheap guard every storage write path starts with.
    pub fn check_writable(&self) -> Result<()> {
        if !self.active {
            return Ok(());
        }
        if self.crashed.load(Ordering::Acquire) {
            return Err(Error::Crashed { point: "crashed" });
        }
        if self.read_only.load(Ordering::Acquire) {
            return Err(Error::ReadOnly {
                reason: "fsync failed persistently",
            });
        }
        Ok(())
    }

    /// Registers one hit of `point`: a deterministic-scheduler yield point,
    /// and the trigger check for the plan's crash.  Returns `true` when the
    /// crash fires at this hit (the caller freezes its durable state and
    /// surfaces [`Error::Crashed`]).
    pub fn hit(&self, point: CrashPoint) -> bool {
        if !self.active || self.crashed.load(Ordering::Acquire) {
            return false;
        }
        // Make every crash point a schedule point so seed exploration can
        // interleave the crash with commits, handovers and flush batches.
        // Fault points tag the global Fault resource: they conflict with
        // everything, so crash placement is never pruned by the POR filter.
        if let Some(handle) = txsql_sim::current() {
            handle.yield_at(txsql_sim::Resource::global(txsql_sim::ResourceKind::Fault));
        }
        let n = self.hits[point.index()].fetch_add(1, Ordering::AcqRel) + 1;
        match self.plan.crash {
            Some((p, at)) if p == point && n == at => {
                self.crashed.store(true, Ordering::Release);
                if let Some(metrics) = &self.metrics {
                    metrics.crash_injected.inc();
                }
                true
            }
            _ => false,
        }
    }

    /// Simulates one fsync attempt, consuming the plan's error budget.  The
    /// caller retries transient faults with backoff (counted via
    /// [`FaultInjector::note_fsync_retry`]) and degrades on persistent ones.
    /// An injected error also registers a [`CrashPoint::FsyncError`] hit, so
    /// a plan may crash *at* the n-th fsync error.
    pub fn fsync_attempt(&self) -> FsyncFault {
        if !self.active {
            return FsyncFault::Ok;
        }
        let n = self.fsync_attempts.fetch_add(1, Ordering::AcqRel) + 1;
        if n <= self.plan.fsync_transient_errors {
            self.hit(CrashPoint::FsyncError);
            FsyncFault::Transient
        } else if self.plan.fsync_fail_persistently {
            self.hit(CrashPoint::FsyncError);
            FsyncFault::Persistent
        } else {
            FsyncFault::Ok
        }
    }

    /// Counts one retried fsync (metrics observability).
    pub fn note_fsync_retry(&self) {
        if let Some(metrics) = &self.metrics {
            metrics.fsync_retries.inc();
        }
    }

    /// How many records a mid-flush crash cuts back from its flush target.
    pub fn torn_cut_back(&self) -> u64 {
        self.plan.torn_cut_back.max(1)
    }

    /// Number of hits `point` has registered so far.
    pub fn hits_of(&self, point: CrashPoint) -> u64 {
        self.hits[point.index()].load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires() {
        let inj = FaultInjector::disabled();
        assert!(!inj.is_active());
        for point in CrashPoint::ALL {
            assert!(!inj.hit(point));
        }
        assert!(!inj.crashed());
        assert_eq!(inj.fsync_attempt(), FsyncFault::Ok);
        assert!(inj.check_writable().is_ok());
    }

    #[test]
    fn crash_fires_at_the_configured_hit() {
        let inj = FaultInjector::new(FaultPlan::none().crash_at(CrashPoint::PreAppend, 3));
        assert!(!inj.hit(CrashPoint::PreAppend));
        assert!(!inj.hit(CrashPoint::MidFlush), "other points don't trigger");
        assert!(!inj.hit(CrashPoint::PreAppend));
        assert!(inj.hit(CrashPoint::PreAppend), "third hit fires");
        assert!(inj.crashed());
        // A dead process never fires again, and writes are rejected.
        assert!(!inj.hit(CrashPoint::PreAppend));
        assert!(matches!(inj.check_writable(), Err(Error::Crashed { .. })));
    }

    #[test]
    fn fsync_budget_transient_then_persistent() {
        let inj = FaultInjector::new(
            FaultPlan::none()
                .with_transient_fsync_errors(2)
                .with_persistent_fsync_failure(),
        );
        assert_eq!(inj.fsync_attempt(), FsyncFault::Transient);
        assert_eq!(inj.fsync_attempt(), FsyncFault::Transient);
        assert_eq!(inj.fsync_attempt(), FsyncFault::Persistent);
        assert_eq!(inj.hits_of(CrashPoint::FsyncError), 3);
        inj.degrade_read_only();
        assert!(matches!(inj.check_writable(), Err(Error::ReadOnly { .. })));
    }

    #[test]
    fn seeded_plans_cover_every_crash_point() {
        let mut points_seen = std::collections::HashSet::new();
        for seed in 0..16u64 {
            let plan = FaultPlan::seeded(seed);
            assert!(plan.is_active());
            if let Some((point, at)) = plan.crash {
                assert!(at >= 1);
                points_seen.insert(point.name());
            }
        }
        assert!(points_seen.contains("pre_append"));
        assert!(points_seen.contains("post_append_pre_flush"));
        assert!(points_seen.contains("mid_flush"));
        assert!(points_seen.contains("checkpoint"));
    }

    #[test]
    fn crash_point_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            CrashPoint::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), CrashPoint::ALL.len());
    }
}
