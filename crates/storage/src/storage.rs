//! The storage facade used by the transaction layer.
//!
//! [`Storage`] owns the tables, the redo log and the undo log, and exposes the
//! transactional primitives the concurrency-control protocols in `txsql-core`
//! are built from:
//!
//! * `apply_update` / `apply_insert` — write an uncommitted version, record
//!   its undo entry and append physical redo;
//! * `commit_writes` — stamp the versions with a commit sequence number and
//!   append the commit marker;
//! * `rollback_writes` — restore before-images from undo and append the
//!   rollback marker;
//! * `set_hot_update_order` — persist the hot-update order in the undo header
//!   (and redo) so crash recovery can order hotspot rollbacks (§5.3);
//! * `checkpoint` — capture the committed state, the starting point for the
//!   failure-recovery experiment (§6.4.6).

use crate::fault::{CrashPoint, FaultInjector};
use crate::schema::TableSchema;
use crate::table::Table;
use crate::undo::{UndoHeader, UndoLog, UndoRecord, UndoSegment};
use crate::version::{ReadCommitted, RecordVersions, VisibilityJudge};
use crate::wal::{RedoLog, RedoRecord};
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;
use std::time::Duration;
use txsql_common::fxhash::FxHashMap;
use txsql_common::{Error, Lsn, RecordId, Result, Row, TableId, TxnId};

/// A consistent image of the committed data, used as the recovery baseline.
#[derive(Debug, Clone)]
pub struct CheckpointImage {
    /// LSN up to which the checkpoint reflects the log.
    pub lsn: Lsn,
    /// Every table's schema and its committed rows.
    pub tables: Vec<(TableSchema, Vec<Row>)>,
}

/// The storage engine facade.
#[derive(Debug)]
pub struct Storage {
    tables: RwLock<FxHashMap<TableId, Arc<Table>>>,
    redo: RedoLog,
    undo: UndoLog,
    faults: Arc<FaultInjector>,
    /// First redo LSN of every active (unfinished) transaction; checkpoint
    /// truncation must never cut past the oldest of these.
    first_lsn: Mutex<FxHashMap<TxnId, Lsn>>,
    /// Serialises commit *application* against checkpoint *capture*:
    /// `commit_writes` stamps a transaction's versions committed slot by
    /// slot, and a capture scanning rows in between would publish an image
    /// reflecting half a commit — unrecoverable once truncation drops the
    /// transaction's records.  Committers share the read side (they are
    /// already serialised per slot); the capture takes the write side.
    apply_latch: RwLock<()>,
}

impl Default for Storage {
    fn default() -> Self {
        Self::new(Duration::ZERO)
    }
}

impl Storage {
    /// Creates an empty storage engine whose redo flushes cost
    /// `fsync_latency` and that never experiences injected faults.
    pub fn new(fsync_latency: Duration) -> Self {
        Self::with_faults(fsync_latency, FaultInjector::disabled())
    }

    /// Creates an empty storage engine wired to a fault injector (shared with
    /// its redo log, so crash points fire consistently across both).
    pub fn with_faults(fsync_latency: Duration, faults: Arc<FaultInjector>) -> Self {
        Self {
            tables: RwLock::new(FxHashMap::default()),
            redo: RedoLog::with_faults(fsync_latency, Arc::clone(&faults)),
            undo: UndoLog::new(),
            faults,
            first_lsn: Mutex::new(FxHashMap::default()),
            apply_latch: RwLock::new(()),
        }
    }

    /// The fault injector shared by this storage engine and its redo log.
    pub fn faults(&self) -> &Arc<FaultInjector> {
        &self.faults
    }

    /// First redo LSN of the oldest active transaction, if any — the floor
    /// below which checkpoint truncation must not cut the log.
    pub fn active_txn_floor(&self) -> Option<Lsn> {
        self.first_lsn.lock().values().min().copied()
    }

    /// Creates a table.  Returns an error if the id is already in use.
    pub fn create_table(&self, schema: TableSchema) -> Result<Arc<Table>> {
        let mut tables = self.tables.write();
        if tables.contains_key(&schema.id) {
            return Err(Error::Internal {
                reason: format!("{} already exists", schema.id),
            });
        }
        let table = Arc::new(Table::new(schema.clone()));
        tables.insert(schema.id, Arc::clone(&table));
        Ok(table)
    }

    /// Looks up a table.
    pub fn table(&self, id: TableId) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(&id)
            .cloned()
            .ok_or(Error::UnknownTable { table: id })
    }

    /// All tables, in id order.
    pub fn tables(&self) -> Vec<Arc<Table>> {
        let mut tables: Vec<Arc<Table>> = self.tables.read().values().cloned().collect();
        tables.sort_by_key(|t| t.schema().id);
        tables
    }

    /// The redo log.
    pub fn redo(&self) -> &RedoLog {
        &self.redo
    }

    /// The undo log.
    pub fn undo(&self) -> &UndoLog {
        &self.undo
    }

    // ---------------------------------------------------------------------
    // Non-transactional helpers (bulk load, reads)
    // ---------------------------------------------------------------------

    /// Bulk-loads a committed row without logging (the checkpoint captures
    /// loaded data instead, as a real system's initial backup would).
    pub fn load_row(&self, table: TableId, row: Row) -> Result<RecordId> {
        self.table(table)?.insert_committed(row)
    }

    /// Reads the newest (possibly uncommitted) row image.
    pub fn read_latest(&self, table: TableId, record: RecordId) -> Result<Row> {
        let slot = self.table(table)?.slot(record)?;
        let guard = slot.read();
        guard.latest_row().ok_or(Error::UnknownRecord { record })
    }

    /// Reads the newest (possibly uncommitted) row image together with its
    /// writer (`TxnId::INVALID` for a bulk-loaded base version), in a single
    /// slot read — the locked-read hot path records both.
    pub fn read_latest_with_writer(
        &self,
        table: TableId,
        record: RecordId,
    ) -> Result<(Row, TxnId)> {
        let slot = self.table(table)?.slot(record)?;
        let guard = slot.read();
        guard
            .latest()
            .map(|v| (v.row.clone(), v.writer))
            .ok_or(Error::UnknownRecord { record })
    }

    /// Reads the newest version visible to `judge` (the MVCC read path).
    pub fn read_visible<J: VisibilityJudge>(
        &self,
        table: TableId,
        record: RecordId,
        judge: &J,
    ) -> Result<Option<Row>> {
        let slot = self.table(table)?.slot(record)?;
        let guard = slot.read();
        Ok(guard.visible_row(judge))
    }

    /// Reads the newest *committed* row image.
    pub fn read_committed(&self, table: TableId, record: RecordId) -> Result<Option<Row>> {
        self.read_visible(table, record, &ReadCommitted)
    }

    /// Writer of the newest version of a record *if that version is still
    /// uncommitted* (the Bamboo dirty-read dependency signal).
    pub fn latest_writer(&self, table: TableId, record: RecordId) -> Result<Option<TxnId>> {
        let slot = self.table(table)?.slot(record)?;
        let guard = slot.read();
        Ok(if guard.has_uncommitted_head() {
            guard.latest_writer()
        } else {
            None
        })
    }

    /// Writer of the newest version of a record, committed or not
    /// (`TxnId::INVALID` for a bulk-loaded base version).  This is the
    /// version a locked read (`SELECT ... FOR UPDATE`, `update_row`)
    /// observes, recorded in the read set for the serializability checker.
    pub fn latest_version_writer(&self, table: TableId, record: RecordId) -> Result<Option<TxnId>> {
        let slot = self.table(table)?.slot(record)?;
        let guard = slot.read();
        Ok(guard.latest_writer())
    }

    // ---------------------------------------------------------------------
    // Transactional primitives
    // ---------------------------------------------------------------------

    /// Registers a transaction with the undo log and writes its Begin record.
    pub fn begin_txn(&self, txn: TxnId) -> Lsn {
        self.undo.register(txn);
        let lsn = self.redo.append(RedoRecord::Begin { txn });
        self.first_lsn.lock().insert(txn, lsn);
        lsn
    }

    /// Applies an update as a new uncommitted version, recording undo and
    /// redo.  Returns the redo LSN of the update.
    pub fn apply_update(
        &self,
        txn: TxnId,
        table_id: TableId,
        record: RecordId,
        new_row: Row,
    ) -> Result<Lsn> {
        self.redo.crash_point(CrashPoint::PreAppend)?;
        let table = self.table(table_id)?;
        let slot = table.slot(record)?;
        let pk = new_row.primary_key().unwrap_or_default();
        {
            let mut guard = slot.write();
            let before = guard.latest_row().ok_or(Error::UnknownRecord { record })?;
            self.undo.push(
                txn,
                UndoRecord::Update {
                    table: table_id,
                    record,
                    before,
                },
            );
            guard.push_uncommitted(new_row.clone(), txn);
        }
        let lsn = self.redo.append(RedoRecord::Update {
            txn,
            table: table_id,
            record,
            pk,
            after: new_row,
        });
        self.redo.crash_point(CrashPoint::PostAppendPreFlush)?;
        Ok(lsn)
    }

    /// Applies a transactional insert (uncommitted), recording undo and redo.
    pub fn apply_insert(&self, txn: TxnId, table_id: TableId, row: Row) -> Result<(RecordId, Lsn)> {
        self.redo.crash_point(CrashPoint::PreAppend)?;
        let table = self.table(table_id)?;
        let pk = row.primary_key().ok_or_else(|| Error::Internal {
            reason: "insert without integer pk".into(),
        })?;
        let record =
            table.insert_versions(pk, RecordVersions::new_uncommitted(row.clone(), txn))?;
        self.undo.push(
            txn,
            UndoRecord::Insert {
                table: table_id,
                record,
                pk,
            },
        );
        let lsn = self.redo.append(RedoRecord::Insert {
            txn,
            table: table_id,
            record,
            pk,
            row,
        });
        self.redo.crash_point(CrashPoint::PostAppendPreFlush)?;
        Ok((record, lsn))
    }

    /// Persists the hot-update order of `txn` in its undo header (§5.3).
    pub fn set_hot_update_order(&self, txn: TxnId, order: u64) -> Lsn {
        let header = UndoHeader::with_hot_update_order(order);
        self.undo.set_header(txn, header);
        self.redo.append(RedoRecord::UndoHeader {
            txn,
            field: header.raw(),
        })
    }

    /// Marks every version written by `txn` on the given records as committed
    /// with `trx_no`, stamps the undo header, and appends the commit marker.
    /// Returns the LSN of the commit marker (the LSN the commit pipeline must
    /// make durable).
    pub fn commit_writes(
        &self,
        txn: TxnId,
        trx_no: u64,
        writes: &[(TableId, RecordId)],
    ) -> Result<Lsn> {
        self.redo.crash_point(CrashPoint::PreAppend)?;
        // Atomic with respect to checkpoint capture: a capture must see this
        // commit either fully applied (and deregistered from the floor) or
        // not at all — see `apply_latch`.
        let _apply = self.apply_latch.read();
        for (table_id, record) in writes {
            let table = self.table(*table_id)?;
            let slot = table.slot(*record)?;
            slot.write().commit_writer(txn, trx_no);
        }
        let header = UndoHeader::with_trx_no(trx_no);
        self.undo.set_header(txn, header);
        self.redo.append(RedoRecord::UndoHeader {
            txn,
            field: header.raw(),
        });
        let lsn = self.redo.append(RedoRecord::Commit { txn, trx_no });
        self.undo.take(txn);
        self.first_lsn.lock().remove(&txn);
        // A crash here leaves the commit marker in the log buffer but never
        // flushed: the transaction was stamped in memory yet its commit is
        // not durable and must not be acknowledged.
        self.redo.crash_point(CrashPoint::PostAppendPreFlush)?;
        Ok(lsn)
    }

    /// Rolls back every change `txn` made, using its undo segment, and appends
    /// the rollback marker.  Changes are undone in reverse execution order.
    ///
    /// Deliberately *not* gated on crash points or read-only degradation:
    /// rollback must keep working after an fsync failure degraded the engine
    /// (it only restores in-memory before-images), and after a crash it is a
    /// harmless no-op on the dead process image.
    pub fn rollback_writes(&self, txn: TxnId) -> Result<Lsn> {
        self.first_lsn.lock().remove(&txn);
        let segment: Option<UndoSegment> = self.undo.take(txn);
        if let Some(segment) = segment {
            for undo in segment.rollback_order() {
                match undo {
                    UndoRecord::Update { table, record, .. } => {
                        let table = self.table(*table)?;
                        let slot = table.slot(*record)?;
                        slot.write().rollback_writer(txn);
                    }
                    UndoRecord::Insert { table, record, pk } => {
                        let table = self.table(*table)?;
                        let slot = table.slot(*record)?;
                        slot.write().rollback_writer(txn);
                        table.unindex_pk(*pk);
                    }
                    UndoRecord::Delete { table, record, .. } => {
                        let table = self.table(*table)?;
                        let slot = table.slot(*record)?;
                        let mut guard = slot.write();
                        guard.set_deleted(false);
                        guard.rollback_writer(txn);
                    }
                }
            }
        }
        Ok(self.redo.append(RedoRecord::Rollback { txn }))
    }

    /// Opportunistically trims old committed versions of a record (purge).
    pub fn purge_record(&self, table: TableId, record: RecordId) -> Result<usize> {
        let slot = self.table(table)?.slot(record)?;
        let purged = slot.write().purge_old_committed();
        Ok(purged)
    }

    // ---------------------------------------------------------------------
    // Checkpoint
    // ---------------------------------------------------------------------

    /// Captures the committed state of every table together with the current
    /// log position.  Recovery starts from this image and replays the durable
    /// redo suffix.
    pub fn checkpoint(&self) -> CheckpointImage {
        self.checkpoint_with_floor().0
    }

    /// [`Storage::checkpoint`] plus the active-transaction floor, both read
    /// under the apply latch so the image is a *consistent* snapshot:
    ///
    /// * no commit can apply mid-scan ([`Storage::commit_writes`] holds the
    ///   latch's read side across stamping every slot *and* deregistering
    ///   from the floor), so every transaction is either fully in the image
    ///   or not at all;
    /// * a transaction fully in the image has its records below the image
    ///   LSN covered (truncating them is safe — replay of the suffix is
    ///   idempotent for anything the image already reflects);
    /// * a transaction not in the image is either still active — the floor
    ///   read *in the same critical section* protects its records from
    ///   truncation, so replay recovers it — or starts after the capture,
    ///   with all its records above the image LSN.
    ///
    /// Reading the floor outside the latch is the bug sim explorer v2
    /// caught (sim_crash seed 198): a transaction that began after an early
    /// floor read and finished applying mid-scan was half-captured by the
    /// image while truncation dropped its records.
    pub fn checkpoint_with_floor(&self) -> (CheckpointImage, Option<Lsn>) {
        let _latch = self.apply_latch.write();
        let lsn = self.redo.latest_lsn();
        let floor = self.active_txn_floor();
        let mut tables = Vec::new();
        for table in self.tables() {
            let mut rows = Vec::new();
            for (_, record) in table.all_record_ids() {
                if let Ok(slot) = table.slot(record) {
                    if let Some(row) = slot.read().visible_row(&ReadCommitted) {
                        rows.push(row);
                    }
                }
            }
            tables.push((table.schema().clone(), rows));
        }
        (CheckpointImage { lsn, tables }, floor)
    }

    /// Rebuilds a storage engine from a checkpoint image (no redo replay; see
    /// [`crate::recovery::recover`] for the full recovery path).
    pub fn from_checkpoint(image: &CheckpointImage, fsync_latency: Duration) -> Result<Self> {
        let storage = Storage::new(fsync_latency);
        for (schema, rows) in &image.tables {
            let table = storage.create_table(schema.clone())?;
            for row in rows {
                table.insert_committed(row.clone())?;
            }
        }
        Ok(storage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Storage, TableId, RecordId) {
        let storage = Storage::default();
        let tid = TableId(1);
        storage
            .create_table(TableSchema::new(tid, "t1", 2))
            .unwrap();
        let rid = storage.load_row(tid, Row::from_ints(&[1, 100])).unwrap();
        (storage, tid, rid)
    }

    #[test]
    fn update_commit_cycle() {
        let (storage, tid, rid) = setup();
        let txn = TxnId(10);
        storage.begin_txn(txn);
        storage
            .apply_update(txn, tid, rid, Row::from_ints(&[1, 101]))
            .unwrap();
        // Not yet visible to committed readers.
        assert_eq!(
            storage
                .read_committed(tid, rid)
                .unwrap()
                .unwrap()
                .get_int(1),
            Some(100)
        );
        assert_eq!(storage.read_latest(tid, rid).unwrap().get_int(1), Some(101));
        assert_eq!(storage.latest_writer(tid, rid).unwrap(), Some(txn));
        let lsn = storage.commit_writes(txn, 1, &[(tid, rid)]).unwrap();
        storage.redo().flush_to(lsn).unwrap();
        assert_eq!(
            storage
                .read_committed(tid, rid)
                .unwrap()
                .unwrap()
                .get_int(1),
            Some(101)
        );
        assert_eq!(storage.latest_writer(tid, rid).unwrap(), None);
        // Undo segment is gone after commit.
        assert_eq!(storage.undo().segment_len(txn), 0);
    }

    #[test]
    fn update_rollback_cycle() {
        let (storage, tid, rid) = setup();
        let txn = TxnId(11);
        storage.begin_txn(txn);
        storage
            .apply_update(txn, tid, rid, Row::from_ints(&[1, 999]))
            .unwrap();
        storage.rollback_writes(txn).unwrap();
        assert_eq!(storage.read_latest(tid, rid).unwrap().get_int(1), Some(100));
        assert_eq!(
            storage
                .read_committed(tid, rid)
                .unwrap()
                .unwrap()
                .get_int(1),
            Some(100)
        );
    }

    #[test]
    fn insert_rollback_removes_row() {
        let (storage, tid, _) = setup();
        let txn = TxnId(12);
        storage.begin_txn(txn);
        let (rid, _) = storage
            .apply_insert(txn, tid, Row::from_ints(&[2, 200]))
            .unwrap();
        assert_eq!(storage.read_latest(tid, rid).unwrap().get_int(1), Some(200));
        storage.rollback_writes(txn).unwrap();
        assert!(storage.table(tid).unwrap().lookup_pk(2).is_err());
    }

    #[test]
    fn insert_commit_makes_row_visible() {
        let (storage, tid, _) = setup();
        let txn = TxnId(13);
        storage.begin_txn(txn);
        let (rid, _) = storage
            .apply_insert(txn, tid, Row::from_ints(&[5, 500]))
            .unwrap();
        assert!(storage.read_committed(tid, rid).unwrap().is_none());
        storage.commit_writes(txn, 2, &[(tid, rid)]).unwrap();
        assert_eq!(
            storage
                .read_committed(tid, rid)
                .unwrap()
                .unwrap()
                .get_int(1),
            Some(500)
        );
    }

    #[test]
    fn stacked_uncommitted_updates_roll_back_in_reverse_order() {
        let (storage, tid, rid) = setup();
        for (t, v) in [(1u64, 101i64), (2, 102), (3, 103)] {
            let txn = TxnId(t);
            storage.begin_txn(txn);
            storage
                .apply_update(txn, tid, rid, Row::from_ints(&[1, v]))
                .unwrap();
        }
        assert_eq!(storage.read_latest(tid, rid).unwrap().get_int(1), Some(103));
        storage.rollback_writes(TxnId(3)).unwrap();
        storage.rollback_writes(TxnId(2)).unwrap();
        storage.rollback_writes(TxnId(1)).unwrap();
        assert_eq!(storage.read_latest(tid, rid).unwrap().get_int(1), Some(100));
    }

    #[test]
    fn hot_update_order_persisted_in_undo_header_and_redo() {
        let (storage, tid, rid) = setup();
        let txn = TxnId(21);
        storage.begin_txn(txn);
        storage
            .apply_update(txn, tid, rid, Row::from_ints(&[1, 150]))
            .unwrap();
        storage.set_hot_update_order(txn, 17);
        assert_eq!(storage.undo().header(txn).hot_update_order(), Some(17));
        let has_header_record = storage
            .redo()
            .all_records()
            .iter()
            .any(|r| matches!(r, RedoRecord::UndoHeader { txn: t, field } if *t == txn && field & crate::undo::HOT_UPDATE_ORDER_FLAG != 0));
        assert!(has_header_record);
    }

    #[test]
    fn checkpoint_round_trip() {
        let (storage, tid, rid) = setup();
        let txn = TxnId(30);
        storage.begin_txn(txn);
        storage
            .apply_update(txn, tid, rid, Row::from_ints(&[1, 123]))
            .unwrap();
        storage.commit_writes(txn, 3, &[(tid, rid)]).unwrap();
        // An uncommitted change must not leak into the checkpoint.
        let txn2 = TxnId(31);
        storage.begin_txn(txn2);
        storage
            .apply_update(txn2, tid, rid, Row::from_ints(&[1, 999]))
            .unwrap();

        let image = storage.checkpoint();
        let rebuilt = Storage::from_checkpoint(&image, Duration::ZERO).unwrap();
        let rid2 = rebuilt.table(tid).unwrap().lookup_pk(1).unwrap();
        assert_eq!(
            rebuilt.read_latest(tid, rid2).unwrap().get_int(1),
            Some(123)
        );
    }

    #[test]
    fn active_txn_floor_tracks_oldest_unfinished_txn() {
        let (storage, tid, rid) = setup();
        assert_eq!(storage.active_txn_floor(), None);
        let a = TxnId(1);
        let b = TxnId(2);
        let floor = storage.begin_txn(a);
        storage.begin_txn(b);
        assert_eq!(storage.active_txn_floor(), Some(floor));
        storage
            .apply_update(a, tid, rid, Row::from_ints(&[1, 101]))
            .unwrap();
        storage.commit_writes(a, 1, &[(tid, rid)]).unwrap();
        // The floor advances to the younger transaction once `a` finishes.
        assert!(storage.active_txn_floor().unwrap() > floor);
        storage.rollback_writes(b).unwrap();
        assert_eq!(storage.active_txn_floor(), None);
    }

    #[test]
    fn crash_during_commit_is_not_acknowledged() {
        use crate::fault::{FaultInjector, FaultPlan};
        // The crash fires after the commit marker is appended but before any
        // flush covers it: commit_writes must surface the crash instead of
        // acknowledging the commit.
        let plan = FaultPlan::none().crash_at(CrashPoint::PostAppendPreFlush, 2);
        let storage = Storage::with_faults(Duration::ZERO, FaultInjector::new(plan));
        let tid = TableId(1);
        storage
            .create_table(TableSchema::new(tid, "t1", 2))
            .unwrap();
        let rid = storage.load_row(tid, Row::from_ints(&[1, 100])).unwrap();
        let txn = TxnId(7);
        storage.begin_txn(txn);
        storage
            .apply_update(txn, tid, rid, Row::from_ints(&[1, 101]))
            .unwrap(); // first PostAppendPreFlush hit passes
        let err = storage.commit_writes(txn, 1, &[(tid, rid)]).unwrap_err();
        assert!(matches!(err, Error::Crashed { .. }));
        // Nothing was ever flushed: the durable image has no trace of txn.
        assert!(storage.redo().durable_records().is_empty());
    }

    #[test]
    fn duplicate_table_creation_fails() {
        let storage = Storage::default();
        storage
            .create_table(TableSchema::new(TableId(9), "a", 1))
            .unwrap();
        assert!(storage
            .create_table(TableSchema::new(TableId(9), "b", 1))
            .is_err());
        assert!(storage.table(TableId(8)).is_err());
    }
}
