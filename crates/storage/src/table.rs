//! Tables: a collection of pages plus a primary-key index.
//!
//! The primary-key index maps `pk -> RecordId` so workloads can address rows
//! the way SQL would (`WHERE id = ?`), while the engine internals — lock
//! manager, hotspot hash, undo/redo — always speak `RecordId`, mirroring the
//! paper's description of locating a record through its tablespace, page and
//! heap position (§2.2).

use crate::heap::{Page, RecordSlot};
use crate::schema::TableSchema;
use crate::version::RecordVersions;
use parking_lot::RwLock;
use txsql_common::fxhash::FxHashMap;
use txsql_common::{Error, HeapNo, PageNo, RecordId, Result, Row};

/// A table: schema, heap pages and the primary-key index.
#[derive(Debug)]
pub struct Table {
    schema: TableSchema,
    /// Heap pages.  Pages are only ever appended, so a read lock suffices for
    /// all record accesses; the write lock is taken only when a new page must
    /// be allocated.
    pages: RwLock<Vec<Page>>,
    /// Primary key -> record id.
    pk_index: RwLock<FxHashMap<i64, RecordId>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: TableSchema) -> Self {
        Self {
            schema,
            pages: RwLock::new(Vec::new()),
            pk_index: RwLock::new(FxHashMap::default()),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of live (indexed) rows.
    pub fn row_count(&self) -> usize {
        self.pk_index.read().len()
    }

    /// Inserts a row version chain, allocating heap space and indexing the
    /// primary key.  Fails on duplicate primary keys.
    pub fn insert_versions(&self, row_pk: i64, versions: RecordVersions) -> Result<RecordId> {
        {
            let index = self.pk_index.read();
            if index.contains_key(&row_pk) {
                return Err(Error::DuplicateKey {
                    table: self.schema.id,
                    key: row_pk,
                });
            }
        }
        let record_id = {
            let mut pages = self.pages.write();
            let need_new_page = pages.last().map(|p| p.is_full()).unwrap_or(true);
            if need_new_page {
                let page_no = pages.len() as PageNo;
                pages.push(Page::new(
                    self.schema.space_id(),
                    page_no,
                    self.schema.rows_per_page,
                ));
            }
            let page = pages.last_mut().expect("page just ensured");
            let heap_no: HeapNo = page
                .allocate(versions)
                .expect("freshly ensured page cannot be full");
            RecordId::new(self.schema.space_id(), page.page_no(), heap_no)
        };
        let mut index = self.pk_index.write();
        if index.contains_key(&row_pk) {
            // Lost the race with a concurrent insert of the same key.  The heap
            // slot stays allocated but unindexed (same as a rolled-back insert).
            return Err(Error::DuplicateKey {
                table: self.schema.id,
                key: row_pk,
            });
        }
        index.insert(row_pk, record_id);
        Ok(record_id)
    }

    /// Bulk-load convenience: inserts a committed row.
    pub fn insert_committed(&self, row: Row) -> Result<RecordId> {
        let pk = row.primary_key().ok_or_else(|| Error::Internal {
            reason: "row has no integer primary key".into(),
        })?;
        self.insert_versions(pk, RecordVersions::new_committed(row))
    }

    /// Looks up the record id for a primary key.
    pub fn lookup_pk(&self, pk: i64) -> Result<RecordId> {
        self.pk_index
            .read()
            .get(&pk)
            .copied()
            .ok_or(Error::KeyNotFound {
                table: self.schema.id,
                key: pk,
            })
    }

    /// Removes a primary key from the index (used when rolling back an
    /// insert).  Returns true if the key was present.
    pub fn unindex_pk(&self, pk: i64) -> bool {
        self.pk_index.write().remove(&pk).is_some()
    }

    /// Returns the record slot for a record id.
    pub fn slot(&self, record: RecordId) -> Result<RecordSlot> {
        let pages = self.pages.read();
        pages
            .get(record.page_no as usize)
            .and_then(|p| p.slot(record.heap_no))
            .cloned()
            .ok_or(Error::UnknownRecord { record })
    }

    /// Record ids of every indexed row, in primary-key order (used by scans,
    /// consistency checks and recovery verification).
    pub fn all_record_ids(&self) -> Vec<(i64, RecordId)> {
        let mut rows: Vec<(i64, RecordId)> =
            self.pk_index.read().iter().map(|(k, v)| (*k, *v)).collect();
        rows.sort_unstable_by_key(|(k, _)| *k);
        rows
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> usize {
        self.pages.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txsql_common::TableId;

    fn small_table() -> Table {
        Table::new(TableSchema::new(TableId(1), "t", 2).with_rows_per_page(2))
    }

    #[test]
    fn insert_and_lookup() {
        let t = small_table();
        let rid = t.insert_committed(Row::from_ints(&[7, 70])).unwrap();
        assert_eq!(t.lookup_pk(7).unwrap(), rid);
        assert_eq!(t.row_count(), 1);
        let slot = t.slot(rid).unwrap();
        assert_eq!(slot.read().latest_row().unwrap().get_int(1), Some(70));
    }

    #[test]
    fn duplicate_pk_rejected() {
        let t = small_table();
        t.insert_committed(Row::from_ints(&[1, 1])).unwrap();
        let err = t.insert_committed(Row::from_ints(&[1, 2])).unwrap_err();
        assert!(matches!(err, Error::DuplicateKey { key: 1, .. }));
    }

    #[test]
    fn pages_overflow_to_new_page() {
        let t = small_table();
        for pk in 0..5 {
            t.insert_committed(Row::from_ints(&[pk, pk])).unwrap();
        }
        assert_eq!(t.page_count(), 3);
        // Records keep the (space, page, heap) addressing.
        let rid = t.lookup_pk(4).unwrap();
        assert_eq!(rid.space_id, 1);
        assert_eq!(rid.page_no, 2);
        assert_eq!(rid.heap_no, 0);
    }

    #[test]
    fn unknown_lookups_fail_cleanly() {
        let t = small_table();
        assert!(matches!(
            t.lookup_pk(99),
            Err(Error::KeyNotFound { key: 99, .. })
        ));
        let missing = RecordId::new(1, 9, 9);
        assert!(matches!(t.slot(missing), Err(Error::UnknownRecord { .. })));
    }

    #[test]
    fn unindex_removes_visibility_via_pk() {
        let t = small_table();
        t.insert_committed(Row::from_ints(&[3, 30])).unwrap();
        assert!(t.unindex_pk(3));
        assert!(!t.unindex_pk(3));
        assert!(t.lookup_pk(3).is_err());
    }

    #[test]
    fn all_record_ids_sorted_by_pk() {
        let t = small_table();
        for pk in [5, 1, 3] {
            t.insert_committed(Row::from_ints(&[pk, pk])).unwrap();
        }
        let pks: Vec<i64> = t.all_record_ids().into_iter().map(|(k, _)| k).collect();
        assert_eq!(pks, vec![1, 3, 5]);
    }

    #[test]
    fn rows_without_int_pk_rejected() {
        let t = small_table();
        let row = Row::new(vec![txsql_common::Value::Str("x".into())]);
        assert!(t.insert_committed(row).is_err());
    }
}
