//! Offline shim for the `serde` crate (see `crates/shims/README.md`).
//!
//! Instead of serde's visitor-based data model, this shim defines a concrete
//! JSON value tree ([`Json`]) and two traits that convert to and from it.
//! The companion `serde_derive` proc-macro derives both traits for the struct
//! and enum shapes this workspace uses; `serde_json` renders and parses the
//! tree.  The encoding follows real serde's JSON conventions (named structs
//! as objects, newtypes as their inner value, enum unit variants as strings,
//! enum newtype variants as single-key objects, `Duration` as
//! `{"secs":..,"nanos":..}`) so recorded artifacts remain readable.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::time::Duration;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer (exact).
    I64(i64),
    /// Unsigned integer (exact).
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object: ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Error produced when a [`Json`] tree does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the mismatch.
    pub message: String,
}

impl JsonError {
    /// Creates an error.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Looks up a field of an object.
    pub fn field(&self, name: &str) -> Result<&Json, JsonError> {
        match self {
            Json::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError::new(format!("missing field `{name}`"))),
            _ => Err(JsonError::new(format!(
                "expected object with field `{name}`"
            ))),
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization into the JSON tree.
pub trait Serialize {
    /// Converts `self` into a [`Json`] value.
    fn to_json(&self) -> Json;
}

/// Deserialization from the JSON tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Json`] value.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                #[allow(unused_comparisons)]
                if (*self as i128) < 0 {
                    Json::I64(*self as i64)
                } else {
                    Json::U64(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_json(value: &Json) -> Result<Self, JsonError> {
                match value {
                    Json::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| JsonError::new("integer out of range")),
                    Json::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| JsonError::new("integer out of range")),
                    Json::F64(v) if v.fract() == 0.0 => Ok(*v as $t),
                    _ => Err(JsonError::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::F64(v) => Ok(*v),
            Json::I64(v) => Ok(*v as f64),
            Json::U64(v) => Ok(*v as f64),
            _ => Err(JsonError::new("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Json {
        Json::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        f64::from_json(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Bool(v) => Ok(*v),
            _ => Err(JsonError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Str(s) => Ok(s.clone()),
            _ => Err(JsonError::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            _ => Err(JsonError::new("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Arr(items) if items.len() == 2 => {
                Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
            }
            _ => Err(JsonError::new("expected 2-element array")),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.iter()
                .map(|(k, v)| Json::Arr(vec![k.to_json(), v.to_json()]))
                .collect(),
        )
    }
}

impl Serialize for Duration {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("secs".to_owned(), Json::U64(self.as_secs())),
            (
                "nanos".to_owned(),
                Json::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for Duration {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let secs = u64::from_json(value.field("secs")?)?;
        let nanos = u32::from_json(value.field("nanos")?)?;
        Ok(Duration::new(secs, nanos))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_json(&42u64.to_json()).unwrap(), 42);
        assert_eq!(i64::from_json(&(-7i64).to_json()).unwrap(), -7);
        assert_eq!(String::from_json(&"hi".to_owned().to_json()).unwrap(), "hi");
        assert_eq!(
            Vec::<u32>::from_json(&vec![1u32, 2].to_json()).unwrap(),
            vec![1, 2]
        );
        let d = Duration::new(3, 500);
        assert_eq!(Duration::from_json(&d.to_json()).unwrap(), d);
        let pair = ("x".to_owned(), 9u64);
        assert_eq!(<(String, u64)>::from_json(&pair.to_json()).unwrap(), pair);
    }

    #[test]
    fn field_lookup_errors_are_descriptive() {
        let obj = Json::Obj(vec![("a".to_owned(), Json::U64(1))]);
        assert!(obj.field("a").is_ok());
        assert!(obj
            .field("b")
            .unwrap_err()
            .message
            .contains("missing field"));
        assert!(Json::Null.field("a").is_err());
    }
}
