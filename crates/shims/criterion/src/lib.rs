//! Offline shim for the `criterion` crate (see `crates/shims/README.md`).
//!
//! Implements the benchmark-definition API this workspace's `benches/` use —
//! groups, `bench_function`, `bench_with_input`, `iter`, `iter_batched`,
//! `iter_custom`, `BenchmarkId`, `BatchSize` — with a simple
//! warmup-then-measure loop instead of criterion's statistical machinery.
//! Results are printed as `group/name: <mean> ns/iter (<iters> iters)`.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (best-effort stable impl).
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortises setup cost (accepted, not interpreted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier (`group/parameter` display).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver handle passed to registered benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: Duration::from_millis(300),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (accepted for API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Registers and immediately runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            measurement_time: self.measurement_time,
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Registers and immediately runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            measurement_time: self.measurement_time,
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Runs the measured routine.
#[derive(Debug)]
pub struct Bencher {
    measurement_time: Duration,
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    fn target_iters(&self, probe: Duration) -> u64 {
        if probe.is_zero() {
            return 1_000;
        }
        let per_iter = probe.as_secs_f64();
        ((self.measurement_time.as_secs_f64() / per_iter).ceil() as u64).clamp(1, 10_000_000)
    }

    /// Times `routine` repeatedly over the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Probe once to size the loop.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed();
        let iters = self.target_iters(probe);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed() + probe;
        self.iters_done = iters + 1;
    }

    /// Times `routine` with a fresh `setup()` input per iteration; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let probe_start = Instant::now();
        black_box(routine(input));
        let probe = probe_start.elapsed();
        let iters = self.target_iters(probe).min(100_000);
        let mut measured = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
        }
        self.elapsed = measured + probe;
        self.iters_done = iters + 1;
    }

    /// Hands full timing control to the routine: it receives an iteration
    /// count and returns the elapsed time.
    pub fn iter_custom<R>(&mut self, mut routine: R)
    where
        R: FnMut(u64) -> Duration,
    {
        let probe = routine(1);
        let iters = if probe.is_zero() {
            100
        } else {
            ((self.measurement_time.as_secs_f64() / probe.as_secs_f64()).ceil() as u64)
                .clamp(1, 1_000_000)
        };
        self.elapsed = routine(iters) + probe;
        self.iters_done = iters + 1;
    }

    fn report(&self, group: &str, id: &str) {
        if self.iters_done == 0 {
            println!("{group}/{id}: no iterations run");
            return;
        }
        let ns_per_iter = self.elapsed.as_nanos() as f64 / self.iters_done as f64;
        println!(
            "{group}/{id}: {ns_per_iter:.0} ns/iter ({} iters)",
            self.iters_done
        );
    }
}

/// Declares the benchmark entry points (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares `main` running the given groups (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(5));
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_calls_setup_per_iteration() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.measurement_time(Duration::from_millis(2));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn iter_custom_uses_returned_duration() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.measurement_time(Duration::from_millis(1));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &(), |b, _| {
            b.iter_custom(Duration::from_nanos)
        });
        group.finish();
    }
}
