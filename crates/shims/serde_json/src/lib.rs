//! Offline shim for the `serde_json` crate (see `crates/shims/README.md`).
//!
//! Renders and parses the `serde` shim's [`Json`] value tree.  The output is
//! ordinary JSON — artifacts written with this shim (benchmark records,
//! metrics snapshots) are readable by any JSON tool.

use serde::{Deserialize, Json, JsonError, Serialize};
use std::fmt::Write as _;

/// Error type mirroring `serde_json::Error`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<JsonError> for Error {
    fn from(err: JsonError) -> Self {
        Self {
            message: err.message,
        }
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let json = parse(text)?;
    Ok(T::from_json(&json)?)
}

fn render(value: &Json, out: &mut String, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
        None => ("", String::new(), String::new()),
    };
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Json::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Json::F64(v) => {
            if v.is_finite() {
                // Match serde_json: always representable, keep float-ness.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    let _ = write!(out, "{v:.1}");
                } else {
                    let _ = write!(out, "{v}");
                }
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => render_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                render(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                out.push_str(nl);
                out.push_str(&pad);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, out, indent, depth + 1);
            }
            if !pairs.is_empty() {
                out.push_str(nl);
                out.push_str(&pad);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into the [`Json`] tree.
pub fn parse(text: &str) -> Result<Json, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters"));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal, expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Json, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}`",
                other as char
            ))),
        }
    }

    fn array(&mut self) -> Result<Json, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(Error::new("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(Error::new("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        if self.peek()? != b'"' {
            return Err(Error::new("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 multibyte sequences.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, Error> {
        let start = self.pos;
        if self.bytes[self.pos] == b'-' {
            self.pos += 1;
        }
        let mut is_float = false;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|_| Error::new("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::I64)
                .map_err(|_| Error::new("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Json::U64)
                .map_err(|_| Error::new("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_compound_values() {
        let value = Json::Obj(vec![
            ("a".into(), Json::U64(1)),
            (
                "b".into(),
                Json::Arr(vec![Json::I64(-2), Json::F64(1.5), Json::Null]),
            ),
            ("c".into(), Json::Str("x\"y\n".into())),
            ("d".into(), Json::Bool(true)),
        ]);
        let text = to_string(&JsonWrapper(value.clone())).unwrap();
        assert_eq!(parse(&text).unwrap(), value);
    }

    // Helper: Json itself does not implement the Serialize trait.
    struct JsonWrapper(Json);
    impl serde::Serialize for JsonWrapper {
        fn to_json(&self) -> Json {
            self.0.clone()
        }
    }

    #[test]
    fn floats_keep_floatness() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let value = vec![(String::from("k"), 3u64)];
        let text = to_string_pretty(&value).unwrap();
        assert!(text.contains('\n'));
        let back: Vec<(String, u64)> = from_str(&text).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}
