//! Offline shim for `serde_derive` (see `crates/shims/README.md`).
//!
//! Derives the shim `serde::Serialize` / `serde::Deserialize` traits (which
//! convert through the `serde::Json` value tree) for the type shapes this
//! workspace uses: structs with named fields, tuple structs, and enums whose
//! variants are units or single-field tuples.  The input is parsed directly
//! from the proc-macro token stream — no `syn`/`quote` available offline.
//!
//! One helper attribute is honoured: `#[serde(default)]` on a named field
//! makes `Deserialize` fall back to `Default::default()` when the field is
//! absent from the JSON object — how snapshots recorded before a metrics
//! field existed keep deserialising after the field is added.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named struct field: its identifier and whether `#[serde(default)]`
/// marks it as optional-with-default on deserialize.
struct Field {
    name: String,
    defaulted: bool,
}

/// Parsed shape of the deriving type.
enum Shape {
    /// `struct S { a: A, b: B }`
    Named { name: String, fields: Vec<Field> },
    /// `struct S(A, B);` — arity recorded.
    Tuple { name: String, arity: usize },
    /// `enum E { Unit, Newtype(T) }`
    Enum {
        name: String,
        variants: Vec<(String, bool)>,
    },
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut tokens = input.into_iter().peekable();
    let mut kind: Option<&'static str> = None;
    let mut name = String::new();
    // Scan: skip attributes and visibility until `struct`/`enum` + name.
    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: consume the following bracket group.
                tokens.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                match s.as_str() {
                    "pub" => {
                        // Skip optional `(crate)` style restriction.
                        if let Some(TokenTree::Group(g)) = tokens.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                tokens.next();
                            }
                        }
                    }
                    "struct" | "enum" => {
                        kind = Some(if s == "struct" { "struct" } else { "enum" });
                        if let Some(TokenTree::Ident(n)) = tokens.next() {
                            name = n.to_string();
                        }
                        break;
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
    let kind = kind.expect("derive input must be a struct or enum");
    // Reject generics: none of the workspace types use them.
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive shim does not support generic types");
        }
    }
    let body = tokens.next();
    match (kind, body) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Named {
                name,
                fields: parse_named_fields(g.stream()),
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple {
                name,
                arity: count_tuple_fields(g.stream()),
            }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Shape::Enum {
            name,
            variants: parse_variants(g.stream()),
        },
        _ => panic!("unsupported derive input shape for `{name}`"),
    }
}

/// Extracts field names from `a: A, b: B, ...` (attributes skipped except
/// `#[serde(default)]`, which is recorded; types consumed with angle-bracket
/// depth tracking so `Map<K, V>` commas don't split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    let mut defaulted = false;
    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    if is_serde_default(&g) {
                        defaulted = true;
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            TokenTree::Ident(id) => {
                fields.push(Field {
                    name: id.to_string(),
                    defaulted: std::mem::take(&mut defaulted),
                });
                // Expect `:`, then skip the type up to a top-level comma.
                let mut angle_depth = 0i32;
                for tt in tokens.by_ref() {
                    match tt {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
    fields
}

/// True when an attribute's bracket group is exactly `[serde(default)]`.
fn is_serde_default(group: &proc_macro::Group) -> bool {
    if group.delimiter() != Delimiter::Bracket {
        return false;
    }
    let mut tokens = group.stream().into_iter();
    match (tokens.next(), tokens.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            let mut inner = args.stream().into_iter();
            matches!(
                (inner.next(), inner.next()),
                (Some(TokenTree::Ident(arg)), None) if arg.to_string() == "default"
            )
        }
        _ => false,
    }
}

/// Counts top-level comma-separated fields of a tuple struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_any = false;
    let mut angle_depth = 0i32;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => saw_any = true,
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

/// Extracts `(variant_name, has_payload)` pairs from an enum body.  Only unit
/// variants and single-field tuple variants are supported.
fn parse_variants(stream: TokenStream) -> Vec<(String, bool)> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                let mut has_payload = false;
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        assert!(
                            count_tuple_fields(g.stream()) == 1,
                            "serde_derive shim supports only single-field tuple variants"
                        );
                        has_payload = true;
                        tokens.next();
                    } else if g.delimiter() == Delimiter::Brace {
                        panic!("serde_derive shim does not support struct variants");
                    }
                }
                variants.push((name, has_payload));
                // Skip to the next top-level comma (covers discriminants).
                while let Some(tt) = tokens.peek() {
                    if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                        tokens.next();
                        break;
                    }
                    tokens.next();
                }
            }
            _ => {}
        }
    }
    variants
}

/// Derives the shim `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Named { name, fields } => {
            let pairs: String = fields
                .iter()
                .map(|Field { name: f, .. }| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_json(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json(&self) -> ::serde::Json {{\n\
                         ::serde::Json::Obj(::std::vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Tuple { name, arity } => {
            if arity == 1 {
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_json(&self) -> ::serde::Json {{\n\
                             ::serde::Serialize::to_json(&self.0)\n\
                         }}\n\
                     }}"
                )
            } else {
                let items: String = (0..arity)
                    .map(|i| format!("::serde::Serialize::to_json(&self.{i}),"))
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_json(&self) -> ::serde::Json {{\n\
                             ::serde::Json::Arr(::std::vec![{items}])\n\
                         }}\n\
                     }}"
                )
            }
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, has_payload)| {
                    if *has_payload {
                        format!(
                            "{name}::{v}(inner) => ::serde::Json::Obj(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                              ::serde::Serialize::to_json(inner))]),"
                        )
                    } else {
                        format!(
                            "{name}::{v} => \
                             ::serde::Json::Str(::std::string::String::from(\"{v}\")),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json(&self) -> ::serde::Json {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives the shim `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Named { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|Field { name: f, defaulted }| {
                    if *defaulted {
                        // `#[serde(default)]`: absent field → Default value
                        // (snapshots recorded before the field existed).
                        format!(
                            "{f}: match value.field(\"{f}\") {{\n\
                                 ::std::result::Result::Ok(v) => \
                                     ::serde::Deserialize::from_json(v)?,\n\
                                 ::std::result::Result::Err(_) => \
                                     ::std::default::Default::default(),\n\
                             }},"
                        )
                    } else {
                        format!("{f}: ::serde::Deserialize::from_json(value.field(\"{f}\")?)?,")
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json(value: &::serde::Json) \
                         -> ::std::result::Result<Self, ::serde::JsonError> {{\n\
                         ::std::result::Result::Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Tuple { name, arity } => {
            if arity == 1 {
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_json(value: &::serde::Json) \
                             -> ::std::result::Result<Self, ::serde::JsonError> {{\n\
                             ::std::result::Result::Ok(Self(\
                                 ::serde::Deserialize::from_json(value)?))\n\
                         }}\n\
                     }}"
                )
            } else {
                let inits: String = (0..arity)
                    .map(|i| format!("::serde::Deserialize::from_json(&items[{i}])?,"))
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_json(value: &::serde::Json) \
                             -> ::std::result::Result<Self, ::serde::JsonError> {{\n\
                             match value {{\n\
                                 ::serde::Json::Arr(items) if items.len() == {arity} => \
                                     ::std::result::Result::Ok(Self({inits})),\n\
                                 _ => ::std::result::Result::Err(::serde::JsonError::new(\
                                     \"expected {arity}-element array for {name}\")),\n\
                             }}\n\
                         }}\n\
                     }}"
                )
            }
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, has_payload)| !has_payload)
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter(|(_, has_payload)| *has_payload)
                .map(|(v, _)| {
                    format!(
                        "\"{v}\" => ::std::result::Result::Ok(\
                         {name}::{v}(::serde::Deserialize::from_json(payload)?)),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json(value: &::serde::Json) \
                         -> ::std::result::Result<Self, ::serde::JsonError> {{\n\
                         match value {{\n\
                             ::serde::Json::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::JsonError::new(\
                                     ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Json::Obj(pairs) if pairs.len() == 1 => {{\n\
                                 let (key, payload) = &pairs[0];\n\
                                 match key.as_str() {{\n\
                                     {payload_arms}\n\
                                     other => ::std::result::Result::Err(\
                                         ::serde::JsonError::new(::std::format!(\
                                             \"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::JsonError::new(\
                                 \"expected {name} variant\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
