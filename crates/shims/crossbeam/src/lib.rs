//! Offline shim for the `crossbeam` crate (see `crates/shims/README.md`).
//!
//! Provides `crossbeam::channel::{bounded, unbounded}` multi-producer
//! multi-consumer channels built on a `Mutex<VecDeque>` + `Condvar`.  The
//! semantics this workspace relies on are implemented: cloneable senders and
//! receivers, disconnect detection when all senders drop, `recv_timeout`,
//! and non-blocking `try_send` on bounded channels.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and all
    /// senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with nothing received.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded MPMC channel.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(capacity))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel lock");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.capacity {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.shared.not_full.wait(state).expect("channel lock");
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Sends without blocking; fails when full or disconnected.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.state.lock().expect("channel lock");
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.shared.capacity {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking until a value arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().expect("channel lock");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).expect("channel lock");
            }
        }

        /// Receives with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().expect("channel lock");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, result) = self
                    .shared
                    .not_empty
                    .wait_timeout(state, remaining)
                    .expect("channel lock");
                state = next;
                if result.timed_out() && state.queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            let mut state = self.shared.state.lock().expect("channel lock");
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            Err(RecvTimeoutError::Timeout)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel lock");
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_send_recv() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn recv_errors_when_senders_dropped() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx2, rx2) = unbounded::<u32>();
        tx2.send(7).unwrap();
        drop(tx2);
        assert_eq!(rx2.recv(), Ok(7));
        assert_eq!(rx2.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_try_send_fills_up() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = bounded(4);
        let rx2 = rx.clone();
        let consumer1 = std::thread::spawn(move || {
            let mut got = 0;
            while rx.recv().is_ok() {
                got += 1;
            }
            got
        });
        let consumer2 = std::thread::spawn(move || {
            let mut got = 0;
            while rx2.recv().is_ok() {
                got += 1;
            }
            got
        });
        let tx2 = tx.clone();
        let p1 = std::thread::spawn(move || {
            for i in 0..50 {
                tx.send(i).unwrap();
            }
        });
        let p2 = std::thread::spawn(move || {
            for i in 0..50 {
                tx2.send(i).unwrap();
            }
        });
        p1.join().unwrap();
        p2.join().unwrap();
        let total = consumer1.join().unwrap() + consumer2.join().unwrap();
        assert_eq!(total, 100);
    }
}
