//! Offline shim for the `crossbeam` crate (see `crates/shims/README.md`).
//!
//! Provides `crossbeam::channel::{bounded, unbounded}` multi-producer
//! multi-consumer channels built on a `Mutex<VecDeque>` + `Condvar`.  The
//! semantics this workspace relies on are implemented: cloneable senders and
//! receivers, disconnect detection when all senders drop, `recv_timeout`,
//! and non-blocking `try_send` on bounded channels.
//!
//! ## Deterministic-simulation instrumentation
//!
//! Like the `parking_lot` shim, the channel is an instrumentation point for
//! the `txsql-sim` cooperative scheduler: when the calling thread carries a
//! sim handle, `send`/`recv`/`try_send`/`try_recv`/`recv_timeout` become
//! *yield points* tagged with the channel's resource key, blocking waits park
//! the logical thread **in the scheduler** (never in the OS condvar, which
//! would hang the single-threaded sim), `recv_timeout` deadlines run on the
//! **virtual clock**, and dropping the last sender/receiver wakes parked
//! peers so they observe the disconnect.  Threads without a handle use the
//! std condvar path exactly as before.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};
    use txsql_sim::{Resource, ResourceKind, SimHandle};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        /// The sim resource identifying this channel (address of the shared
        /// core, stable for the channel's lifetime).
        fn sim_key(&self) -> usize {
            txsql_sim::key_of(self)
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().expect("channel lock")
        }

        /// A tagged preemption point on this channel.
        fn sim_yield(&self, h: &SimHandle) {
            h.yield_at(Resource::new(ResourceKind::Channel, self.sim_key()));
        }

        /// Wakes sim threads parked on this channel (queue or peer-count
        /// transition).
        fn sim_wake(&self, h: &SimHandle) {
            h.unpark_all(self.sim_key());
        }
    }

    /// Sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and all
    /// senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with nothing received.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded MPMC channel.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(capacity))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if let Some(h) = txsql_sim::current() {
                self.shared.sim_yield(&h);
                loop {
                    let mut state = self.shared.lock();
                    if state.receivers == 0 {
                        return Err(SendError(value));
                    }
                    let full = matches!(
                        self.shared.capacity, Some(cap) if state.queue.len() >= cap
                    );
                    if !full {
                        state.queue.push_back(value);
                        drop(state);
                        self.shared.not_empty.notify_one();
                        self.shared.sim_wake(&h);
                        return Ok(());
                    }
                    // Park in the scheduler, not the OS condvar: under sim
                    // only one thread runs, so an OS wait would deadlock.
                    drop(state);
                    h.park_at(self.shared.sim_key(), ResourceKind::Channel);
                }
            }
            let mut state = self.shared.lock();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.capacity {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.shared.not_full.wait(state).expect("channel lock");
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Sends without blocking; fails when full or disconnected.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let sim = txsql_sim::current();
            if let Some(h) = &sim {
                self.shared.sim_yield(h);
            }
            let mut state = self.shared.lock();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.shared.capacity {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.not_empty.notify_one();
            if let Some(h) = &sim {
                self.shared.sim_wake(h);
            }
            Ok(())
        }

        /// Number of values currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// True when no values are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking until a value arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            if let Some(h) = txsql_sim::current() {
                self.shared.sim_yield(&h);
                loop {
                    let mut state = self.shared.lock();
                    if let Some(value) = state.queue.pop_front() {
                        drop(state);
                        self.shared.not_full.notify_one();
                        self.shared.sim_wake(&h);
                        return Ok(value);
                    }
                    if state.senders == 0 {
                        return Err(RecvError);
                    }
                    drop(state);
                    h.park_at(self.shared.sim_key(), ResourceKind::Channel);
                }
            }
            let mut state = self.shared.lock();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).expect("channel lock");
            }
        }

        /// Receives with a timeout (virtual-clock deadline under sim).
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            if let Some(h) = txsql_sim::current() {
                self.shared.sim_yield(&h);
                let deadline = h.now().saturating_add(timeout);
                loop {
                    let mut state = self.shared.lock();
                    if let Some(value) = state.queue.pop_front() {
                        drop(state);
                        self.shared.not_full.notify_one();
                        self.shared.sim_wake(&h);
                        return Ok(value);
                    }
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    let now = h.now();
                    if now >= deadline {
                        return Err(RecvTimeoutError::Timeout);
                    }
                    drop(state);
                    h.park_timeout_at(self.shared.sim_key(), ResourceKind::Channel, deadline - now);
                }
            }
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.lock();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, result) = self
                    .shared
                    .not_empty
                    .wait_timeout(state, remaining)
                    .expect("channel lock");
                state = next;
                if result.timed_out() && state.queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            let sim = txsql_sim::current();
            if let Some(h) = &sim {
                self.shared.sim_yield(h);
            }
            let mut state = self.shared.lock();
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                if let Some(h) = &sim {
                    self.shared.sim_wake(h);
                }
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            Err(RecvTimeoutError::Timeout)
        }

        /// Number of values currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// True when no values are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.lock();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.not_empty.notify_all();
                // Wake sim receivers parked on the channel so they observe
                // the disconnect (unpark_all never reschedules, so this is
                // safe even mid-unwind on a poisoned run).
                if let Some(h) = txsql_sim::current() {
                    self.shared.sim_wake(&h);
                }
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.lock();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.shared.not_full.notify_all();
                if let Some(h) = txsql_sim::current() {
                    self.shared.sim_wake(&h);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_send_recv() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn recv_errors_when_senders_dropped() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx2, rx2) = unbounded::<u32>();
        tx2.send(7).unwrap();
        drop(tx2);
        assert_eq!(rx2.recv(), Ok(7));
        assert_eq!(rx2.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_try_send_fills_up() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn len_tracks_queue_depth() {
        let (tx, rx) = unbounded();
        assert!(tx.is_empty() && rx.is_empty());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.len(), 2);
        rx.recv().unwrap();
        assert_eq!(rx.len(), 1);
        assert!(!rx.is_empty());
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = bounded(4);
        let rx2 = rx.clone();
        let consumer1 = std::thread::spawn(move || {
            let mut got = 0;
            while rx.recv().is_ok() {
                got += 1;
            }
            got
        });
        let consumer2 = std::thread::spawn(move || {
            let mut got = 0;
            while rx2.recv().is_ok() {
                got += 1;
            }
            got
        });
        let tx2 = tx.clone();
        let p1 = std::thread::spawn(move || {
            for i in 0..50 {
                tx.send(i).unwrap();
            }
        });
        let p2 = std::thread::spawn(move || {
            for i in 0..50 {
                tx2.send(i).unwrap();
            }
        });
        p1.join().unwrap();
        p2.join().unwrap();
        let total = consumer1.join().unwrap() + consumer2.join().unwrap();
        assert_eq!(total, 100);
    }

    // ------------------------------------------------------------------
    // Sim/native semantic parity: the same behaviours hold under the
    // deterministic scheduler across every explored schedule.
    // ------------------------------------------------------------------

    #[test]
    fn sim_fifo_order_per_sender() {
        // One producer, one consumer: FIFO order must hold on every schedule.
        txsql_sim::explore(0..40, |sim| {
            let (tx, rx) = unbounded();
            sim.spawn("producer", move || {
                for i in 0..5u32 {
                    tx.send(i).unwrap();
                }
            });
            sim.spawn("consumer", move || {
                for expect in 0..5u32 {
                    assert_eq!(rx.recv().unwrap(), expect, "FIFO violated");
                }
                assert_eq!(rx.recv(), Err(RecvError), "disconnect after drain");
            });
        });
    }

    #[test]
    fn sim_bounded_capacity_blocks_producer() {
        // Capacity-1 channel: the producer can never get more than one value
        // ahead of the consumer, on any schedule.
        txsql_sim::explore(0..40, |sim| {
            let (tx, rx) = bounded(1);
            sim.spawn("producer", move || {
                for i in 0..4u64 {
                    tx.send(i).unwrap();
                    let depth = tx.len();
                    assert!(depth <= 1, "bounded channel overfilled (depth {depth})");
                }
            });
            sim.spawn("consumer", move || {
                for expect in 0..4u64 {
                    assert_eq!(rx.recv().unwrap(), expect, "FIFO through a full channel");
                }
            });
        });
    }

    #[test]
    fn sim_disconnect_on_drop_wakes_blocked_receiver() {
        // The receiver may be parked in recv() when the last sender drops;
        // the drop must wake it with a disconnect on every schedule.
        txsql_sim::explore(0..40, |sim| {
            let (tx, rx) = unbounded::<u32>();
            sim.spawn("producer", move || {
                tx.send(1).unwrap();
                // Sender drops here: the channel disconnects.
            });
            sim.spawn("consumer", move || {
                assert_eq!(rx.recv(), Ok(1));
                assert_eq!(rx.recv(), Err(RecvError));
            });
        });
    }

    #[test]
    fn sim_try_paths_never_block() {
        // try_send/try_recv must complete on every schedule (select-free
        // polling), with Full/Timeout/Disconnected surfaced correctly.
        txsql_sim::explore(0..40, |sim| {
            let (tx, rx) = bounded(1);
            sim.spawn("producer", move || {
                let mut sent = 0;
                let mut full = 0;
                for i in 0..6u32 {
                    match tx.try_send(i) {
                        Ok(()) => sent += 1,
                        Err(TrySendError::Full(_)) => full += 1,
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                assert_eq!(sent + full, 6, "try_send must always return");
            });
            sim.spawn("consumer", move || {
                let mut polls = 0;
                while !matches!(rx.try_recv(), Err(RecvTimeoutError::Disconnected)) {
                    polls += 1;
                    assert!(polls < 100, "try_recv livelock");
                }
            });
        });
    }

    /// Fixed-budget coverage comparison on the channel suite: producers of
    /// different sizes alternate private work (commuting) with sends into one
    /// shared channel (dependent).  The schedule class hashes the dependent
    /// accesses only, so it is the arrival order of sends at the channel that
    /// distinguishes classes.  The random walker advances every thread one
    /// yield per pick and so almost always observes the lockstep arrival
    /// order; POR compresses the private work into commuting skips, making
    /// deep send reorderings cheap — it must reach strictly more classes.
    #[test]
    fn sim_por_reaches_more_schedule_classes_than_random() {
        fn build(explorer: txsql_sim::Explorer) -> impl Fn(&mut txsql_sim::Sim) {
            move |sim: &mut txsql_sim::Sim| {
                sim.set_explorer(explorer);
                let (tx, rx) = unbounded::<(usize, u32)>();
                const CHURN: [usize; 3] = [40, 95, 150];
                for (p, &churn) in CHURN.iter().enumerate() {
                    let tx = tx.clone();
                    sim.spawn(format!("producer-{p}"), move || {
                        let h = txsql_sim::current().unwrap();
                        // Thread-private resource: churn on it never
                        // conflicts, so the POR filter may skip every switch.
                        let local = [0u8; 1];
                        let res = txsql_sim::Resource::new(
                            txsql_sim::ResourceKind::Lock,
                            txsql_sim::key_of(&local),
                        );
                        for round in 0..3u32 {
                            for _ in 0..churn {
                                h.yield_at(res);
                            }
                            tx.send((p, round)).unwrap();
                        }
                    });
                }
                drop(tx);
                sim.spawn("consumer", move || {
                    // Whatever the arrival order, per-sender FIFO holds.
                    let mut last = [None::<u32>; CHURN.len()];
                    for _ in 0..(3 * CHURN.len()) {
                        let (p, round) = rx.recv().unwrap();
                        assert!(last[p] < Some(round), "per-sender FIFO violated");
                        last[p] = Some(round);
                    }
                    assert_eq!(rx.recv(), Err(RecvError), "disconnect after drain");
                });
            }
        }
        let budget: Vec<u64> = (0..200).collect();
        let random = txsql_sim::explore_collect(budget.clone(), build(txsql_sim::Explorer::Random));
        let por = txsql_sim::explore_collect(budget, build(txsql_sim::Explorer::Por));
        println!("{}", random.line("channel/random"));
        println!("{}", por.line("channel/por"));
        assert_eq!(
            random.commuting_skips, 0,
            "the random explorer must not filter"
        );
        assert!(
            por.commuting_skips > 0,
            "the private churn must give the POR filter switches to skip"
        );
        assert!(
            por.distinct_classes > random.distinct_classes,
            "POR must reach strictly more schedule classes at a fixed budget \
             (por {} vs random {})",
            por.distinct_classes,
            random.distinct_classes
        );
    }

    #[test]
    fn sim_recv_timeout_fires_on_virtual_clock() {
        // No sender ever sends: recv_timeout must fire at the virtual-clock
        // deadline (instantly in wall time) instead of hanging the sim.
        txsql_sim::explore(0..10, |sim| {
            let (tx, rx) = unbounded::<u32>();
            sim.spawn("consumer", move || {
                let h = txsql_sim::current().unwrap();
                let start = h.now();
                assert_eq!(
                    rx.recv_timeout(Duration::from_millis(50)),
                    Err(RecvTimeoutError::Timeout)
                );
                assert!(h.now() - start >= Duration::from_millis(50));
                drop(tx); // keep the sender alive until here
            });
        });
    }
}
