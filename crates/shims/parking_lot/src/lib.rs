//! Offline shim for the `parking_lot` crate (see `crates/shims/README.md`).
//!
//! Implements the subset of the `parking_lot` 0.12 API this workspace uses —
//! `Mutex`, `RwLock` and `Condvar` with non-poisoning guards — on top of
//! `std::sync`.  Poisoning is translated into "take the lock anyway", which
//! matches `parking_lot` semantics (a panicking holder does not poison).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive (non-poisoning facade over `std::sync::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the mutex without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(MutexGuard {
                inner: Some(poison.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        RwLockReadGuard { inner: guard }
    }

    /// Acquires exclusive write access.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        RwLockWriteGuard { inner: guard }
    }

    /// Attempts shared read access without blocking.
    #[inline]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    #[inline]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    #[inline]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable compatible with [`Mutex`] / [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
    // std::sync::Condvar spurious wakeups are passed through, as in parking_lot.
    _used: AtomicBool,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
            _used: AtomicBool::new(false),
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self._used.store(true, Ordering::Relaxed);
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(poison) => {
                let (g, r) = poison.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiter.
    #[inline]
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all waiters.
    #[inline]
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_guards_data() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(5);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
        drop((r1, r2));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut guard = m.lock();
        let res = cv.wait_for(&mut guard, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        h.join().unwrap();
    }
}
