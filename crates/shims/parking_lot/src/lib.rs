//! Offline shim for the `parking_lot` crate (see `crates/shims/README.md`).
//!
//! Implements the subset of the `parking_lot` 0.12 API this workspace uses —
//! `Mutex`, `RwLock` and `Condvar` with non-poisoning guards — on top of
//! `std::sync`.  Poisoning is translated into "take the lock anyway", which
//! matches `parking_lot` semantics (a panicking holder does not poison).
//!
//! ## Deterministic-simulation instrumentation
//!
//! Because every crate in the workspace synchronises through this shim, it is
//! also the instrumentation point for the `txsql-sim` cooperative scheduler:
//! when the calling thread carries a sim handle (`txsql_sim::current()`),
//! blocking acquisitions become *yield points* and contended acquisitions
//! park the logical thread **in the scheduler** instead of the OS.  Guard
//! drops wake sim threads parked on the lock.  Threads without a handle (the
//! normal case — the check is one relaxed atomic load) use `std::sync`
//! exactly as before, so production behaviour is unchanged and there is no
//! `#[cfg]` split between tested and shipped code.
//!
//! One rule follows from this design: within a sim run, instrumented locks
//! must only be shared among sim-spawned threads — a non-sim thread's guard
//! drop does not wake sim waiters.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use txsql_sim::{Resource, ResourceKind};

/// A mutual-exclusion primitive (non-poisoning facade over `std::sync::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Non-blocking acquisition of the underlying std mutex (poison-stripping).
    #[inline]
    fn raw_try_lock(&self) -> Option<std::sync::MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquires the mutex, blocking until it is available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Some(handle) = txsql_sim::current() {
            let key = txsql_sim::key_of(self);
            // Preemption point, tagged with the lock: only threads whose next
            // step may touch this lock are switch candidates under POR.
            handle.yield_at(Resource::new(ResourceKind::Lock, key));
            loop {
                if let Some(guard) = self.raw_try_lock() {
                    return MutexGuard {
                        lock: self,
                        inner: Some(guard),
                        sim_key: Some(key),
                    };
                }
                handle.park_at(key, ResourceKind::Lock);
            }
        }
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        MutexGuard {
            lock: self,
            inner: Some(guard),
            sim_key: None,
        }
    }

    /// Attempts to acquire the mutex without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let sim_key = txsql_sim::current().map(|_| txsql_sim::key_of(self));
        self.raw_try_lock().map(|g| MutexGuard {
            lock: self,
            inner: Some(g),
            sim_key,
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    /// The owning shim mutex — needed so `Condvar` can re-acquire under sim.
    lock: &'a Mutex<T>,
    // `Option` so Condvar::wait can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// Sim resource key when acquired by a sim thread; guard drop then wakes
    /// sim threads parked on the lock.
    sim_key: Option<usize>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the lock first, then wake sim waiters.
        self.inner.take();
        if let Some(key) = self.sim_key {
            if let Some(handle) = txsql_sim::current() {
                handle.unpark_all(key);
            }
        }
    }
}

/// A reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    #[inline]
    fn raw_try_read(&self) -> Option<std::sync::RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    #[inline]
    fn raw_try_write(&self) -> Option<std::sync::RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquires shared read access.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        if let Some(handle) = txsql_sim::current() {
            let key = txsql_sim::key_of(self);
            handle.yield_at(Resource::new(ResourceKind::Lock, key));
            loop {
                if let Some(guard) = self.raw_try_read() {
                    return RwLockReadGuard {
                        inner: Some(guard),
                        sim_key: Some(key),
                    };
                }
                handle.park_at(key, ResourceKind::Lock);
            }
        }
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        RwLockReadGuard {
            inner: Some(guard),
            sim_key: None,
        }
    }

    /// Acquires exclusive write access.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if let Some(handle) = txsql_sim::current() {
            let key = txsql_sim::key_of(self);
            handle.yield_at(Resource::new(ResourceKind::Lock, key));
            loop {
                if let Some(guard) = self.raw_try_write() {
                    return RwLockWriteGuard {
                        inner: Some(guard),
                        sim_key: Some(key),
                    };
                }
                handle.park_at(key, ResourceKind::Lock);
            }
        }
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        RwLockWriteGuard {
            inner: Some(guard),
            sim_key: None,
        }
    }

    /// Attempts shared read access without blocking.
    #[inline]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let sim_key = txsql_sim::current().map(|_| txsql_sim::key_of(self));
        self.raw_try_read().map(|g| RwLockReadGuard {
            inner: Some(g),
            sim_key,
        })
    }

    /// Attempts exclusive write access without blocking.
    #[inline]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let sim_key = txsql_sim::current().map(|_| txsql_sim::key_of(self));
        self.raw_try_write().map(|g| RwLockWriteGuard {
            inner: Some(g),
            sim_key,
        })
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    sim_key: Option<usize>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        if let Some(key) = self.sim_key {
            if let Some(handle) = txsql_sim::current() {
                handle.unpark_all(key);
            }
        }
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    sim_key: Option<usize>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        if let Some(key) = self.sim_key {
            if let Some(handle) = txsql_sim::current() {
                handle.unpark_all(key);
            }
        }
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    #[inline]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable compatible with [`Mutex`] / [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
    // std::sync::Condvar spurious wakeups are passed through, as in parking_lot.
    _used: AtomicBool,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
            _used: AtomicBool::new(false),
        }
    }

    /// Sim path shared by `wait` and `wait_for`: release the mutex, park on
    /// the condvar key, re-acquire.  Returns whether the park timed out.
    fn sim_wait<T: ?Sized>(
        &self,
        handle: &txsql_sim::SimHandle,
        guard: &mut MutexGuard<'_, T>,
        timeout: Option<Duration>,
    ) -> bool {
        let mutex_key = txsql_sim::key_of(guard.lock);
        let cv_key = txsql_sim::key_of(self);
        // Release the lock (waking sim threads parked on it), then park on
        // the condvar.  Cooperative scheduling makes release+park atomic with
        // respect to other sim threads, so notifies cannot be lost.
        guard.inner.take();
        handle.unpark_all(mutex_key);
        let timed_out = match timeout {
            Some(t) => handle.park_timeout_at(cv_key, ResourceKind::Condvar, t),
            None => {
                handle.park_at(cv_key, ResourceKind::Condvar);
                false
            }
        };
        // Re-acquire the mutex before returning, as a condvar must.
        loop {
            if let Some(g) = guard.lock.raw_try_lock() {
                guard.inner = Some(g);
                return timed_out;
            }
            handle.park_at(mutex_key, ResourceKind::Lock);
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self._used.store(true, Ordering::Relaxed);
        if let Some(handle) = txsql_sim::current() {
            self.sim_wait(&handle, guard, None);
            return;
        }
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        if let Some(handle) = txsql_sim::current() {
            let timed_out = self.sim_wait(&handle, guard, Some(timeout));
            return WaitTimeoutResult { timed_out };
        }
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(poison) => {
                let (g, r) = poison.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiter.
    #[inline]
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        if let Some(handle) = txsql_sim::current() {
            // Sim waiters re-check their condition on wake, so waking all is
            // a sound (spurious-wakeup-compatible) notify_one.
            handle.unpark_all(txsql_sim::key_of(self));
        }
        true
    }

    /// Wakes all waiters.
    #[inline]
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        if let Some(handle) = txsql_sim::current() {
            handle.unpark_all(txsql_sim::key_of(self));
        }
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_guards_data() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(5);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
        drop((r1, r2));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut guard = m.lock();
        let res = cv.wait_for(&mut guard, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        h.join().unwrap();
    }

    #[test]
    fn sim_threads_interleave_inside_critical_sections() {
        // Mutual exclusion must hold across every explored schedule, and the
        // shim's yield points must let the scheduler preempt at lock
        // boundaries.
        txsql_sim::explore(0..20, |sim| {
            let m = Arc::new(Mutex::new((0u64, false)));
            for i in 0..3 {
                let m = Arc::clone(&m);
                sim.spawn(format!("locker-{i}"), move || {
                    for _ in 0..3 {
                        let mut g = m.lock();
                        assert!(!g.1, "two threads inside one critical section");
                        g.1 = true;
                        txsql_sim::current().unwrap().yield_now();
                        g.1 = false;
                        g.0 += 1;
                    }
                });
            }
        });
    }

    #[test]
    fn sim_condvar_wakes_parked_thread() {
        txsql_sim::explore(0..20, |sim| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p1 = Arc::clone(&pair);
            sim.spawn("waiter", move || {
                let (m, cv) = &*p1;
                let mut ready = m.lock();
                while !*ready {
                    cv.wait(&mut ready);
                }
            });
            let p2 = Arc::clone(&pair);
            sim.spawn("setter", move || {
                let (m, cv) = &*p2;
                *m.lock() = true;
                cv.notify_all();
            });
        });
    }

    #[test]
    fn sim_rwlock_writer_waits_for_readers() {
        txsql_sim::explore(0..20, |sim| {
            let l = Arc::new(RwLock::new(0u64));
            for i in 0..2 {
                let l = Arc::clone(&l);
                sim.spawn(format!("reader-{i}"), move || {
                    let v = *l.read();
                    assert!(v == 0 || v == 7);
                });
            }
            let l2 = Arc::clone(&l);
            sim.spawn("writer", move || {
                *l2.write() = 7;
            });
        });
    }
}
