//! An in-memory replica.
//!
//! A replica is a key-value view of the replicated tables: applying a binlog
//! transaction overwrites the after-image of every row it changed.  Replicas
//! track the highest commit sequence number they have applied so the
//! semi-sync hook and the lag metrics can reason about how far behind they
//! are, and they can be compared against the primary for the consistency
//! checks the paper performs before going live (§6.4.5).

use parking_lot::Mutex;
use txsql_common::fxhash::FxHashMap;
use txsql_common::{Row, TableId};
use txsql_core::BinlogTxn;

/// One replica's applied state.
#[derive(Debug, Default)]
pub struct Replica {
    name: String,
    /// Per-row newest applied commit number and row image.  Keeping the
    /// commit number makes application idempotent and order-tolerant: an
    /// older event can never overwrite a newer row image, which is how the
    /// parallel replay modes stay convergent.
    rows: Mutex<FxHashMap<(TableId, i64), (u64, Row)>>,
    applied_trx_no: Mutex<u64>,
    applied_txns: Mutex<u64>,
}

impl Replica {
    /// Creates an empty replica.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            rows: Mutex::new(FxHashMap::default()),
            applied_trx_no: Mutex::new(0),
            applied_txns: Mutex::new(0),
        }
    }

    /// The replica's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Applies one committed transaction.  Per row, only an event with a
    /// commit number at least as new as the stored one overwrites the image.
    pub fn apply(&self, event: &BinlogTxn) {
        let mut rows = self.rows.lock();
        for (table, pk, row) in &event.changes {
            let entry = rows.entry((*table, *pk));
            match entry {
                std::collections::hash_map::Entry::Occupied(mut occupied) => {
                    if occupied.get().0 <= event.trx_no {
                        occupied.insert((event.trx_no, row.clone()));
                    }
                }
                std::collections::hash_map::Entry::Vacant(vacant) => {
                    vacant.insert((event.trx_no, row.clone()));
                }
            }
        }
        let mut applied = self.applied_trx_no.lock();
        *applied = (*applied).max(event.trx_no);
        *self.applied_txns.lock() += 1;
    }

    /// Applies a batch in order.
    pub fn apply_batch(&self, batch: &[BinlogTxn]) {
        for event in batch {
            self.apply(event);
        }
    }

    /// Highest commit sequence number applied.
    pub fn applied_trx_no(&self) -> u64 {
        *self.applied_trx_no.lock()
    }

    /// Number of transactions applied.
    pub fn applied_txns(&self) -> u64 {
        *self.applied_txns.lock()
    }

    /// Current value of a replicated row.
    pub fn row(&self, table: TableId, pk: i64) -> Option<Row> {
        self.rows
            .lock()
            .get(&(table, pk))
            .map(|(_, row)| row.clone())
    }

    /// Number of distinct rows the replica holds.
    pub fn row_count(&self) -> usize {
        self.rows.lock().len()
    }

    /// Checks that every row the replica holds matches the primary's
    /// committed value.  Returns the list of mismatching `(table, pk)` pairs.
    pub fn diverging_rows<F>(&self, primary_committed: F) -> Vec<(TableId, i64)>
    where
        F: Fn(TableId, i64) -> Option<Row>,
    {
        let rows = self.rows.lock();
        rows.iter()
            .filter_map(
                |((table, pk), (_, replica_row))| match primary_committed(*table, *pk) {
                    Some(primary_row) if primary_row == *replica_row => None,
                    _ => Some((*table, *pk)),
                },
            )
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txsql_common::TxnId;

    fn event(trx_no: u64, pk: i64, value: i64) -> BinlogTxn {
        BinlogTxn {
            txn: TxnId(trx_no),
            trx_no,
            changes: vec![(TableId(1), pk, Row::from_ints(&[pk, value]))],
            involves_hotspot: false,
        }
    }

    #[test]
    fn apply_overwrites_rows_in_order() {
        let replica = Replica::new("r1");
        replica.apply_batch(&[event(1, 5, 10), event(2, 5, 20), event(3, 6, 30)]);
        assert_eq!(replica.row(TableId(1), 5).unwrap().get_int(1), Some(20));
        assert_eq!(replica.row(TableId(1), 6).unwrap().get_int(1), Some(30));
        assert_eq!(replica.applied_trx_no(), 3);
        assert_eq!(replica.applied_txns(), 3);
        assert_eq!(replica.row_count(), 2);
        assert_eq!(replica.name(), "r1");
    }

    #[test]
    fn divergence_check_reports_mismatches() {
        let replica = Replica::new("r1");
        replica.apply(&event(1, 5, 10));
        replica.apply(&event(2, 6, 20));
        let diverging = replica.diverging_rows(|table, pk| {
            if pk == 5 {
                Some(Row::from_ints(&[5, 10]))
            } else {
                let _ = table;
                Some(Row::from_ints(&[6, 999]))
            }
        });
        assert_eq!(diverging, vec![(TableId(1), 6)]);
    }

    #[test]
    fn missing_primary_row_counts_as_divergence() {
        let replica = Replica::new("r1");
        replica.apply(&event(1, 7, 70));
        let diverging = replica.diverging_rows(|_, _| None);
        assert_eq!(diverging.len(), 1);
    }
}
