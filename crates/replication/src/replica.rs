//! An in-memory replica.
//!
//! A replica is a key-value view of the replicated tables: applying a binlog
//! transaction overwrites the after-image of every row it changed.  Replicas
//! track the highest commit sequence number they have applied so the
//! semi-sync hook and the lag metrics can reason about how far behind they
//! are, and they can be compared against the primary for the consistency
//! checks the paper performs before going live (§6.4.5).
//!
//! For the semi-sync ack protocol the replica additionally models a *relay
//! log position* — the index of the next binlog batch entry it expects.
//! Deliveries are position-addressed ([`Replica::deliver`]): a delivery that
//! starts past the expected position is rejected with a [`DeliverOutcome::Nack`]
//! carrying the expected position (the primary re-ships the gap from its
//! retained binlog buffer), a delivery entirely below it is an idempotent
//! duplicate, and anything else applies the new suffix.  The position and the
//! row images survive a [`Replica::crash`] — they model durable relay-log
//! state — while in-flight stall bookkeeping does not.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use txsql_common::fxhash::FxHashMap;
use txsql_common::time::SimInstant;
use txsql_common::{Row, TableId};
use txsql_core::BinlogTxn;

/// The replica's answer to one position-addressed delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliverOutcome {
    /// The delivery was accepted (or was a pure duplicate); the payload is
    /// the replica's cumulative acknowledged position — the index one past
    /// the last binlog entry it has applied.
    Ack(u64),
    /// The delivery started past the replica's relay position: there is a
    /// gap.  The primary should re-ship from `expected`.
    Nack {
        /// The binlog position the replica expected to receive next.
        expected: u64,
    },
    /// The replica is crashed; nothing was applied and no ack will come.
    Offline,
    /// The replica is stalled (injected fault); nothing was applied and no
    /// ack will come until the stall expires and the primary retries.
    Stalled,
}

/// One replica's applied state.
#[derive(Debug)]
pub struct Replica {
    name: String,
    /// Per-row newest applied commit number and row image.  Keeping the
    /// commit number makes application idempotent and order-tolerant: an
    /// older event can never overwrite a newer row image, which is how the
    /// parallel replay modes stay convergent.
    rows: Mutex<FxHashMap<(TableId, i64), (u64, Row)>>,
    applied_trx_no: Mutex<u64>,
    applied_txns: Mutex<u64>,
    /// Next expected binlog position (index into the primary's retained
    /// binlog buffer).  Durable across [`Replica::crash`].
    log_pos: Mutex<u64>,
    /// False while crashed.
    online: AtomicBool,
    /// Injected stall: deliveries are ignored until this instant passes.
    stall_until: Mutex<Option<SimInstant>>,
}

impl Replica {
    /// Creates an empty, online replica.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            rows: Mutex::new(FxHashMap::default()),
            applied_trx_no: Mutex::new(0),
            applied_txns: Mutex::new(0),
            log_pos: Mutex::new(0),
            online: AtomicBool::new(true),
            stall_until: Mutex::new(None),
        }
    }

    /// The replica's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Applies one committed transaction.  Per row, only an event with a
    /// commit number at least as new as the stored one overwrites the image.
    pub fn apply(&self, event: &BinlogTxn) {
        let mut rows = self.rows.lock();
        for (table, pk, row) in &event.changes {
            let entry = rows.entry((*table, *pk));
            match entry {
                std::collections::hash_map::Entry::Occupied(mut occupied) => {
                    if occupied.get().0 <= event.trx_no {
                        occupied.insert((event.trx_no, row.clone()));
                    }
                }
                std::collections::hash_map::Entry::Vacant(vacant) => {
                    vacant.insert((event.trx_no, row.clone()));
                }
            }
        }
        let mut applied = self.applied_trx_no.lock();
        *applied = (*applied).max(event.trx_no);
        *self.applied_txns.lock() += 1;
    }

    /// Applies a batch in order.
    pub fn apply_batch(&self, batch: &[BinlogTxn]) {
        for event in batch {
            self.apply(event);
        }
    }

    /// One position-addressed delivery from the primary: `events` are the
    /// binlog entries at positions `start_pos..start_pos + events.len()`.
    /// Applies only the suffix the replica has not seen yet (duplicates and
    /// overlaps are skipped — the count of applied transactions moves once
    /// per transaction no matter how often it is re-shipped) and returns the
    /// new cumulative acknowledged position.
    pub fn deliver(&self, start_pos: u64, events: &[BinlogTxn], now: SimInstant) -> DeliverOutcome {
        if !self.is_online() {
            return DeliverOutcome::Offline;
        }
        if self.is_stalled(now) {
            return DeliverOutcome::Stalled;
        }
        let mut pos = self.log_pos.lock();
        if start_pos > *pos {
            return DeliverOutcome::Nack { expected: *pos };
        }
        let already = (*pos - start_pos) as usize;
        if already < events.len() {
            for event in &events[already..] {
                self.apply(event);
            }
            *pos = start_pos + events.len() as u64;
        }
        DeliverOutcome::Ack(*pos)
    }

    /// The replica's relay position: the index one past the last binlog
    /// entry it has applied.
    pub fn log_pos(&self) -> u64 {
        *self.log_pos.lock()
    }

    /// Whether the replica is up (not crashed).
    pub fn is_online(&self) -> bool {
        self.online.load(Ordering::Acquire)
    }

    /// Whether an injected stall is still in force at `now`.
    pub fn is_stalled(&self, now: SimInstant) -> bool {
        self.stall_until.lock().is_some_and(|until| now < until)
    }

    /// Crashes the replica: it stops answering deliveries.  Applied rows and
    /// the relay position survive — they model durable relay-log state — but
    /// any stall bookkeeping is dropped with the process.
    pub fn crash(&self) {
        self.online.store(false, Ordering::Release);
        *self.stall_until.lock() = None;
    }

    /// Restarts a crashed replica; it resumes from its durable relay position.
    pub fn restart(&self) {
        self.online.store(true, Ordering::Release);
    }

    /// Injects a stall: deliveries are ignored until `now + duration`.
    pub fn stall_for(&self, duration: std::time::Duration, now: SimInstant) {
        *self.stall_until.lock() = Some(now + duration);
    }

    /// Highest commit sequence number applied.
    pub fn applied_trx_no(&self) -> u64 {
        *self.applied_trx_no.lock()
    }

    /// Number of transactions applied.
    pub fn applied_txns(&self) -> u64 {
        *self.applied_txns.lock()
    }

    /// Current value of a replicated row.
    pub fn row(&self, table: TableId, pk: i64) -> Option<Row> {
        self.rows
            .lock()
            .get(&(table, pk))
            .map(|(_, row)| row.clone())
    }

    /// Number of distinct rows the replica holds.
    pub fn row_count(&self) -> usize {
        self.rows.lock().len()
    }

    /// Checks that every row the replica holds matches the primary's
    /// committed value.  Returns the list of mismatching `(table, pk)` pairs.
    pub fn diverging_rows<F>(&self, primary_committed: F) -> Vec<(TableId, i64)>
    where
        F: Fn(TableId, i64) -> Option<Row>,
    {
        let rows = self.rows.lock();
        rows.iter()
            .filter_map(
                |((table, pk), (_, replica_row))| match primary_committed(*table, *pk) {
                    Some(primary_row) if primary_row == *replica_row => None,
                    _ => Some((*table, *pk)),
                },
            )
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use txsql_common::TxnId;

    fn event(trx_no: u64, pk: i64, value: i64) -> BinlogTxn {
        BinlogTxn {
            txn: TxnId(trx_no),
            trx_no,
            changes: vec![(TableId(1), pk, Row::from_ints(&[pk, value]))],
            involves_hotspot: false,
        }
    }

    #[test]
    fn apply_overwrites_rows_in_order() {
        let replica = Replica::new("r1");
        replica.apply_batch(&[event(1, 5, 10), event(2, 5, 20), event(3, 6, 30)]);
        assert_eq!(replica.row(TableId(1), 5).unwrap().get_int(1), Some(20));
        assert_eq!(replica.row(TableId(1), 6).unwrap().get_int(1), Some(30));
        assert_eq!(replica.applied_trx_no(), 3);
        assert_eq!(replica.applied_txns(), 3);
        assert_eq!(replica.row_count(), 2);
        assert_eq!(replica.name(), "r1");
    }

    #[test]
    fn divergence_check_reports_mismatches() {
        let replica = Replica::new("r1");
        replica.apply(&event(1, 5, 10));
        replica.apply(&event(2, 6, 20));
        let diverging = replica.diverging_rows(|table, pk| {
            if pk == 5 {
                Some(Row::from_ints(&[5, 10]))
            } else {
                let _ = table;
                Some(Row::from_ints(&[6, 999]))
            }
        });
        assert_eq!(diverging, vec![(TableId(1), 6)]);
    }

    #[test]
    fn missing_primary_row_counts_as_divergence() {
        let replica = Replica::new("r1");
        replica.apply(&event(1, 7, 70));
        let diverging = replica.diverging_rows(|_, _| None);
        assert_eq!(diverging.len(), 1);
    }

    #[test]
    fn out_of_order_apply_converges_via_trx_no_guard() {
        let forward = Replica::new("forward");
        let backward = Replica::new("backward");
        let events = [event(1, 5, 10), event(2, 5, 20), event(3, 5, 30)];
        forward.apply_batch(&events);
        for e in events.iter().rev() {
            backward.apply(e);
        }
        // Both orders converge on the newest image.
        assert_eq!(forward.row(TableId(1), 5).unwrap().get_int(1), Some(30));
        assert_eq!(backward.row(TableId(1), 5).unwrap().get_int(1), Some(30));
        assert_eq!(backward.applied_trx_no(), 3);
    }

    #[test]
    fn deliver_is_idempotent_and_detects_gaps() {
        let replica = Replica::new("r1");
        let now = SimInstant::now();
        let batch1 = vec![event(1, 5, 10), event(2, 6, 20)];
        let batch2 = vec![event(3, 5, 30)];

        // A delivery past the relay position is rejected with the gap start.
        assert_eq!(
            replica.deliver(2, &batch2, now),
            DeliverOutcome::Nack { expected: 0 }
        );
        assert_eq!(replica.applied_txns(), 0);

        assert_eq!(replica.deliver(0, &batch1, now), DeliverOutcome::Ack(2));
        // An exact duplicate applies nothing but re-acks the position.
        assert_eq!(replica.deliver(0, &batch1, now), DeliverOutcome::Ack(2));
        assert_eq!(replica.applied_txns(), 2);

        // An overlapping re-ship applies only the unseen suffix.
        let overlap: Vec<BinlogTxn> = batch1.iter().chain(batch2.iter()).cloned().collect();
        assert_eq!(replica.deliver(0, &overlap, now), DeliverOutcome::Ack(3));
        assert_eq!(replica.applied_txns(), 3);
        assert_eq!(replica.row(TableId(1), 5).unwrap().get_int(1), Some(30));
        assert_eq!(replica.log_pos(), 3);

        // An empty delivery at the current position is a pure ack refresh.
        assert_eq!(replica.deliver(3, &[], now), DeliverOutcome::Ack(3));
    }

    #[test]
    fn crash_preserves_relay_state_and_stall_expires() {
        let replica = Replica::new("r1");
        let now = SimInstant::now();
        assert_eq!(
            replica.deliver(0, &[event(1, 5, 10)], now),
            DeliverOutcome::Ack(1)
        );

        replica.crash();
        assert!(!replica.is_online());
        assert_eq!(
            replica.deliver(1, &[event(2, 5, 20)], now),
            DeliverOutcome::Offline
        );
        replica.restart();
        // Relay position and rows survived the crash.
        assert_eq!(replica.log_pos(), 1);
        assert_eq!(replica.row(TableId(1), 5).unwrap().get_int(1), Some(10));

        replica.stall_for(Duration::from_millis(5), now);
        assert_eq!(
            replica.deliver(1, &[event(2, 5, 20)], now),
            DeliverOutcome::Stalled
        );
        let later = now + Duration::from_millis(6);
        assert!(!replica.is_stalled(later));
        assert_eq!(
            replica.deliver(1, &[event(2, 5, 20)], later),
            DeliverOutcome::Ack(2)
        );
    }
}
