//! # txsql-replication
//!
//! Replication substrate for the TXSQL reproduction.
//!
//! The paper's customer deployments run with one primary and two
//! (semi-)synchronous replicas (§6.1, §6.4.1); the extra commit latency this
//! adds is exactly what makes queue locking lose its edge and group locking
//! shine (Figure 2b, Figure 9).  This crate provides:
//!
//! * [`replica::Replica`] — an in-memory replica that applies binlog events,
//!   answers position-addressed deliveries with cumulative acknowledgements,
//!   and can be checked for consistency against the primary;
//! * [`hook::ReplicationHook`] — a [`txsql_core::CommitHook`] that ships each
//!   commit batch to the replicas either *semi-synchronously* (the commit
//!   waits for a configurable ack quorum under an `rpl_semi_sync`-style
//!   timeout, degrading to asynchronous shipping on timeout and re-syncing
//!   once the replicas catch up) or *asynchronously* (a bounded queue drained
//!   in the background; a full queue sheds observably);
//! * [`mod@ack`] — the ack protocol: position-based cumulative
//!   acknowledgements, the quorum tracker and the semi-sync ↔ degraded state
//!   machine configuration;
//! * [`mod@fault`] — seeded fault plans for the replication path (ack drop,
//!   replica stall, replica crash/restart, transient ship errors), the
//!   replication-side counterpart of [`txsql_storage::fault`];
//! * [`mod@replay`] — offline binlog replay in single-threaded and parallel
//!   modes, including the §4.6.3 restriction that hotspot transactions are
//!   never replayed in parallel.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod ack;
pub mod fault;
pub mod hook;
pub mod replay;
pub mod replica;

pub use ack::{AckTracker, SemiSyncConfig, SyncState};
pub use fault::{ReplFaultPlan, ReplFaultPoint, ReplFaults};
pub use hook::{ReplicationHook, ReplicationHookBuilder, ReplicationMode};
pub use replay::{replay, ReplayMode, ReplayReport};
pub use replica::{DeliverOutcome, Replica};
