//! # txsql-replication
//!
//! Replication substrate for the TXSQL reproduction.
//!
//! The paper's customer deployments run with one primary and two
//! (semi-)synchronous replicas (§6.1, §6.4.1); the extra commit latency this
//! adds is exactly what makes queue locking lose its edge and group locking
//! shine (Figure 2b, Figure 9).  This crate provides:
//!
//! * [`replica::Replica`] — an in-memory replica that applies binlog events
//!   and can be checked for consistency against the primary;
//! * [`hook::ReplicationHook`] — a [`txsql_core::CommitHook`] that ships each
//!   commit batch to the replicas either *synchronously* (the commit blocks
//!   for the simulated network round trip — semi-sync) or *asynchronously*
//!   (a background applier drains a channel and the primary never waits);
//! * [`mod@replay`] — offline binlog replay in single-threaded and parallel
//!   modes, including the §4.6.3 restriction that hotspot transactions are
//!   never replayed in parallel.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod hook;
pub mod replay;
pub mod replica;

pub use hook::{ReplicationHook, ReplicationMode};
pub use replay::{replay, ReplayMode, ReplayReport};
pub use replica::Replica;
