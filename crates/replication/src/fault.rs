//! Fault injection for the replication path, in the style of
//! [`txsql_storage::fault`].
//!
//! A [`ReplFaultPlan`] is pure data describing which *named fault point*
//! fires and when; [`ReplFaults`] is the runtime injector the
//! [`crate::ReplicationHook`] consults on its shipping path.  The points:
//!
//! * [`ReplFaultPoint::AckDrop`] — a replica applies a delivery but its
//!   acknowledgement is lost; the primary must re-request it (idempotent
//!   re-delivery) or time out and degrade.
//! * [`ReplFaultPoint::ReplicaStall`] — a replica stops answering for a
//!   bounded duration (GC pause, network partition); a stall longer than the
//!   ack timeout forces the semi-sync → async degrade, and its expiry is how
//!   the re-sync path is exercised.
//! * [`ReplFaultPoint::ReplicaCrash`] — a replica goes down mid-stream and
//!   (optionally) restarts later from its durable relay position.
//! * [`ReplFaultPoint::ShipError`] — the primary's send fails transiently;
//!   the hook retries with bounded backoff.
//!
//! Everything is deterministic: the plan counts *deliveries per replica* (and
//! ship attempts globally), so under the deterministic simulator the same
//! seed yields the same fault schedule.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use txsql_common::time::SimInstant;

/// The named replication fault points (coverage meta-assertions key off
/// [`ReplFaultPoint::name`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplFaultPoint {
    /// A delivery's acknowledgement is dropped on the way back.
    AckDrop,
    /// A replica stops answering deliveries for a bounded duration.
    ReplicaStall,
    /// A replica crashes (and may restart later).
    ReplicaCrash,
    /// The primary's ship attempt fails transiently.
    ShipError,
}

impl ReplFaultPoint {
    /// All replication fault points, in declaration order.
    pub const ALL: [ReplFaultPoint; 4] = [
        ReplFaultPoint::AckDrop,
        ReplFaultPoint::ReplicaStall,
        ReplFaultPoint::ReplicaCrash,
        ReplFaultPoint::ShipError,
    ];

    /// Stable snake_case name (used in traces and coverage assertions).
    pub fn name(&self) -> &'static str {
        match self {
            ReplFaultPoint::AckDrop => "ack_drop",
            ReplFaultPoint::ReplicaStall => "replica_stall",
            ReplFaultPoint::ReplicaCrash => "replica_crash",
            ReplFaultPoint::ShipError => "ship_error",
        }
    }

    fn index(&self) -> usize {
        match self {
            ReplFaultPoint::AckDrop => 0,
            ReplFaultPoint::ReplicaStall => 1,
            ReplFaultPoint::ReplicaCrash => 2,
            ReplFaultPoint::ShipError => 3,
        }
    }
}

/// A declarative replication fault schedule (pure data, like
/// [`txsql_storage::fault::FaultPlan`]).
#[derive(Debug, Clone, Default)]
pub struct ReplFaultPlan {
    /// Drop the ack of the `nth` delivery to replica `replica` (1-based).
    pub ack_drop: Option<(usize, u64)>,
    /// Stall replica(s) at their `nth` delivery for `duration`.  `None` as
    /// the replica index stalls *every* replica (the whole follower tier
    /// pauses — the scenario that must degrade the primary, not wedge it).
    pub stall: Option<(Option<usize>, u64, Duration)>,
    /// Crash replica `replica` at its `nth` delivery; restart it
    /// `restart_after` later (never, if `None`).
    pub crash: Option<(usize, u64, Option<Duration>)>,
    /// Fail this many ship attempts transiently before sends succeed.
    pub ship_errors: u32,
}

impl ReplFaultPlan {
    /// No replication faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan injects anything at all.
    pub fn is_active(&self) -> bool {
        self.ack_drop.is_some()
            || self.stall.is_some()
            || self.crash.is_some()
            || self.ship_errors > 0
    }

    /// Drops the ack of replica `replica`'s `nth` delivery.
    pub fn with_ack_drop(mut self, replica: usize, nth: u64) -> Self {
        self.ack_drop = Some((replica, nth));
        self
    }

    /// Stalls `replica` (or every replica when `None`) at its `nth` delivery
    /// for `duration`.
    pub fn with_stall(mut self, replica: Option<usize>, nth: u64, duration: Duration) -> Self {
        self.stall = Some((replica, nth, duration));
        self
    }

    /// Crashes `replica` at its `nth` delivery, restarting it `restart_after`
    /// later (never, if `None`).
    pub fn with_crash(mut self, replica: usize, nth: u64, restart_after: Option<Duration>) -> Self {
        self.crash = Some((replica, nth, restart_after));
        self
    }

    /// Fails the first `n` ship attempts transiently.
    pub fn with_ship_errors(mut self, n: u32) -> Self {
        self.ship_errors = n;
        self
    }

    /// A short kebab-case label for benchmark cell ids: the single fault the
    /// plan injects, or `mixed` when it injects several.
    pub fn label(&self) -> &'static str {
        let kinds = [
            self.ack_drop.is_some(),
            self.stall.is_some(),
            self.crash.is_some(),
            self.ship_errors > 0,
        ];
        match kinds.iter().filter(|&&k| k).count() {
            0 => "none",
            1 if self.ack_drop.is_some() => "ack-drop",
            1 if self.stall.is_some() => "stall",
            1 if self.crash.is_some() => "crash",
            1 => "ship-err",
            _ => "mixed",
        }
    }

    /// Derives a deterministic plan from an exploration seed: `(seed / 4) % 4`
    /// picks the fault point — deliberately offset from the crash-point
    /// dimension of [`txsql_storage::fault::FaultPlan::seeded_binlog`], which
    /// uses `seed % 4`, so a sweep pairs every fault with every crash point —
    /// and the remaining bits vary which replica, which delivery, and how
    /// long.  Stalls hit *all* replicas so even an ack quorum of 1 degrades.
    pub fn seeded(seed: u64) -> Self {
        let replica = (seed % 2) as usize;
        let nth = 1 + seed % 4;
        match (seed / 4) % 4 {
            0 => Self::none().with_ack_drop(replica, nth),
            1 => Self::none().with_stall(None, nth, Duration::from_millis(4 + (seed % 3) * 4)),
            2 => Self::none().with_crash(replica, nth, Some(Duration::from_millis(5))),
            _ => Self::none().with_ship_errors(1 + (seed % 2) as u32),
        }
    }
}

/// What an injected fault asks the hook to do with one delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryFault {
    /// Deliver normally.
    None,
    /// Deliver, but lose the acknowledgement.
    DropAck,
    /// Stall the replica for the duration before delivering anything.
    Stall(Duration),
    /// Crash the replica; restart it after the duration (never, if `None`).
    Crash(Option<Duration>),
}

/// Runtime injector state for one hook: per-replica delivery counters, the
/// global ship-attempt counter, per-point hit counts (for the coverage
/// meta-assertions), and the pending replica-restart deadlines the hook's
/// pump processes.
#[derive(Debug)]
pub struct ReplFaults {
    plan: ReplFaultPlan,
    deliveries: Mutex<Vec<u64>>,
    ship_attempts: AtomicU64,
    hits: [AtomicU64; ReplFaultPoint::ALL.len()],
    restarts: Mutex<Vec<(usize, SimInstant)>>,
}

impl ReplFaults {
    /// An injector executing `plan` against `n_replicas` replicas.
    pub fn new(plan: ReplFaultPlan, n_replicas: usize) -> Self {
        Self {
            plan,
            deliveries: Mutex::new(vec![0; n_replicas]),
            ship_attempts: AtomicU64::new(0),
            hits: std::array::from_fn(|_| AtomicU64::new(0)),
            restarts: Mutex::new(Vec::new()),
        }
    }

    /// An injector that never fires.
    pub fn disabled(n_replicas: usize) -> Self {
        Self::new(ReplFaultPlan::none(), n_replicas)
    }

    /// The plan in force.
    pub fn plan(&self) -> &ReplFaultPlan {
        &self.plan
    }

    /// Counts one primary-side ship attempt; `false` means the plan injected
    /// a transient failure and the hook should back off and retry.
    pub fn ship_attempt_ok(&self) -> bool {
        let n = self.ship_attempts.fetch_add(1, Ordering::AcqRel);
        if n < u64::from(self.plan.ship_errors) {
            self.hits[ReplFaultPoint::ShipError.index()].fetch_add(1, Ordering::AcqRel);
            false
        } else {
            true
        }
    }

    /// Counts one *fresh* delivery to `replica` (catch-up re-deliveries count
    /// too — each counted delivery is one chance for a fault to land) and
    /// returns what, if anything, the plan injects on it.  A crash fault
    /// records the restart deadline for [`ReplFaults::due_restarts`].
    pub fn on_delivery(&self, replica: usize, now: SimInstant) -> DeliveryFault {
        let n = {
            let mut counts = self.deliveries.lock();
            counts[replica] += 1;
            counts[replica]
        };
        if let Some((target, nth, restart_after)) = self.plan.crash {
            if target == replica && n == nth {
                self.hits[ReplFaultPoint::ReplicaCrash.index()].fetch_add(1, Ordering::AcqRel);
                if let Some(after) = restart_after {
                    self.restarts.lock().push((replica, now + after));
                }
                return DeliveryFault::Crash(restart_after);
            }
        }
        if let Some((target, nth, duration)) = self.plan.stall {
            if target.is_none_or(|t| t == replica) && n == nth {
                self.hits[ReplFaultPoint::ReplicaStall.index()].fetch_add(1, Ordering::AcqRel);
                return DeliveryFault::Stall(duration);
            }
        }
        if let Some((target, nth)) = self.plan.ack_drop {
            if target == replica && n == nth {
                self.hits[ReplFaultPoint::AckDrop.index()].fetch_add(1, Ordering::AcqRel);
                return DeliveryFault::DropAck;
            }
        }
        DeliveryFault::None
    }

    /// Drains the replica restarts whose deadline has passed at `now`.
    pub fn due_restarts(&self, now: SimInstant) -> Vec<usize> {
        let mut restarts = self.restarts.lock();
        let mut due = Vec::new();
        restarts.retain(|(replica, at)| {
            if *at <= now {
                due.push(*replica);
                false
            } else {
                true
            }
        });
        due
    }

    /// How often `point` fired (coverage meta-assertions).
    pub fn hits_of(&self, point: ReplFaultPoint) -> u64 {
        self.hits[point.index()].load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_point_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            ReplFaultPoint::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), ReplFaultPoint::ALL.len());
        assert!(names.contains("ack_drop"));
        assert!(names.contains("replica_stall"));
        assert!(names.contains("replica_crash"));
        assert!(names.contains("ship_error"));
    }

    #[test]
    fn seeded_plans_cover_every_point() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64 {
            let plan = ReplFaultPlan::seeded(seed);
            assert!(plan.is_active(), "seed {seed} produced an inactive plan");
            if plan.ack_drop.is_some() {
                seen.insert(ReplFaultPoint::AckDrop.name());
            }
            if plan.stall.is_some() {
                seen.insert(ReplFaultPoint::ReplicaStall.name());
            }
            if plan.crash.is_some() {
                seen.insert(ReplFaultPoint::ReplicaCrash.name());
            }
            if plan.ship_errors > 0 {
                seen.insert(ReplFaultPoint::ShipError.name());
            }
        }
        assert_eq!(seen.len(), ReplFaultPoint::ALL.len());
    }

    #[test]
    fn injector_fires_at_the_planned_delivery() {
        let now = SimInstant::now();
        let faults = ReplFaults::new(ReplFaultPlan::none().with_ack_drop(1, 2), 2);
        assert_eq!(faults.on_delivery(1, now), DeliveryFault::None);
        assert_eq!(faults.on_delivery(0, now), DeliveryFault::None);
        assert_eq!(faults.on_delivery(1, now), DeliveryFault::DropAck);
        assert_eq!(faults.on_delivery(1, now), DeliveryFault::None);
        assert_eq!(faults.hits_of(ReplFaultPoint::AckDrop), 1);
    }

    #[test]
    fn stall_with_no_target_hits_every_replica() {
        let now = SimInstant::now();
        let plan = ReplFaultPlan::none().with_stall(None, 1, Duration::from_millis(3));
        let faults = ReplFaults::new(plan, 2);
        assert!(matches!(
            faults.on_delivery(0, now),
            DeliveryFault::Stall(_)
        ));
        assert!(matches!(
            faults.on_delivery(1, now),
            DeliveryFault::Stall(_)
        ));
        assert_eq!(faults.hits_of(ReplFaultPoint::ReplicaStall), 2);
    }

    #[test]
    fn crash_records_a_restart_deadline() {
        let now = SimInstant::now();
        let plan = ReplFaultPlan::none().with_crash(0, 1, Some(Duration::from_millis(2)));
        let faults = ReplFaults::new(plan, 2);
        assert!(matches!(
            faults.on_delivery(0, now),
            DeliveryFault::Crash(_)
        ));
        assert!(faults.due_restarts(now).is_empty());
        assert_eq!(faults.due_restarts(now + Duration::from_millis(3)), vec![0]);
        // Drained once, not twice.
        assert!(faults
            .due_restarts(now + Duration::from_millis(4))
            .is_empty());
    }

    #[test]
    fn transient_ship_errors_are_bounded() {
        let faults = ReplFaults::new(ReplFaultPlan::none().with_ship_errors(2), 1);
        assert!(!faults.ship_attempt_ok());
        assert!(!faults.ship_attempt_ok());
        assert!(faults.ship_attempt_ok());
        assert_eq!(faults.hits_of(ReplFaultPoint::ShipError), 2);
    }
}
