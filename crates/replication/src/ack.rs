//! The semi-sync acknowledgement protocol: configuration, per-replica ack
//! positions, and the semi-sync ↔ degraded state machine.
//!
//! Acknowledgements are *cumulative binlog positions*, not transaction ids:
//! the primary retains every shipped [`txsql_core::BinlogTxn`] in an
//! append-only buffer and addresses deliveries by index, so an ack of `p`
//! means "I have applied every binlog entry below `p`".  Position-based acks
//! make gaps detectable (a replica that missed a batch nacks with the
//! position it expected, and the primary re-ships the hole from the retained
//! buffer) and make duplicate deliveries harmless — the properties the
//! degrade → re-sync cycle needs to never lose or double-apply a batch.
//!
//! The state machine mirrors MySQL's `rpl_semi_sync` master plugin: a commit
//! waits for [`SemiSyncConfig::ack_quorum`] replicas to ack its position
//! within [`SemiSyncConfig::ack_timeout`]; a timeout **degrades** shipping to
//! asynchronous (commits stop waiting — the primary survives a stalled
//! follower tier at the cost of its durability guarantee, counted in
//! `degraded_commits`), and once the quorum catches back up to within
//! [`SemiSyncConfig::resync_lag`] of the binlog end the hook **re-syncs** and
//! commits wait again.

use parking_lot::Mutex;
use std::time::Duration;

/// Tunables of the semi-sync ack protocol (the `rpl_semi_sync_master_*`
/// knobs of the modelled deployment).
#[derive(Debug, Clone, Copy)]
pub struct SemiSyncConfig {
    /// How many replicas must ack a commit's binlog position before the
    /// client is answered (MySQL's `..._wait_for_slave_count`).
    pub ack_quorum: usize,
    /// How long a commit waits for the quorum before the pipeline degrades
    /// to asynchronous shipping (MySQL's `..._timeout`).
    pub ack_timeout: Duration,
    /// How close (in binlog entries) the quorum must be to the binlog end
    /// for a degraded pipeline to re-enter semi-sync.
    pub resync_lag: u64,
    /// Capacity of the bounded asynchronous shipping queue, in batches.
    /// When full, new batches are shed (counted in `ship_queue_full`); the
    /// replicas recover the gap from the retained binlog buffer instead.
    pub queue_capacity: usize,
    /// Bounded retries when a ship attempt fails transiently.
    pub ship_retries: u32,
    /// Backoff between ship retries.
    pub retry_backoff: Duration,
    /// Whether asynchronous shipping drains on a background OS thread.  Must
    /// be `false` under the deterministic simulator (the sim cannot schedule
    /// threads it did not spawn); the inline drain path is identical.
    pub background_applier: bool,
}

impl Default for SemiSyncConfig {
    fn default() -> Self {
        Self {
            ack_quorum: 1,
            ack_timeout: Duration::from_millis(10),
            resync_lag: 0,
            queue_capacity: 64,
            ship_retries: 3,
            retry_backoff: Duration::from_micros(50),
            background_applier: true,
        }
    }
}

impl SemiSyncConfig {
    /// Sets the ack quorum.
    pub fn with_ack_quorum(mut self, quorum: usize) -> Self {
        self.ack_quorum = quorum.max(1);
        self
    }

    /// Sets the ack timeout.
    pub fn with_ack_timeout(mut self, timeout: Duration) -> Self {
        self.ack_timeout = timeout;
        self
    }

    /// Sets the re-sync lag threshold.
    pub fn with_resync_lag(mut self, lag: u64) -> Self {
        self.resync_lag = lag;
        self
    }

    /// Sets the bounded async-queue capacity (at least 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the bounded ship-retry budget and backoff.
    pub fn with_ship_retries(mut self, retries: u32, backoff: Duration) -> Self {
        self.ship_retries = retries;
        self.retry_backoff = backoff;
        self
    }

    /// Selects inline (deterministic) or background asynchronous draining.
    pub fn with_background_applier(mut self, background: bool) -> Self {
        self.background_applier = background;
        self
    }
}

/// Whether commits currently wait for replica acks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncState {
    /// Commits wait for the ack quorum (normal operation).
    SemiSync,
    /// An ack wait timed out; commits ship asynchronously until the replicas
    /// catch back up.
    Degraded,
}

/// Per-replica cumulative acknowledged binlog positions.
#[derive(Debug)]
pub struct AckTracker {
    acked: Mutex<Vec<u64>>,
}

impl AckTracker {
    /// A tracker for `n_replicas` replicas, all at position 0.
    pub fn new(n_replicas: usize) -> Self {
        Self {
            acked: Mutex::new(vec![0; n_replicas]),
        }
    }

    /// Records a cumulative ack: replica `replica` has applied everything
    /// below `pos`.  Acks never move backwards (a late-arriving duplicate
    /// ack cannot regress the position).
    pub fn record(&self, replica: usize, pos: u64) {
        let mut acked = self.acked.lock();
        if pos > acked[replica] {
            acked[replica] = pos;
        }
    }

    /// The position `replica` has acknowledged.
    pub fn acked_pos(&self, replica: usize) -> u64 {
        self.acked.lock()[replica]
    }

    /// The slowest replica's acknowledged position.
    pub fn min_acked(&self) -> u64 {
        self.acked.lock().iter().copied().min().unwrap_or(0)
    }

    /// How many replicas have acknowledged at least `pos` — the quorum test
    /// for a commit whose batch ends at binlog position `pos`.
    pub fn count_at_least(&self, pos: u64) -> usize {
        self.acked.lock().iter().filter(|&&p| p >= pos).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acks_are_cumulative_and_never_regress() {
        let tracker = AckTracker::new(2);
        tracker.record(0, 5);
        tracker.record(0, 3);
        assert_eq!(tracker.acked_pos(0), 5);
        assert_eq!(tracker.acked_pos(1), 0);
        assert_eq!(tracker.min_acked(), 0);
        tracker.record(1, 7);
        assert_eq!(tracker.min_acked(), 5);
    }

    #[test]
    fn quorum_counts_replicas_at_or_past_the_position() {
        let tracker = AckTracker::new(3);
        tracker.record(0, 10);
        tracker.record(1, 10);
        tracker.record(2, 4);
        assert_eq!(tracker.count_at_least(10), 2);
        assert_eq!(tracker.count_at_least(4), 3);
        assert_eq!(tracker.count_at_least(11), 0);
    }

    #[test]
    fn config_builders_clamp_and_apply() {
        let config = SemiSyncConfig::default()
            .with_ack_quorum(0)
            .with_queue_capacity(0)
            .with_ack_timeout(Duration::from_millis(2))
            .with_resync_lag(3)
            .with_ship_retries(5, Duration::from_micros(10))
            .with_background_applier(false);
        assert_eq!(config.ack_quorum, 1, "quorum clamps to >= 1");
        assert_eq!(config.queue_capacity, 1, "capacity clamps to >= 1");
        assert_eq!(config.ack_timeout, Duration::from_millis(2));
        assert_eq!(config.resync_lag, 3);
        assert_eq!(config.ship_retries, 5);
        assert!(!config.background_applier);
    }
}
