//! Offline binlog replay: single-threaded vs parallel, with the hotspot
//! restriction of §4.6.3.
//!
//! Group commit makes multi-threaded replay of the binlog possible, but the
//! paper found that replaying *hotspot* transactions in parallel causes so
//! much lock contention on the replica that it is slower than a single
//! thread.  TXSQL therefore pins transactions that touched a hotspot onto one
//! replay thread and only parallelises the rest.  [`replay`] reproduces the
//! three strategies so the ablation bench can compare them; contention on the
//! replica is modelled by a per-conflict penalty (two parallel workers
//! touching the same row serialise on that row's mutex).

use crate::replica::Replica;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};
use txsql_common::fxhash::FxHashMap;
use txsql_common::latency::simulate_delay;
use txsql_core::BinlogTxn;

/// How the binlog is replayed on the replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// One thread applies everything in commit order (native binlog replay).
    SingleThreaded,
    /// Transactions are spread across `workers` threads regardless of what
    /// they touched (the naive parallel replay the paper found to regress).
    Parallel {
        /// Number of replay workers.
        workers: usize,
    },
    /// Parallel replay, but transactions that involve a hotspot are pinned to
    /// one worker (§4.6.3).
    ParallelHotspotRestricted {
        /// Number of replay workers.
        workers: usize,
    },
}

/// Result of a replay run.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Mode used.
    pub mode: ReplayMode,
    /// Transactions applied.
    pub transactions: usize,
    /// Wall-clock replay duration.
    pub duration: Duration,
    /// Row-level conflicts encountered by parallel workers (serialised on the
    /// row mutex) — the contention the hotspot restriction avoids.
    pub conflicts: u64,
}

impl ReplayReport {
    /// Replay throughput in transactions per second.
    pub fn tps(&self) -> f64 {
        self.transactions as f64 / self.duration.as_secs_f64().max(1e-9)
    }
}

/// Per-row apply cost, so replay durations are measurable rather than pure
/// memory writes (every row change pays this once).
const APPLY_COST: Duration = Duration::from_micros(2);

/// Replica-side per-row lock map: `(space_id, pk)` to its row mutex.
type RowLockMap = Mutex<FxHashMap<(u32, i64), Arc<Mutex<()>>>>;

fn apply_with_locks(
    replica: &Replica,
    event: &BinlogTxn,
    row_locks: &RowLockMap,
    conflicts: &Mutex<u64>,
) {
    for (table, pk, _) in &event.changes {
        let row_lock = {
            let mut locks = row_locks.lock();
            Arc::clone(
                locks
                    .entry((table.0, *pk))
                    .or_insert_with(|| Arc::new(Mutex::new(()))),
            )
        };
        // A contended row mutex is exactly the replica-side lock contention
        // the paper observed.
        if row_lock.try_lock().is_none() {
            *conflicts.lock() += 1;
        }
        let _guard = row_lock.lock();
        simulate_delay(APPLY_COST);
    }
    replica.apply(event);
}

/// Replays `events` (already in commit order) onto a fresh replica.
pub fn replay(events: &[BinlogTxn], mode: ReplayMode) -> (Replica, ReplayReport) {
    let replica = Replica::new("replay-target");
    let start = Instant::now();
    let row_locks: RowLockMap = Mutex::new(FxHashMap::default());
    let conflicts = Mutex::new(0u64);

    match mode {
        ReplayMode::SingleThreaded => {
            for event in events {
                for _ in &event.changes {
                    simulate_delay(APPLY_COST);
                }
                replica.apply(event);
            }
        }
        ReplayMode::Parallel { workers } | ReplayMode::ParallelHotspotRestricted { workers } => {
            let restrict = matches!(mode, ReplayMode::ParallelHotspotRestricted { .. });
            let workers = workers.max(1);
            std::thread::scope(|scope| {
                for worker in 0..workers {
                    let replica = &replica;
                    let row_locks = &row_locks;
                    let conflicts = &conflicts;
                    scope.spawn(move || {
                        for (idx, event) in events.iter().enumerate() {
                            let assigned = if restrict && event.involves_hotspot {
                                // Hotspot transactions always replay on worker 0.
                                0
                            } else {
                                idx % workers
                            };
                            if assigned == worker {
                                apply_with_locks(replica, event, row_locks, conflicts);
                            }
                        }
                    });
                }
            });
        }
    }

    let report = ReplayReport {
        mode,
        transactions: events.len(),
        duration: start.elapsed(),
        conflicts: *conflicts.lock(),
    };
    (replica, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use txsql_common::{Row, TableId, TxnId};

    fn hotspot_events(n: u64) -> Vec<BinlogTxn> {
        (1..=n)
            .map(|i| BinlogTxn {
                txn: TxnId(i),
                trx_no: i,
                changes: vec![(TableId(1), 1, Row::from_ints(&[1, i as i64]))],
                involves_hotspot: true,
            })
            .collect()
    }

    fn uniform_events(n: u64) -> Vec<BinlogTxn> {
        (1..=n)
            .map(|i| BinlogTxn {
                txn: TxnId(i),
                trx_no: i,
                changes: vec![(TableId(1), i as i64, Row::from_ints(&[i as i64, i as i64]))],
                involves_hotspot: false,
            })
            .collect()
    }

    #[test]
    fn all_modes_apply_every_transaction() {
        let events = uniform_events(64);
        for mode in [
            ReplayMode::SingleThreaded,
            ReplayMode::Parallel { workers: 4 },
            ReplayMode::ParallelHotspotRestricted { workers: 4 },
        ] {
            let (replica, report) = replay(&events, mode);
            assert_eq!(replica.applied_txns(), 64, "{mode:?}");
            assert_eq!(report.transactions, 64);
            assert!(report.tps() > 0.0);
        }
    }

    #[test]
    fn hotspot_restriction_avoids_parallel_conflicts_on_hot_rows() {
        let events = hotspot_events(200);
        let (_, parallel) = replay(&events, ReplayMode::Parallel { workers: 4 });
        let (_, restricted) = replay(
            &events,
            ReplayMode::ParallelHotspotRestricted { workers: 4 },
        );
        assert!(
            restricted.conflicts <= parallel.conflicts,
            "restricted replay must not contend more ({} vs {})",
            restricted.conflicts,
            parallel.conflicts
        );
    }

    #[test]
    fn single_threaded_replay_has_no_conflicts() {
        let events = hotspot_events(50);
        let (_, report) = replay(&events, ReplayMode::SingleThreaded);
        assert_eq!(report.conflicts, 0);
    }

    #[test]
    fn final_state_matches_last_writer_in_every_mode() {
        let events = hotspot_events(30);
        // With a single hot row, the restricted mode keeps commit order on
        // worker 0, so the final value is the last transaction's.
        let (replica, _) = replay(
            &events,
            ReplayMode::ParallelHotspotRestricted { workers: 4 },
        );
        assert_eq!(replica.row(TableId(1), 1).unwrap().get_int(1), Some(30));
        let (replica, _) = replay(&events, ReplayMode::SingleThreaded);
        assert_eq!(replica.row(TableId(1), 1).unwrap().get_int(1), Some(30));
    }
}
