//! The replication commit hook: semi-synchronous or asynchronous shipping.
//!
//! Registered on the primary [`txsql_core::Database`], the hook receives each
//! flushed commit batch:
//!
//! * in **synchronous** (semi-sync) mode the committing batch blocks for the
//!   simulated network round trip before the commit returns — the Figure 9
//!   "synchronization mode" setting, which lengthens lock hold times and is
//!   where group locking pays off the most;
//! * in **asynchronous** mode the batch is queued and a background applier
//!   ships it later; the primary never waits, but the replicas lag.

use crate::replica::Replica;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;
use txsql_common::latency::{simulate_delay, LatencyModel};
use txsql_core::{BinlogTxn, CommitHook};

/// Replication shipping mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// Semi-synchronous: commits wait for the replica acknowledgement.
    Synchronous,
    /// Asynchronous: commits return immediately; replicas apply in the
    /// background.
    Asynchronous,
}

enum ShipMessage {
    Batch(Vec<BinlogTxn>),
    Shutdown,
}

/// The replication hook.
pub struct ReplicationHook {
    mode: ReplicationMode,
    latency: LatencyModel,
    replicas: Vec<Arc<Replica>>,
    sender: Option<Sender<ShipMessage>>,
    applier: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for ReplicationHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicationHook")
            .field("mode", &self.mode)
            .field("replicas", &self.replicas.len())
            .finish()
    }
}

impl ReplicationHook {
    /// Creates a hook shipping to `n_replicas` replicas.
    pub fn new(mode: ReplicationMode, latency: LatencyModel, n_replicas: usize) -> Arc<Self> {
        let replicas: Vec<Arc<Replica>> = (0..n_replicas)
            .map(|i| Arc::new(Replica::new(format!("replica-{i}"))))
            .collect();
        let (sender, applier) = if mode == ReplicationMode::Asynchronous {
            let (tx, rx): (Sender<ShipMessage>, Receiver<ShipMessage>) = unbounded();
            let replicas_bg = replicas.clone();
            let latency_bg = latency;
            let handle = std::thread::Builder::new()
                .name("txsql-async-applier".into())
                .spawn(move || {
                    while let Ok(ShipMessage::Batch(batch)) = rx.recv() {
                        // One-way shipping latency per batch.
                        simulate_delay(latency_bg.network_one_way);
                        for replica in &replicas_bg {
                            replica.apply_batch(&batch);
                        }
                    }
                })
                .expect("spawn async applier");
            (Some(tx), Some(handle))
        } else {
            (None, None)
        };
        Arc::new(Self {
            mode,
            latency,
            replicas,
            sender,
            applier: Mutex::new(applier),
        })
    }

    /// The replicas this hook ships to.
    pub fn replicas(&self) -> &[Arc<Replica>] {
        &self.replicas
    }

    /// The shipping mode.
    pub fn mode(&self) -> ReplicationMode {
        self.mode
    }

    /// Blocks until every queued asynchronous batch has been applied (or the
    /// timeout expires).  Returns true when the replicas caught up.
    pub fn wait_caught_up(&self, expected_txns: u64, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let caught_up = self
                .replicas
                .iter()
                .all(|replica| replica.applied_txns() >= expected_txns);
            if caught_up {
                return true;
            }
            if std::time::Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Stops the background applier (asynchronous mode).
    pub fn shutdown(&self) {
        if let Some(sender) = &self.sender {
            let _ = sender.send(ShipMessage::Shutdown);
        }
        if let Some(handle) = self.applier.lock().take() {
            let _ = handle.join();
        }
    }
}

impl CommitHook for ReplicationHook {
    fn on_commit_batch(&self, batch: &[BinlogTxn]) {
        match self.mode {
            ReplicationMode::Synchronous => {
                // Ship + wait for the acknowledgement: one round trip per
                // batch (amortised by group commit).
                simulate_delay(self.latency.network_round_trip());
                for replica in &self.replicas {
                    replica.apply_batch(batch);
                }
            }
            ReplicationMode::Asynchronous => {
                if let Some(sender) = &self.sender {
                    let _ = sender.send(ShipMessage::Batch(batch.to_vec()));
                }
            }
        }
    }
}

impl Drop for ReplicationHook {
    fn drop(&mut self) {
        if let Some(sender) = &self.sender {
            let _ = sender.send(ShipMessage::Shutdown);
        }
        if let Some(handle) = self.applier.lock().take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txsql_common::{Row, TableId, TxnId};

    fn event(trx_no: u64, value: i64) -> BinlogTxn {
        BinlogTxn {
            txn: TxnId(trx_no),
            trx_no,
            changes: vec![(TableId(1), 1, Row::from_ints(&[1, value]))],
            involves_hotspot: false,
        }
    }

    #[test]
    fn synchronous_mode_applies_before_returning() {
        let hook = ReplicationHook::new(ReplicationMode::Synchronous, LatencyModel::in_memory(), 2);
        hook.on_commit_batch(&[event(1, 10), event(2, 20)]);
        for replica in hook.replicas() {
            assert_eq!(replica.applied_txns(), 2);
            assert_eq!(replica.row(TableId(1), 1).unwrap().get_int(1), Some(20));
        }
    }

    #[test]
    fn asynchronous_mode_catches_up_in_background() {
        let hook =
            ReplicationHook::new(ReplicationMode::Asynchronous, LatencyModel::in_memory(), 1);
        hook.on_commit_batch(&[event(1, 10)]);
        hook.on_commit_batch(&[event(2, 20)]);
        assert!(hook.wait_caught_up(2, Duration::from_secs(2)));
        assert_eq!(
            hook.replicas()[0].row(TableId(1), 1).unwrap().get_int(1),
            Some(20)
        );
        hook.shutdown();
    }

    #[test]
    fn wait_caught_up_times_out_when_nothing_ships() {
        let hook =
            ReplicationHook::new(ReplicationMode::Asynchronous, LatencyModel::in_memory(), 1);
        assert!(!hook.wait_caught_up(5, Duration::from_millis(20)));
        hook.shutdown();
    }
}
