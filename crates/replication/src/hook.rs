//! The replication commit hook: fault-tolerant semi-synchronous shipping
//! with real acknowledgements, degrade-to-async, and auto re-sync.
//!
//! Registered on the primary [`txsql_core::Database`], the hook receives each
//! flushed commit batch, appends it to a retained binlog buffer and ships it
//! to the replicas position-addressed (see [`crate::ack`] for the protocol):
//!
//! * in **synchronous** (semi-sync) mode the committing batch ships, then
//!   blocks until [`SemiSyncConfig::ack_quorum`] replicas acknowledge its
//!   binlog position or [`SemiSyncConfig::ack_timeout`] expires — the
//!   Figure 9 "synchronization mode" setting, which lengthens lock hold
//!   times and is where group locking pays off the most.  A timeout
//!   **degrades** the hook to asynchronous shipping (the commit still
//!   succeeds: a stalled follower tier costs bounded latency, never a wedged
//!   primary) and the hook **re-syncs** automatically once the quorum has
//!   caught back up;
//! * in **asynchronous** mode batches flow through a *bounded channel*
//!   (the instrumented crossbeam shim, so every enqueue/drain is a tagged
//!   yield point under the deterministic simulator) drained by a background
//!   applier — or inline when built under sim, where a background OS thread
//!   would be invisible to the scheduler; when the channel is full the new
//!   batch is shed observably (`ship_queue_full`) — the replicas recover the
//!   gap from the retained binlog buffer via position-addressed catch-up, so
//!   shedding drops work, never data.
//!
//! Fault injection ([`crate::fault`]) drives ack drops, replica stalls,
//! replica crash/restart and transient ship errors on this path, and an
//! optional [`FaultInjector`] fires the `post_ship_pre_ack` / `post_ack`
//! crash points so the recovery oracle can kill the primary between redo
//! flush and client acknowledgement.

use crate::ack::{AckTracker, SemiSyncConfig, SyncState};
use crate::fault::{DeliveryFault, ReplFaultPlan, ReplFaults};
use crate::replica::{DeliverOutcome, Replica};
use crossbeam::channel::{Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txsql_common::latency::{simulate_delay, ut_delay, LatencyModel};
use txsql_common::metrics::EngineMetrics;
use txsql_common::time::SimInstant;
use txsql_common::{Error, Result};
use txsql_core::{BinlogTxn, CommitHook};
use txsql_storage::fault::{CrashPoint, FaultInjector};

/// Replication shipping mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// Semi-synchronous: commits wait for the replica ack quorum (and
    /// degrade to asynchronous shipping when the wait times out).
    Synchronous,
    /// Asynchronous: commits return immediately; replicas apply in the
    /// background.
    Asynchronous,
}

/// Primary-side shipping state behind one mutex: the retained binlog buffer
/// (the ack protocol's position space) and the semi-sync ↔ degraded state.
struct ShipState {
    binlog: Vec<BinlogTxn>,
    sync_state: SyncState,
}

/// Everything the shipping paths (commit threads, background applier,
/// `wait_caught_up` pollers) share.
struct Shared {
    latency: LatencyModel,
    config: SemiSyncConfig,
    replicas: Vec<Arc<Replica>>,
    tracker: AckTracker,
    faults: ReplFaults,
    metrics: Option<Arc<EngineMetrics>>,
    state: Mutex<ShipState>,
    /// Bounded channel of not-yet-shipped position ranges.  Going through
    /// the instrumented crossbeam shim makes every enqueue/drain a tagged
    /// yield point, so the simulator explores shed-vs-drain interleavings.
    ship_tx: Sender<(u64, u64)>,
    ship_rx: Receiver<(u64, u64)>,
    /// True while a background applier thread is draining the queue (the
    /// commit paths then never drain inline).
    background_running: AtomicBool,
    /// Asks the background applier to exit once the queue is empty.
    stop: AtomicBool,
}

impl Shared {
    /// Appends a batch to the retained binlog, returning its position range.
    fn append(&self, batch: &[BinlogTxn]) -> (u64, u64) {
        let mut state = self.state.lock();
        let start = state.binlog.len() as u64;
        state.binlog.extend_from_slice(batch);
        (start, state.binlog.len() as u64)
    }

    /// Clones the binlog entries in `[start, end)`.
    fn slice(&self, start: u64, end: u64) -> Vec<BinlogTxn> {
        let state = self.state.lock();
        state.binlog[start as usize..end as usize].to_vec()
    }

    /// Retained binlog length — the end of the ack position space.
    fn binlog_len(&self) -> u64 {
        self.state.lock().binlog.len() as u64
    }

    fn sync_state(&self) -> SyncState {
        self.state.lock().sync_state
    }

    fn metric(&self, f: impl FnOnce(&EngineMetrics)) {
        if let Some(metrics) = &self.metrics {
            f(metrics);
        }
    }

    /// Samples the `replica_lag` gauge from the slowest replica's ack.
    fn update_lag(&self) {
        let lag = self.binlog_len().saturating_sub(self.tracker.min_acked());
        self.metric(|m| m.replica_lag.set(lag));
    }

    /// One delivery to one replica, with the fault injector consulted first.
    /// Applies the outcome to the ack tracker; a nack triggers one immediate
    /// catch-up re-ship from the position the replica expected.
    fn deliver_to(&self, idx: usize, start: u64, events: &[BinlogTxn], now: SimInstant) {
        let replica = &self.replicas[idx];
        match self.faults.on_delivery(idx, now) {
            DeliveryFault::Crash(_) => {
                // The restart deadline was recorded by the injector; the
                // pump revives the replica when it passes.
                replica.crash();
                return;
            }
            DeliveryFault::Stall(duration) => {
                replica.stall_for(duration, now);
                return;
            }
            DeliveryFault::DropAck => {
                // The replica applies the delivery but its ack is lost; the
                // pump's idempotent re-delivery recovers the ack later.
                let _ = replica.deliver(start, events, now);
                return;
            }
            DeliveryFault::None => {}
        }
        match replica.deliver(start, events, now) {
            DeliverOutcome::Ack(pos) => self.tracker.record(idx, pos),
            DeliverOutcome::Nack { expected } => {
                // Gap: re-ship the hole from the retained buffer (one level —
                // a full-prefix re-ship cannot nack again).
                let end = start + events.len() as u64;
                let fill = self.slice(expected, end);
                if let DeliverOutcome::Ack(pos) = replica.deliver(expected, &fill, now) {
                    self.tracker.record(idx, pos);
                }
            }
            DeliverOutcome::Offline | DeliverOutcome::Stalled => {}
        }
    }

    /// Ships the range `[start, end)` to every replica (one one-way network
    /// delay per batch, amortised by group commit).
    fn deliver_range(&self, start: u64, end: u64) {
        simulate_delay(self.latency.network_one_way);
        let events = self.slice(start, end);
        let now = SimInstant::now();
        for idx in 0..self.replicas.len() {
            self.deliver_to(idx, start, &events, now);
        }
        self.update_lag();
    }

    /// Drives fault timers and replica catch-up: restarts replicas whose
    /// injected crash deadline passed, and re-delivers the retained binlog
    /// suffix to every reachable replica that has not acknowledged the end
    /// of the buffer (covers expired stalls, dropped acks and restarts).
    fn pump(&self, now: SimInstant) {
        for idx in self.faults.due_restarts(now) {
            self.replicas[idx].restart();
        }
        let end = self.binlog_len();
        for (idx, replica) in self.replicas.iter().enumerate() {
            if !replica.is_online() || replica.is_stalled(now) {
                continue;
            }
            if self.tracker.acked_pos(idx) >= end {
                continue;
            }
            // Re-deliver from the replica's own relay position; an empty
            // suffix is a pure ack retransmission request.
            let start = replica.log_pos().min(end);
            let events = self.slice(start, end);
            self.deliver_to(idx, start, &events, now);
        }
        self.update_lag();
    }

    /// Enqueues a range on the bounded async channel; a full channel sheds
    /// the batch observably (the pump recovers it from the retained binlog).
    fn enqueue(&self, start: u64, end: u64) {
        match self.ship_tx.try_send((start, end)) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => self.metric(|m| m.ship_queue_full.inc()),
            // Shared owns both channel ends for its whole lifetime.
            Err(TrySendError::Disconnected(_)) => unreachable!("ship channel disconnected"),
        }
    }

    /// Drains the async channel inline, one batch at a time.
    fn drain_queue(&self) {
        while let Ok((start, end)) = self.ship_rx.try_recv() {
            self.deliver_range(start, end);
        }
    }

    /// Degraded → semi-sync: re-enter ack waiting once the queue is drained
    /// and the quorum has caught up to within `resync_lag` of the binlog end.
    fn try_resync(&self) {
        if !self.ship_rx.is_empty() {
            return;
        }
        let target = {
            let state = self.state.lock();
            if state.sync_state != SyncState::Degraded {
                return;
            }
            (state.binlog.len() as u64).saturating_sub(self.config.resync_lag)
        };
        let quorum = self.config.ack_quorum.min(self.replicas.len());
        if self.tracker.count_at_least(target) >= quorum {
            let mut state = self.state.lock();
            if state.sync_state == SyncState::Degraded {
                state.sync_state = SyncState::SemiSync;
                drop(state);
                self.metric(|m| m.semi_sync_resyncs.inc());
            }
        }
    }

    /// Semi-sync → degraded (ack timeout or exhausted ship retries).
    fn degrade(&self) {
        let mut state = self.state.lock();
        if state.sync_state == SyncState::SemiSync {
            state.sync_state = SyncState::Degraded;
            drop(state);
            self.metric(|m| m.semi_sync_timeouts.inc());
        }
    }
}

/// The replication hook.
pub struct ReplicationHook {
    mode: ReplicationMode,
    shared: Arc<Shared>,
    /// Storage fault injector for the `post_ship_pre_ack` / `post_ack`
    /// crash points (the primary's own crash window inside the hook).
    injector: Option<Arc<FaultInjector>>,
    applier: Mutex<Option<std::thread::JoinHandle<()>>>,
    torn_down: AtomicBool,
}

impl std::fmt::Debug for ReplicationHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicationHook")
            .field("mode", &self.mode)
            .field("replicas", &self.shared.replicas.len())
            .field("sync_state", &self.shared.sync_state())
            .finish()
    }
}

/// Configures a [`ReplicationHook`] beyond the [`ReplicationHook::new`]
/// defaults: ack protocol knobs, an injected replication fault plan, the
/// primary's crash injector, and the metrics registry the counters land in.
pub struct ReplicationHookBuilder {
    mode: ReplicationMode,
    latency: LatencyModel,
    n_replicas: usize,
    config: SemiSyncConfig,
    faults: ReplFaultPlan,
    injector: Option<Arc<FaultInjector>>,
    metrics: Option<Arc<EngineMetrics>>,
}

impl ReplicationHookBuilder {
    /// Overrides the semi-sync configuration.
    pub fn config(mut self, config: SemiSyncConfig) -> Self {
        self.config = config;
        self
    }

    /// Installs a replication fault plan.
    pub fn faults(mut self, plan: ReplFaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Wires the primary's crash injector so the `post_ship_pre_ack` and
    /// `post_ack` crash points fire inside the hook (usually
    /// [`txsql_core::Database::faults`]).
    pub fn crash_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Routes the hook's counters into `metrics` (usually
    /// [`txsql_core::Database::metrics_handle`]).
    pub fn metrics(mut self, metrics: Arc<EngineMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Builds the hook (spawning the background applier when the mode is
    /// asynchronous and [`SemiSyncConfig::background_applier`] is set).
    pub fn build(self) -> Arc<ReplicationHook> {
        let replicas: Vec<Arc<Replica>> = (0..self.n_replicas)
            .map(|i| Arc::new(Replica::new(format!("replica-{i}"))))
            .collect();
        let (ship_tx, ship_rx) = crossbeam::channel::bounded(self.config.queue_capacity);
        let shared = Arc::new(Shared {
            latency: self.latency,
            config: self.config,
            tracker: AckTracker::new(self.n_replicas),
            faults: ReplFaults::new(self.faults, self.n_replicas),
            metrics: self.metrics,
            replicas,
            state: Mutex::new(ShipState {
                binlog: Vec::new(),
                sync_state: SyncState::SemiSync,
            }),
            ship_tx,
            ship_rx,
            background_running: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        });
        let hook = Arc::new(ReplicationHook {
            mode: self.mode,
            shared,
            injector: self.injector,
            applier: Mutex::new(None),
            torn_down: AtomicBool::new(false),
        });
        // A background OS thread is invisible to the deterministic scheduler
        // (it would race the sim's logical threads on real time), so a hook
        // built inside a simulation never auto-spawns: sim tests schedule
        // the same [`ReplicationHook::run_applier_loop`] as an explicit sim
        // thread instead, and the explorer interleaves it like any other.
        let spawn_applier = self.mode == ReplicationMode::Asynchronous
            && self.config.background_applier
            && txsql_sim::current().is_none();
        if spawn_applier {
            // Claim the queue before `build` returns so no commit in the
            // spawn window drains inline.
            hook.shared
                .background_running
                .store(true, Ordering::Release);
            let hook_bg = Arc::clone(&hook);
            let handle = std::thread::Builder::new()
                .name("txsql-async-applier".into())
                .spawn(move || hook_bg.run_applier_loop())
                .expect("spawn async applier");
            *hook.applier.lock() = Some(handle);
        }
        hook
    }
}

impl ReplicationHook {
    /// Creates a hook shipping to `n_replicas` replicas with default
    /// semi-sync configuration and no injected faults.
    pub fn new(mode: ReplicationMode, latency: LatencyModel, n_replicas: usize) -> Arc<Self> {
        Self::builder(mode, latency, n_replicas).build()
    }

    /// Starts configuring a hook (see [`ReplicationHookBuilder`]).
    pub fn builder(
        mode: ReplicationMode,
        latency: LatencyModel,
        n_replicas: usize,
    ) -> ReplicationHookBuilder {
        ReplicationHookBuilder {
            mode,
            latency,
            n_replicas,
            config: SemiSyncConfig::default(),
            faults: ReplFaultPlan::none(),
            injector: None,
            metrics: None,
        }
    }

    /// The replicas this hook ships to.
    pub fn replicas(&self) -> &[Arc<Replica>] {
        &self.shared.replicas
    }

    /// The shipping mode.
    pub fn mode(&self) -> ReplicationMode {
        self.mode
    }

    /// True while an applier (OS thread or scheduled sim thread) owns the
    /// ship queue, i.e. while the commit paths never drain inline.
    pub fn applier_running(&self) -> bool {
        self.shared.background_running.load(Ordering::Acquire)
    }

    /// Whether commits currently wait for acks or ship degraded.
    pub fn sync_state(&self) -> SyncState {
        self.shared.sync_state()
    }

    /// The replication fault injector (coverage meta-assertions).
    pub fn faults(&self) -> &ReplFaults {
        &self.shared.faults
    }

    /// The binlog position `replica` has acknowledged.
    pub fn acked_pos(&self, replica: usize) -> u64 {
        self.shared.tracker.acked_pos(replica)
    }

    /// Retained binlog length (the end of the ack position space).
    pub fn binlog_len(&self) -> u64 {
        self.shared.binlog_len()
    }

    /// Current replica lag in binlog entries (slowest replica).
    pub fn replica_lag(&self) -> u64 {
        self.shared
            .binlog_len()
            .saturating_sub(self.shared.tracker.min_acked())
    }

    /// Fires a hook-side crash point against the primary's injector.
    fn crash_point(&self, point: CrashPoint) -> Result<()> {
        if let Some(injector) = &self.injector {
            if injector.hit(point) {
                return Err(Error::Crashed {
                    point: point.name(),
                });
            }
            if injector.crashed() {
                return Err(Error::Crashed { point: "crashed" });
            }
        }
        Ok(())
    }

    /// The degraded / asynchronous shipping path: enqueue on the bounded
    /// queue and, unless a background applier owns the queue, drain inline.
    fn ship_async(&self, start: u64, end: u64) {
        self.shared.enqueue(start, end);
        if !self.shared.background_running.load(Ordering::Acquire) {
            self.shared.drain_queue();
        }
    }

    /// The semi-sync path for one batch at `[start, end)`.  Returns `Ok` when
    /// the commit may be acknowledged (quorum met, or the hook degraded —
    /// MySQL semantics: a semi-sync timeout never fails the commit); `Err`
    /// only on an injected primary crash.
    fn ship_semi_sync(&self, start: u64, end: u64) -> Result<()> {
        // Bounded retry/backoff on transient ship errors; exhausting the
        // budget degrades instead of wedging the committing thread.
        let mut retries = 0u32;
        while !self.shared.faults.ship_attempt_ok() {
            retries += 1;
            self.shared.metric(|m| m.ship_retries.inc());
            if retries > self.shared.config.ship_retries {
                self.shared.degrade();
                self.shared.metric(|m| m.degraded_commits.inc());
                self.ship_async(start, end);
                return Ok(());
            }
            ut_delay(self.shared.config.retry_backoff.as_micros().max(1) as u32);
        }

        self.shared.deliver_range(start, end);
        self.crash_point(CrashPoint::PostShipPreAck)?;

        let quorum = self
            .shared
            .config
            .ack_quorum
            .min(self.shared.replicas.len());
        let deadline = SimInstant::now() + self.shared.config.ack_timeout;
        while self.shared.tracker.count_at_least(end) < quorum {
            if SimInstant::now() >= deadline {
                // rpl_semi_sync-style timeout: degrade and let the commit
                // through unacked by the replicas.
                self.shared.degrade();
                self.shared.metric(|m| m.degraded_commits.inc());
                self.shared.update_lag();
                return Ok(());
            }
            self.shared.pump(SimInstant::now());
            ut_delay(10);
        }

        self.crash_point(CrashPoint::PostAck)?;
        // The ack's network leg back to the primary.
        simulate_delay(self.shared.latency.network_one_way);
        Ok(())
    }

    /// The async ship-queue applier loop: drains queued position ranges one
    /// batch at a time until [`ReplicationHook::shutdown`] raises the stop
    /// flag *and* the queue is empty.  While it runs, the commit paths and
    /// `wait_caught_up` never drain inline — the queue has one owner.
    ///
    /// Natively this is the body of the auto-spawned applier thread.  Under
    /// the deterministic simulator (where `build` spawns nothing) a test
    /// schedules it as an ordinary sim thread, so enqueue/drain/shutdown
    /// interleavings are explored rather than hidden behind an OS thread
    /// the scheduler cannot see.
    pub fn run_applier_loop(&self) {
        self.shared
            .background_running
            .store(true, Ordering::Release);
        loop {
            match self.shared.ship_rx.try_recv() {
                Ok((start, end)) => self.shared.deliver_range(start, end),
                Err(_) if self.shared.stop.load(Ordering::Acquire) => break,
                Err(_) => {
                    // Idle: nothing queued yet.  Under sim this advances the
                    // virtual clock and yields; natively it pauses the OS
                    // thread without burning the (single) CPU.
                    if txsql_sim::current().is_some() {
                        ut_delay(200);
                    } else {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
            }
        }
        self.shared
            .background_running
            .store(false, Ordering::Release);
    }

    /// Blocks until every replica has applied at least `expected_txns`
    /// transactions (or the timeout expires).  Returns true when the
    /// replicas caught up.  Deterministic under simulation: the deadline is
    /// a [`SimInstant`] and the polling pause is an instrumented delay, so
    /// the sim's virtual clock controls both.
    pub fn wait_caught_up(&self, expected_txns: u64, timeout: Duration) -> bool {
        let deadline = SimInstant::now() + timeout;
        loop {
            if !self.shared.background_running.load(Ordering::Acquire) {
                self.shared.drain_queue();
            }
            self.shared.pump(SimInstant::now());
            self.shared.try_resync();
            let caught_up = self
                .shared
                .replicas
                .iter()
                .all(|replica| replica.applied_txns() >= expected_txns);
            if caught_up {
                return true;
            }
            if SimInstant::now() >= deadline {
                return false;
            }
            ut_delay(20);
        }
    }

    /// Stops the background applier and drains any queued batches.  Shared
    /// by [`ReplicationHook::shutdown`] and `Drop`, and idempotent — the
    /// first caller tears down, later calls are no-ops.
    fn teardown(&self) {
        if self.torn_down.swap(true, Ordering::AcqRel) {
            return;
        }
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self.applier.lock().take() {
            let _ = handle.join();
            self.shared
                .background_running
                .store(false, Ordering::Release);
        }
        // Whatever is still queued ships now, on the caller's thread.
        self.shared.drain_queue();
    }

    /// Stops the background applier (asynchronous mode) and flushes the
    /// shipping queue.
    pub fn shutdown(&self) {
        self.teardown();
    }
}

impl CommitHook for ReplicationHook {
    fn on_commit_batch(&self, batch: &[BinlogTxn]) -> Result<()> {
        let (start, end) = self.shared.append(batch);
        match self.mode {
            ReplicationMode::Asynchronous => {
                self.ship_async(start, end);
                Ok(())
            }
            ReplicationMode::Synchronous => {
                if self.shared.sync_state() == SyncState::Degraded {
                    self.shared.metric(|m| m.degraded_commits.inc());
                    self.ship_async(start, end);
                    self.shared.pump(SimInstant::now());
                    self.shared.try_resync();
                    return Ok(());
                }
                self.ship_semi_sync(start, end)
            }
        }
    }
}

impl Drop for ReplicationHook {
    fn drop(&mut self) {
        self.teardown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txsql_common::{Row, TableId, TxnId};

    fn event(trx_no: u64, value: i64) -> BinlogTxn {
        BinlogTxn {
            txn: TxnId(trx_no),
            trx_no,
            changes: vec![(TableId(1), 1, Row::from_ints(&[1, value]))],
            involves_hotspot: false,
        }
    }

    #[test]
    fn synchronous_mode_applies_before_returning() {
        let hook = ReplicationHook::new(ReplicationMode::Synchronous, LatencyModel::in_memory(), 2);
        hook.on_commit_batch(&[event(1, 10), event(2, 20)]).unwrap();
        for replica in hook.replicas() {
            assert_eq!(replica.applied_txns(), 2);
            assert_eq!(replica.row(TableId(1), 1).unwrap().get_int(1), Some(20));
        }
        assert_eq!(hook.sync_state(), SyncState::SemiSync);
        assert_eq!(hook.binlog_len(), 2);
        assert_eq!(hook.acked_pos(0), 2);
        assert_eq!(hook.replica_lag(), 0);
    }

    #[test]
    fn asynchronous_mode_catches_up_in_background() {
        let hook =
            ReplicationHook::new(ReplicationMode::Asynchronous, LatencyModel::in_memory(), 1);
        hook.on_commit_batch(&[event(1, 10)]).unwrap();
        hook.on_commit_batch(&[event(2, 20)]).unwrap();
        assert!(hook.wait_caught_up(2, Duration::from_secs(2)));
        assert_eq!(
            hook.replicas()[0].row(TableId(1), 1).unwrap().get_int(1),
            Some(20)
        );
        hook.shutdown();
    }

    #[test]
    fn wait_caught_up_times_out_when_nothing_ships() {
        let hook =
            ReplicationHook::new(ReplicationMode::Asynchronous, LatencyModel::in_memory(), 1);
        assert!(!hook.wait_caught_up(5, Duration::from_millis(20)));
        hook.shutdown();
    }

    #[test]
    fn ack_drop_is_recovered_by_retransmission() {
        let metrics = Arc::new(EngineMetrics::new());
        let hook =
            ReplicationHook::builder(ReplicationMode::Synchronous, LatencyModel::in_memory(), 1)
                .faults(ReplFaultPlan::none().with_ack_drop(0, 1))
                .config(SemiSyncConfig::default().with_ack_timeout(Duration::from_millis(100)))
                .metrics(Arc::clone(&metrics))
                .build();
        hook.on_commit_batch(&[event(1, 10)]).unwrap();
        // The first delivery applied but its ack was dropped; the ack-wait
        // pump re-requested it, so the commit still went through semi-sync.
        assert_eq!(hook.sync_state(), SyncState::SemiSync);
        assert_eq!(metrics.semi_sync_timeouts.get(), 0);
        assert_eq!(hook.acked_pos(0), 1);
        // ...and the replica applied the transaction exactly once.
        assert_eq!(hook.replicas()[0].applied_txns(), 1);
        assert_eq!(
            hook.faults().hits_of(crate::fault::ReplFaultPoint::AckDrop),
            1
        );
    }

    #[test]
    fn stall_shorter_than_the_timeout_does_not_degrade() {
        let metrics = Arc::new(EngineMetrics::new());
        let hook =
            ReplicationHook::builder(ReplicationMode::Synchronous, LatencyModel::in_memory(), 1)
                .faults(ReplFaultPlan::none().with_stall(None, 1, Duration::from_millis(2)))
                .config(SemiSyncConfig::default().with_ack_timeout(Duration::from_millis(200)))
                .metrics(Arc::clone(&metrics))
                .build();
        hook.on_commit_batch(&[event(1, 10)]).unwrap();
        // The stall expired inside the ack window: no timeout, no degrade.
        assert_eq!(hook.sync_state(), SyncState::SemiSync);
        assert_eq!(metrics.semi_sync_timeouts.get(), 0);
        assert_eq!(metrics.degraded_commits.get(), 0);
        assert_eq!(hook.replicas()[0].applied_txns(), 1);
    }

    #[test]
    fn stall_past_the_timeout_degrades_then_resyncs() {
        let metrics = Arc::new(EngineMetrics::new());
        let hook =
            ReplicationHook::builder(ReplicationMode::Synchronous, LatencyModel::in_memory(), 1)
                .faults(ReplFaultPlan::none().with_stall(None, 1, Duration::from_millis(10)))
                .config(
                    SemiSyncConfig::default()
                        .with_ack_timeout(Duration::from_millis(2))
                        .with_background_applier(false),
                )
                .metrics(Arc::clone(&metrics))
                .build();

        // Commit 1: the replica stalls past the ack timeout → degrade.
        hook.on_commit_batch(&[event(1, 10)]).unwrap();
        assert_eq!(hook.sync_state(), SyncState::Degraded);
        assert_eq!(metrics.semi_sync_timeouts.get(), 1);
        assert_eq!(metrics.degraded_commits.get(), 1);

        // Commit 2 while degraded: ships async, still counted as degraded.
        hook.on_commit_batch(&[event(2, 20)]).unwrap();
        assert_eq!(metrics.degraded_commits.get(), 2);

        // Once the stall expires the replica catches up from the retained
        // binlog and the hook re-syncs.
        assert!(hook.wait_caught_up(2, Duration::from_secs(2)));
        assert_eq!(hook.sync_state(), SyncState::SemiSync);
        assert_eq!(metrics.semi_sync_resyncs.get(), 1);
        assert_eq!(hook.acked_pos(0), 2);
        assert_eq!(
            hook.replicas()[0].row(TableId(1), 1).unwrap().get_int(1),
            Some(20)
        );

        // Commit 3 goes back through the semi-sync ack path.
        hook.on_commit_batch(&[event(3, 30)]).unwrap();
        assert_eq!(hook.sync_state(), SyncState::SemiSync);
        assert_eq!(metrics.degraded_commits.get(), 2, "no new degraded commit");
        assert_eq!(hook.acked_pos(0), 3);
    }

    #[test]
    fn replica_crash_degrades_and_restart_resyncs() {
        let metrics = Arc::new(EngineMetrics::new());
        let hook =
            ReplicationHook::builder(ReplicationMode::Synchronous, LatencyModel::in_memory(), 1)
                .faults(ReplFaultPlan::none().with_crash(0, 1, Some(Duration::from_millis(5))))
                .config(
                    SemiSyncConfig::default()
                        .with_ack_timeout(Duration::from_millis(2))
                        .with_background_applier(false),
                )
                .metrics(Arc::clone(&metrics))
                .build();
        hook.on_commit_batch(&[event(1, 10)]).unwrap();
        assert_eq!(hook.sync_state(), SyncState::Degraded);
        assert!(!hook.replicas()[0].is_online());
        // After the restart deadline the pump revives the replica and it
        // recovers the whole binlog from its durable relay position.
        assert!(hook.wait_caught_up(1, Duration::from_secs(2)));
        assert!(hook.replicas()[0].is_online());
        assert_eq!(hook.sync_state(), SyncState::SemiSync);
        assert_eq!(metrics.semi_sync_resyncs.get(), 1);
    }

    #[test]
    fn transient_ship_errors_retry_with_backoff() {
        let metrics = Arc::new(EngineMetrics::new());
        let hook =
            ReplicationHook::builder(ReplicationMode::Synchronous, LatencyModel::in_memory(), 1)
                .faults(ReplFaultPlan::none().with_ship_errors(2))
                .metrics(Arc::clone(&metrics))
                .build();
        hook.on_commit_batch(&[event(1, 10)]).unwrap();
        assert_eq!(metrics.ship_retries.get(), 2);
        assert_eq!(hook.sync_state(), SyncState::SemiSync, "retries absorbed");
        assert_eq!(hook.acked_pos(0), 1);
    }

    #[test]
    fn exhausted_ship_retries_degrade_instead_of_wedging() {
        let metrics = Arc::new(EngineMetrics::new());
        let hook =
            ReplicationHook::builder(ReplicationMode::Synchronous, LatencyModel::in_memory(), 1)
                .faults(ReplFaultPlan::none().with_ship_errors(10))
                .config(
                    SemiSyncConfig::default()
                        .with_ship_retries(2, Duration::from_micros(5))
                        .with_background_applier(false),
                )
                .metrics(Arc::clone(&metrics))
                .build();
        hook.on_commit_batch(&[event(1, 10)]).unwrap();
        assert_eq!(hook.sync_state(), SyncState::Degraded);
        assert_eq!(metrics.degraded_commits.get(), 1);
        assert!(metrics.ship_retries.get() >= 2);
    }

    #[test]
    fn bounded_queue_sheds_observably_and_catchup_recovers() {
        let metrics = Arc::new(EngineMetrics::new());
        let hook =
            ReplicationHook::builder(ReplicationMode::Asynchronous, LatencyModel::in_memory(), 1)
                .config(
                    SemiSyncConfig::default()
                        .with_queue_capacity(2)
                        .with_background_applier(false),
                )
                .metrics(Arc::clone(&metrics))
                .build();
        // With no background applier the queue only drains lazily, so the
        // third enqueue finds it full and sheds.
        hook.shared.ship_tx.try_send((0, 0)).unwrap();
        hook.shared.ship_tx.try_send((0, 0)).unwrap();
        hook.on_commit_batch(&[event(1, 10)]).unwrap();
        assert_eq!(metrics.ship_queue_full.get(), 1);
        // Shedding dropped work, not data: catch-up re-ships the retained
        // binlog and the replica converges anyway.
        assert!(hook.wait_caught_up(1, Duration::from_secs(2)));
        assert_eq!(hook.acked_pos(0), 1);
        hook.shutdown();
    }

    #[test]
    fn shutdown_and_drop_teardown_once() {
        let hook =
            ReplicationHook::new(ReplicationMode::Asynchronous, LatencyModel::in_memory(), 1);
        hook.on_commit_batch(&[event(1, 10)]).unwrap();
        hook.shutdown();
        hook.shutdown(); // Idempotent.
        assert_eq!(hook.replicas()[0].applied_txns(), 1, "queue flushed");
        // Drop after shutdown is the second teardown call — a no-op.
    }
}
