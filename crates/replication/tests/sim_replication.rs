//! Whole-pipeline replication crash/fault exploration (`txsql-sim` + the
//! storage fault injector + the replication fault injector): every seed
//! derives a [`FaultPlan`] that crashes the *primary* inside the
//! commit→binlog pipeline (`pre_binlog_ship`, `post_ship_pre_ack`,
//! `post_ack`) **and** a [`ReplFaultPlan`] that perturbs the *replication
//! path* (ack drop, replica stall, replica crash/restart, transient ship
//! errors), runs a multi-worker commit workload under the deterministic
//! scheduler, and checks the **replication recovery oracle**:
//!
//! 1. every commit the client *acknowledged* (an `Ok` return from
//!    [`Database::commit`]) survives in durable redo after
//!    [`Database::restart_from_crash`];
//! 2. replicas never retain a transaction the restarted primary lost: the
//!    pipeline flushes redo *before* it ships, so everything a replica
//!    applied is bounded by the recovered durable state;
//! 3. the degraded → re-synced state machine never loses or double-applies
//!    a batch: on fault-only schedules the replicas converge to the exact
//!    primary state, apply each binlog entry exactly once, and a degraded
//!    hook re-enters semi-sync once they catch up.
//!
//! A failing seed panics with a replayable schedule trace; the seed set is
//! `TXSQL_SIM_SEEDS`-overridable (CI pins `0..200`).  Coverage
//! meta-assertions confirm every binlog crash point and every replication
//! fault point actually fired across the sweep — otherwise the exploration
//! is vacuous.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txsql_common::latency::LatencyModel;
use txsql_common::{Row, TableId, TxnId};
use txsql_core::{BinlogTxn, CommitHook, Database, EngineConfig, Protocol};
use txsql_replication::{
    ReplFaultPlan, ReplFaultPoint, Replica, ReplicationHook, ReplicationMode, SemiSyncConfig,
    SyncState,
};
use txsql_storage::fault::{CrashPoint, FaultPlan};
use txsql_storage::TableSchema;

const ACCOUNTS: TableId = TableId(1);
const HOT_PK: i64 = 1;
const WORKERS: usize = 3;
const PER_WORKER: usize = 2;
const REPLICAS: usize = 2;

fn cold_pk(worker: usize) -> i64 {
    100 + worker as i64
}

/// Engine configuration safe for a sim run: every thread touching the engine
/// must be a sim thread, so the background hotspot sweeper stays off.
fn sim_config(protocol: Protocol) -> EngineConfig {
    let mut config = EngineConfig::for_protocol(protocol)
        .with_hotspot_threshold(2)
        .with_lock_wait_timeout(Duration::from_millis(100));
    config.start_sweeper = false;
    config.record_history = false;
    config
}

/// Semi-sync knobs for exploration: a short ack timeout so injected stalls
/// and crashes degrade the hook within the run, and no background applier
/// (the sim cannot schedule threads it did not spawn).
fn sim_semi_sync() -> SemiSyncConfig {
    SemiSyncConfig::default()
        .with_ack_timeout(Duration::from_millis(2))
        .with_background_applier(false)
}

fn run_seed(seed: u64, build: impl Fn(&mut txsql_sim::Sim)) -> txsql_sim::RunReport {
    let report = txsql_sim::run_with_seed(seed, build);
    if let Some(failure) = &report.failure {
        panic!(
            "seed {seed} failed: {failure}\nschedule: {:?}\nreproduce: txsql_sim::replay(&schedule, build)",
            report.schedule
        );
    }
    report
}

fn setup_accounts(db: &Database) {
    db.create_table(TableSchema::new(ACCOUNTS, "accounts", 2))
        .unwrap();
    db.load_row(ACCOUNTS, Row::from_ints(&[HOT_PK, 0])).unwrap();
    for worker in 0..WORKERS {
        db.load_row(ACCOUNTS, Row::from_ints(&[cold_pk(worker), 0]))
            .unwrap();
    }
}

fn committed_value(db: &Database, pk: i64) -> i64 {
    let record = db.record_id(ACCOUNTS, pk).unwrap();
    db.storage()
        .read_committed(ACCOUNTS, record)
        .unwrap()
        .unwrap()
        .get_int(1)
        .unwrap()
}

/// The value a replica holds for `pk` (0 when it never saw the row — bulk
/// load is not replicated, so replicas start empty).
fn replica_value(replica: &Replica, pk: i64) -> i64 {
    replica
        .row(ACCOUNTS, pk)
        .and_then(|row| row.get_int(1))
        .unwrap_or(0)
}

/// One worker of the replicated crash workload: each transaction adds `+1`
/// to the hot row *and* `+1` to the worker's private cold row (durability and
/// atomicity stay checkable), committing through the registered replication
/// hook.  Retryable contention errors retry; a crash stops the worker — the
/// primary is dead and only `restart_from_crash` continues.
fn repl_worker(
    db: Arc<Database>,
    worker: usize,
    acked: Arc<parking_lot::Mutex<Vec<TxnId>>>,
    commit_attempts: Arc<AtomicI64>,
) {
    let mut committed = 0;
    let mut tries = 0;
    while committed < PER_WORKER {
        tries += 1;
        if tries > 60 {
            return; // starved by this schedule — the oracle still holds
        }
        let mut txn = db.begin();
        let step = db
            .update_add(&mut txn, ACCOUNTS, HOT_PK, 1, 1)
            .and_then(|_| db.update_add(&mut txn, ACCOUNTS, cold_pk(worker), 1, 1));
        match step {
            Ok(_) => {
                let id = txn.id;
                commit_attempts.fetch_add(1, Ordering::Relaxed);
                match db.commit(txn) {
                    Ok(()) => {
                        acked.lock().push(id);
                        committed += 1;
                    }
                    Err(err) if err.is_retryable() => {}
                    Err(_) => return, // crashed: process is dead
                }
            }
            Err(err) if err.is_retryable() => db.rollback(txn, Some(&err)),
            Err(_) => {
                db.rollback(txn, None);
                return;
            }
        }
    }
}

/// What one explored seed contributed to the sweep-wide coverage
/// meta-assertions.
struct SeedOutcome {
    crashed_at: Option<&'static str>,
    repl_hits: Vec<(&'static str, u64)>,
    semi_sync_timeouts: u64,
    degraded_commits: u64,
    semi_sync_resyncs: u64,
}

/// Runs the replicated workload under one seed — primary crash plan and
/// replication fault plan both active — and applies the recovery oracle.
fn explore_one_seed(seed: u64) -> SeedOutcome {
    let plan = FaultPlan::seeded_binlog(seed);
    let target = plan.crash_target();
    let db = Database::new(sim_config(Protocol::GroupLockingTxsql).with_fault_plan(plan));
    setup_accounts(&db);
    // Baseline checkpoint: bulk-loaded rows are not redo-logged, and none of
    // the binlog crash points can fire outside a commit.
    db.checkpoint().unwrap();

    let metrics = db.metrics_handle();
    let hook = ReplicationHook::builder(
        ReplicationMode::Synchronous,
        LatencyModel::in_memory(),
        REPLICAS,
    )
    .config(sim_semi_sync())
    .faults(ReplFaultPlan::seeded(seed))
    .crash_injector(Arc::clone(db.faults()))
    .metrics(Arc::clone(&metrics))
    .build();
    db.register_commit_hook(hook.clone());

    let db = Arc::new(db);
    let acked = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let commit_attempts = Arc::new(AtomicI64::new(0));
    let db_build = Arc::clone(&db);
    let acked_build = Arc::clone(&acked);
    let attempts_build = Arc::clone(&commit_attempts);
    run_seed(seed, move |sim| {
        for worker in 0..WORKERS {
            let db = Arc::clone(&db_build);
            let acked = Arc::clone(&acked_build);
            let attempts = Arc::clone(&attempts_build);
            sim.spawn(format!("worker-{worker}"), move || {
                repl_worker(db, worker, acked, attempts);
            });
        }
    });

    let acked: Vec<TxnId> = acked.lock().clone();
    let attempts = commit_attempts.load(Ordering::Relaxed);

    let crashed_at = if db.has_crashed() {
        assert_eq!(
            db.metrics().crash_injected.get(),
            1,
            "seed {seed}: a crash fires exactly once"
        );
        Some(target.expect("only a planned crash can fire").0.name())
    } else {
        None
    };

    if db.has_crashed() {
        // --- The primary died inside the binlog pipeline: restart it and
        // --- apply the recovery oracle.
        let (recovered, report) = db.restart_from_crash().unwrap();

        // (1) Every client-acked transaction survives in durable redo.
        for id in &acked {
            assert!(
                !report.rolled_back.contains(id),
                "seed {seed}: acked transaction {id} was rolled back\n{}",
                report.summary()
            );
        }
        let hot = committed_value(&recovered, HOT_PK);
        assert!(
            hot >= acked.len() as i64 && hot <= attempts,
            "seed {seed}: recovered hot value {hot} outside [{}, {attempts}]\n{}",
            acked.len(),
            report.summary()
        );
        // Atomicity lockstep: each transaction writes the hot row and one
        // cold row together.
        let cold_sum: i64 = (0..WORKERS)
            .map(|w| committed_value(&recovered, cold_pk(w)))
            .sum();
        assert_eq!(
            hot, cold_sum,
            "seed {seed}: a transaction recovered partially"
        );

        // (2) Replicas never retain a transaction the restarted primary
        // lost: redo flushes before the binlog ships, so every applied
        // after-image is bounded by the recovered durable counters (the
        // workload's values are monotonic).
        for replica in hook.replicas() {
            let replica_hot = replica_value(replica, HOT_PK);
            assert!(
                replica_hot <= hot,
                "seed {seed}: {} retains hot value {replica_hot} > recovered {hot} \
                 — it applied a transaction the restarted primary lost",
                replica.name()
            );
            for worker in 0..WORKERS {
                let replica_cold = replica_value(replica, cold_pk(worker));
                let recovered_cold = committed_value(&recovered, cold_pk(worker));
                assert!(
                    replica_cold <= recovered_cold,
                    "seed {seed}: {} retains cold[{worker}] {replica_cold} > recovered {recovered_cold}",
                    replica.name()
                );
            }
        }

        // (3) The restarted primary is fully working.
        let mut probe = recovered.begin();
        recovered
            .update_add(&mut probe, ACCOUNTS, HOT_PK, 1, 1)
            .unwrap();
        recovered.commit(probe).unwrap();
        assert_eq!(committed_value(&recovered, HOT_PK), hot + 1);
        recovered.shutdown();
    } else {
        // --- Fault-only schedule (or the planned crash never triggered):
        // --- the degrade → re-sync cycle must converge exactly.
        let expected = hook.binlog_len();
        assert!(
            hook.wait_caught_up(expected, Duration::from_secs(2)),
            "seed {seed}: replicas never caught up to {expected} binlog entries \
             (acked: {:?}, lag {})",
            (0..REPLICAS).map(|i| hook.acked_pos(i)).collect::<Vec<_>>(),
            hook.replica_lag()
        );
        // A degraded hook re-syncs once the quorum has caught up; the last
        // ack of the run can race the catch-up check, so give the pump a
        // few more rounds before asserting.
        for _ in 0..3 {
            if hook.sync_state() == SyncState::SemiSync {
                break;
            }
            hook.wait_caught_up(expected, Duration::from_millis(50));
        }
        assert_eq!(
            hook.sync_state(),
            SyncState::SemiSync,
            "seed {seed}: hook stayed degraded after the replicas caught up"
        );

        // Nothing acked was lost (no crash: every acked +1 is visible) and
        // nothing unacked leaked in.
        let hot = committed_value(&db, HOT_PK);
        assert_eq!(
            hot,
            acked.len() as i64,
            "seed {seed}: faults without a crash must not lose or invent commits"
        );

        // Exact convergence: every replica row matches the primary's
        // committed value, and every binlog entry was applied exactly once —
        // no batch lost, none double-applied across degrade/re-sync.
        for replica in hook.replicas() {
            let diverging = replica.diverging_rows(|table, pk| {
                db.record_id(table, pk)
                    .ok()
                    .and_then(|record| db.storage().read_committed(table, record).ok().flatten())
            });
            assert!(
                diverging.is_empty(),
                "seed {seed}: {} diverges from the primary on {diverging:?}",
                replica.name()
            );
            assert_eq!(
                replica.log_pos(),
                expected,
                "seed {seed}: {} relay position did not reach the binlog end",
                replica.name()
            );
            assert_eq!(
                replica.applied_txns(),
                expected,
                "seed {seed}: {} applied a batch twice (or lost one)",
                replica.name()
            );
        }
        hook.shutdown();
        db.shutdown();
    }

    SeedOutcome {
        crashed_at,
        repl_hits: ReplFaultPoint::ALL
            .iter()
            .map(|point| (point.name(), hook.faults().hits_of(*point)))
            .collect(),
        semi_sync_timeouts: metrics.semi_sync_timeouts.get(),
        degraded_commits: metrics.degraded_commits.get(),
        semi_sync_resyncs: metrics.semi_sync_resyncs.get(),
    }
}

/// Seeded replication exploration: every explored schedule must satisfy the
/// recovery oracle, and across the seed set every binlog crash point, every
/// replication fault point, and the degrade → re-sync transition must
/// actually fire (otherwise the exploration is vacuous).
#[test]
fn sim_replication_exploration_upholds_the_recovery_oracle() {
    let seeds = txsql_sim::ci_seeds(200);
    let n_seeds = seeds.len();
    let mut crashed_points = HashSet::new();
    let mut crashed_seeds = 0u64;
    let mut repl_hits: HashMap<&'static str, u64> = HashMap::new();
    let mut timeouts = 0u64;
    let mut degraded = 0u64;
    let mut resyncs = 0u64;
    for seed in seeds {
        let outcome = explore_one_seed(seed);
        if let Some(point) = outcome.crashed_at {
            crashed_points.insert(point);
            crashed_seeds += 1;
        }
        for (name, hits) in outcome.repl_hits {
            *repl_hits.entry(name).or_insert(0) += hits;
        }
        timeouts += outcome.semi_sync_timeouts;
        degraded += outcome.degraded_commits;
        resyncs += outcome.semi_sync_resyncs;
    }
    assert!(
        crashed_seeds > 0,
        "no explored schedule crashed the primary ({n_seeds} seeds)"
    );
    // Meta-assertion: every crash point inside the commit→binlog pipeline
    // fired, including the durable-but-unacked `post_ship_pre_ack` window.
    for point in ["pre_binlog_ship", "post_ship_pre_ack", "post_ack"] {
        assert!(
            crashed_points.contains(point),
            "crash point {point} never fired across {n_seeds} seeds (saw {crashed_points:?})"
        );
    }
    // Meta-assertion: every replication fault point fired.
    for point in ReplFaultPoint::ALL {
        let hits = repl_hits.get(point.name()).copied().unwrap_or(0);
        assert!(
            hits > 0,
            "replication fault {} never fired across {n_seeds} seeds (saw {repl_hits:?})",
            point.name()
        );
    }
    // Meta-assertion: the degrade → re-sync state machine was exercised.
    assert!(
        timeouts > 0,
        "no explored schedule timed out an ack wait ({n_seeds} seeds)"
    );
    assert!(
        degraded > 0,
        "no explored schedule shipped a degraded commit ({n_seeds} seeds)"
    );
    assert!(
        resyncs > 0,
        "no explored schedule re-synced after degrading ({n_seeds} seeds)"
    );
}

// ---------------------------------------------------------------------------
// Ship-queue channel races: the bounded shipping queue is an instrumented
// channel, so enqueue (`try_send`), drain (`try_recv`) and shed (Full) are
// tagged yield points — the explorer can now place context switches *inside*
// the shed-vs-drain window, an interleaving class that was invisible while
// the queue was a plain VecDeque behind the state mutex.
// ---------------------------------------------------------------------------

/// Ship-queue races under exploration: concurrent committers (degraded to
/// the async path by a stalled replica) race each other and a
/// `wait_caught_up` drainer on a capacity-1 shipping channel.  On every
/// schedule, shedding may drop *work* but never *data* — catch-up re-ships
/// from the retained binlog and the replica converges exactly — and the
/// degraded hook re-syncs once the stall clears.
///
/// Per-yield-point coverage meta-assertions pin that the sweep actually
/// explored the new surface: channel yields fired (the queue is explorable),
/// at least one schedule shed on a full queue, and the degrade-to-async flip
/// occurred.
#[test]
fn sim_ship_queue_shed_drain_and_degrade_races_converge() {
    const COMMITTERS: usize = 3;
    const PER_COMMITTER: u64 = 2;
    const TOTAL: u64 = COMMITTERS as u64 * PER_COMMITTER;
    let seeds = txsql_sim::ci_seeds(200);
    let n_seeds = seeds.len();
    let mut classes = HashSet::new();
    let mut channel_yields = 0u64;
    let mut lock_yields = 0u64;
    let mut clock_yields = 0u64;
    let mut total_skips = 0u64;
    let mut shed_seeds = 0u64;
    let mut degraded_seeds = 0u64;

    for seed in seeds {
        let metrics = Arc::new(txsql_common::metrics::EngineMetrics::new());
        let hook =
            ReplicationHook::builder(ReplicationMode::Synchronous, LatencyModel::in_memory(), 1)
                .config(sim_semi_sync().with_queue_capacity(1))
                .faults(ReplFaultPlan::none().with_stall(None, 1, Duration::from_millis(10)))
                .metrics(Arc::clone(&metrics))
                .build();
        let next_trx = Arc::new(AtomicI64::new(1));

        let hook_build = Arc::clone(&hook);
        let trx_build = Arc::clone(&next_trx);
        let report = run_seed(seed, move |sim| {
            for committer in 0..COMMITTERS {
                let hook = Arc::clone(&hook_build);
                let next_trx = Arc::clone(&trx_build);
                sim.spawn(format!("committer-{committer}"), move || {
                    let pk = 100 + committer as i64;
                    for round in 1..=PER_COMMITTER {
                        let trx_no = next_trx.fetch_add(1, Ordering::Relaxed) as u64;
                        let batch = [BinlogTxn {
                            txn: TxnId(trx_no),
                            trx_no,
                            changes: vec![(ACCOUNTS, pk, Row::from_ints(&[pk, round as i64]))],
                            involves_hotspot: false,
                        }];
                        // Degraded shipping never fails the commit.
                        hook.on_commit_batch(&batch).unwrap();
                    }
                });
            }
            let hook = Arc::clone(&hook_build);
            sim.spawn("drainer", move || {
                // A concurrent catch-up poller: drains the queue and pumps
                // while the committers are still enqueueing — the drain half
                // of the shed-vs-drain race.
                hook.wait_caught_up(TOTAL, Duration::from_millis(500));
            });
        });

        // The stall outlives the ack timeout, so the first commit degraded;
        // afterwards everything flowed through the bounded channel.  Shed or
        // not, convergence must be exact.
        assert!(
            hook.wait_caught_up(TOTAL, Duration::from_secs(2)),
            "seed {seed}: replica never converged (lag {})",
            hook.replica_lag()
        );
        for _ in 0..3 {
            if hook.sync_state() == SyncState::SemiSync {
                break;
            }
            hook.wait_caught_up(TOTAL, Duration::from_millis(50));
        }
        assert_eq!(
            hook.sync_state(),
            SyncState::SemiSync,
            "seed {seed}: hook stayed degraded after the stall cleared"
        );
        let replica = &hook.replicas()[0];
        assert_eq!(
            replica.applied_txns(),
            TOTAL,
            "seed {seed}: a shed batch was lost (or one applied twice)"
        );
        assert_eq!(replica.log_pos(), TOTAL, "seed {seed}: relay gap");
        for committer in 0..COMMITTERS {
            let pk = 100 + committer as i64;
            assert_eq!(
                replica_value(replica, pk),
                PER_COMMITTER as i64,
                "seed {seed}: committer {committer}'s last write did not survive shipping"
            );
        }
        hook.shutdown();

        classes.insert(report.coverage.schedule_class);
        channel_yields += report.coverage.yields_of(txsql_sim::ResourceKind::Channel);
        lock_yields += report.coverage.yields_of(txsql_sim::ResourceKind::Lock);
        clock_yields += report.coverage.yields_of(txsql_sim::ResourceKind::Clock);
        total_skips += report.coverage.commuting_skips;
        if metrics.ship_queue_full.get() > 0 {
            shed_seeds += 1;
        }
        if metrics.degraded_commits.get() > 0 {
            degraded_seeds += 1;
        }
    }

    println!(
        "sim-coverage: suite=sim_ship_queue runs={n_seeds} classes={} \
         channel_yields={channel_yields} lock_yields={lock_yields} clock_yields={clock_yields} \
         skips={total_skips} shed_seeds={shed_seeds} degraded_seeds={degraded_seeds}",
        classes.len()
    );
    // Per-yield-point coverage: the shipping path must actually exercise the
    // instrumented primitives, or the exploration above is vacuous.
    assert!(
        channel_yields > 0,
        "the shipping channel never became a yield point"
    );
    assert!(lock_yields > 0, "no tagged mutex yields on the ship path");
    assert!(clock_yields > 0, "no tagged clock yields on the ship path");
    assert!(
        shed_seeds > 0,
        "no explored schedule filled the capacity-1 queue ({n_seeds} seeds) — \
         the shed-vs-drain interleaving class is not being reached"
    );
    assert!(
        degraded_seeds > 0,
        "no explored schedule flipped the hook to async shipping ({n_seeds} seeds)"
    );
    assert!(
        classes.len() > 1,
        "every seed collapsed to a single schedule class"
    );
}

/// The async applier as a *scheduled sim thread* (PR 9 leftover): instead of
/// committers draining the ship queue inline, a dedicated sim thread runs
/// [`ReplicationHook::run_applier_loop`] — the same loop the native
/// background thread runs — so the explorer interleaves enqueue, drain, idle
/// wake-ups and shutdown like any other threads.  Committers gate on
/// `applier_running()` before enqueueing, so every delivery in the run is
/// the applier's; the coordinator shuts the hook down once they finish, and
/// the loop must exit with the queue empty and the ownership flag cleared.
#[test]
fn sim_scheduled_applier_owns_the_ship_queue() {
    const COMMITTERS: usize = 2;
    const PER_COMMITTER: u64 = 2;
    const TOTAL: u64 = COMMITTERS as u64 * PER_COMMITTER;
    let seeds = txsql_sim::ci_seeds(100);
    let n_seeds = seeds.len();
    let mut classes = HashSet::new();
    let mut channel_yields = 0u64;

    for seed in seeds {
        let metrics = Arc::new(txsql_common::metrics::EngineMetrics::new());
        let hook =
            ReplicationHook::builder(ReplicationMode::Asynchronous, LatencyModel::in_memory(), 1)
                .config(sim_semi_sync().with_queue_capacity(4))
                .metrics(Arc::clone(&metrics))
                .build();
        let next_trx = Arc::new(AtomicI64::new(1));
        let done = Arc::new(AtomicI64::new(0));

        let hook_build = Arc::clone(&hook);
        let trx_build = Arc::clone(&next_trx);
        let done_build = Arc::clone(&done);
        let report = run_seed(seed, move |sim| {
            let applier = Arc::clone(&hook_build);
            sim.spawn("applier", move || applier.run_applier_loop());
            for committer in 0..COMMITTERS {
                let hook = Arc::clone(&hook_build);
                let next_trx = Arc::clone(&trx_build);
                let done = Arc::clone(&done_build);
                sim.spawn(format!("committer-{committer}"), move || {
                    // Wait for the applier to claim the queue, so the drain
                    // below is attributable to it alone.
                    while !hook.applier_running() {
                        txsql_common::latency::ut_delay(10);
                    }
                    let pk = 100 + committer as i64;
                    for round in 1..=PER_COMMITTER {
                        let trx_no = next_trx.fetch_add(1, Ordering::Relaxed) as u64;
                        let batch = [BinlogTxn {
                            txn: TxnId(trx_no),
                            trx_no,
                            changes: vec![(ACCOUNTS, pk, Row::from_ints(&[pk, round as i64]))],
                            involves_hotspot: false,
                        }];
                        hook.on_commit_batch(&batch).unwrap();
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
            let hook = Arc::clone(&hook_build);
            let done = Arc::clone(&done_build);
            sim.spawn("coordinator", move || {
                while done.load(Ordering::Relaxed) < COMMITTERS as i64 {
                    txsql_common::latency::ut_delay(50);
                }
                // Stop the applier: it may only exit once the queue is empty.
                hook.shutdown();
            });
        });

        assert!(
            !hook.applier_running(),
            "seed {seed}: the applier exited without releasing queue ownership"
        );
        let replica = &hook.replicas()[0];
        assert_eq!(
            replica.applied_txns(),
            TOTAL,
            "seed {seed}: the scheduled applier lost a queued batch"
        );
        assert_eq!(
            hook.replica_lag(),
            0,
            "seed {seed}: shutdown returned with the replica still behind"
        );
        for committer in 0..COMMITTERS {
            let pk = 100 + committer as i64;
            assert_eq!(
                replica_value(replica, pk),
                PER_COMMITTER as i64,
                "seed {seed}: committer {committer}'s last write did not survive"
            );
        }

        classes.insert(report.coverage.schedule_class);
        channel_yields += report.coverage.yields_of(txsql_sim::ResourceKind::Channel);
    }

    println!(
        "sim-coverage: suite=sim_scheduled_applier runs={n_seeds} classes={} \
         channel_yields={channel_yields}",
        classes.len()
    );
    assert!(
        channel_yields > 0,
        "the applier's queue never became a yield point"
    );
    assert!(
        classes.len() > 1,
        "every seed collapsed to a single schedule class"
    );
}

// ---------------------------------------------------------------------------
// Deterministic crash-window checks (no sim needed): each binlog crash point
// pins down what the client, the replicas and durable redo saw.
// ---------------------------------------------------------------------------

/// Builds a primary + semi-sync hook pair with `plan` installed, runs one
/// commit (which the plan crashes), and returns the pieces for inspection.
fn crash_one_commit(plan: FaultPlan) -> (Arc<Database>, Arc<ReplicationHook>, TxnId) {
    let db = Database::new(sim_config(Protocol::GroupLockingTxsql).with_fault_plan(plan));
    setup_accounts(&db);
    db.checkpoint().unwrap();
    let hook = ReplicationHook::builder(
        ReplicationMode::Synchronous,
        LatencyModel::in_memory(),
        REPLICAS,
    )
    .config(sim_semi_sync())
    .crash_injector(Arc::clone(db.faults()))
    .metrics(db.metrics_handle())
    .build();
    db.register_commit_hook(hook.clone());

    let mut txn = db.begin();
    db.update_add(&mut txn, ACCOUNTS, HOT_PK, 1, 1).unwrap();
    let id = txn.id;
    let err = db.commit(txn).unwrap_err();
    assert!(
        matches!(err, txsql_common::Error::Crashed { .. }),
        "expected an injected crash, got {err}"
    );
    assert!(db.has_crashed());
    (Arc::new(db), hook, id)
}

/// `pre_binlog_ship`: the crash lands after the redo flush but before any
/// replica saw the batch.  The client got an error (ambiguous outcome), the
/// replicas saw nothing, and recovery replays the durable commit — which the
/// oracle's envelope permits.
#[test]
fn pre_binlog_ship_crash_is_durable_but_never_shipped() {
    let plan = FaultPlan::none().crash_at(CrashPoint::PreBinlogShip, 1);
    let (db, hook, id) = crash_one_commit(plan);
    assert_eq!(hook.binlog_len(), 0, "the batch never reached the hook");
    for replica in hook.replicas() {
        assert_eq!(replica.applied_txns(), 0);
    }
    let (recovered, report) = db.restart_from_crash().unwrap();
    assert!(
        report.committed.contains(&id),
        "the commit record was flushed before the ship: {}",
        report.summary()
    );
    assert_eq!(committed_value(&recovered, HOT_PK), 1);
    recovered.shutdown();
}

/// `post_ship_pre_ack`: the crash lands between the ship and the ack wait.
/// The replicas already applied the batch, the client got an error, and the
/// restarted primary still has the transaction — the replicas are *not*
/// ahead of durable state.
#[test]
fn post_ship_pre_ack_crash_leaves_replicas_bounded_by_durable_redo() {
    let plan = FaultPlan::none().crash_at(CrashPoint::PostShipPreAck, 1);
    let (db, hook, id) = crash_one_commit(plan);
    for replica in hook.replicas() {
        assert_eq!(
            replica_value(replica, HOT_PK),
            1,
            "the ship preceded the crash"
        );
    }
    let (recovered, report) = db.restart_from_crash().unwrap();
    assert!(report.committed.contains(&id));
    assert_eq!(
        committed_value(&recovered, HOT_PK),
        1,
        "everything the replicas applied is durable on the restarted primary"
    );
    recovered.shutdown();
}

/// `post_ack`: the crash lands after the ack quorum was met but before the
/// client was answered.  Replicas and durable redo both have the
/// transaction; only the client ack was lost.
#[test]
fn post_ack_crash_loses_only_the_client_ack() {
    let plan = FaultPlan::none().crash_at(CrashPoint::PostAck, 1);
    let (db, hook, id) = crash_one_commit(plan);
    assert!(
        hook.acked_pos(0) >= 1 || hook.acked_pos(1) >= 1,
        "the ack quorum was met before the crash"
    );
    let (recovered, report) = db.restart_from_crash().unwrap();
    assert!(report.committed.contains(&id));
    assert_eq!(committed_value(&recovered, HOT_PK), 1);
    recovered.shutdown();
}
