//! Integration tests of the engine: every protocol must preserve the basic
//! transactional guarantees, and the hotspot machinery must reproduce the
//! schedules and examples of the paper (§3.3, §4.4, §4.5, §5).

use std::sync::Arc;
use std::thread;
use std::time::Duration;
use txsql_common::{Row, TableId, Value};
use txsql_core::{Database, EngineConfig, Operation, Protocol, TxnProgram};
use txsql_storage::TableSchema;

const ACCOUNTS: TableId = TableId(1);
const JOURNAL: TableId = TableId(2);

/// Builds a database with an `accounts(id, balance)` table holding
/// `n_accounts` rows with balance 1000, and an empty `journal(id, amount)`.
fn setup(config: EngineConfig, n_accounts: i64) -> Database {
    let db = Database::new(config);
    db.create_table(TableSchema::new(ACCOUNTS, "accounts", 2))
        .unwrap();
    db.create_table(TableSchema::new(JOURNAL, "journal", 2))
        .unwrap();
    for pk in 0..n_accounts {
        db.load_row(ACCOUNTS, Row::from_ints(&[pk, 1_000])).unwrap();
    }
    db
}

fn hot_config(protocol: Protocol) -> EngineConfig {
    // Low promotion threshold so the short tests actually trigger hotspot
    // handling; short timeouts keep failure cases fast.
    EngineConfig::for_protocol(protocol)
        .with_hotspot_threshold(2)
        .with_lock_wait_timeout(Duration::from_millis(500))
}

fn committed_balance(db: &Database, pk: i64) -> i64 {
    let record = db.record_id(ACCOUNTS, pk).unwrap();
    db.storage()
        .read_committed(ACCOUNTS, record)
        .unwrap()
        .map(|r| r.get_int(1).unwrap())
        .unwrap()
}

// ---------------------------------------------------------------------------
// Basic transactional guarantees, per protocol
// ---------------------------------------------------------------------------

#[test]
fn per_txn_metrics_scratch_loses_no_counts_across_abort_paths() {
    // Every transaction's lock counters now accumulate in a per-transaction
    // scratch that only reaches EngineMetrics when the transaction drops
    // (TxnMetrics flush-on-drop).  This storm mixes commits, explicit
    // rollbacks and lock-wait-timeout aborts on a contended row: if any
    // path lost its scratch, the `locks_released` total could not balance
    // against the app-side count of records the registry ever tracked, and
    // leftover bookkeeping would show in the `lock_registry_entries` gauge.
    use std::sync::atomic::{AtomicU64, Ordering};
    let db = setup(
        EngineConfig::for_protocol(Protocol::LightweightO1)
            .with_lock_wait_timeout(Duration::from_millis(10)),
        64,
    );
    const THREADS: usize = 6;
    const TXNS_PER_THREAD: usize = 60;
    const HOT_PK: i64 = 0;
    let tracked = Arc::new(AtomicU64::new(0));
    thread::scope(|scope| {
        for worker in 0..THREADS {
            let db = db.clone();
            let tracked = Arc::clone(&tracked);
            scope.spawn(move || {
                for i in 0..TXNS_PER_THREAD {
                    let mut txn = db.begin();
                    // Two cold records in a range PRIVATE to this worker
                    // (pks 1 + worker*10 .. 10 + worker*10), so the cold
                    // acquisitions never cross-contend and the unwrap below
                    // cannot trip on another worker's 10 ms timeout.
                    let base = (1 + worker * 10 + i % 5) as i64;
                    for pk in [base, base + 5] {
                        db.update_add(&mut txn, ACCOUNTS, pk, 1, 1).unwrap();
                        tracked.fetch_add(1, Ordering::Relaxed);
                    }
                    // The contended row: a grant is one more tracked record;
                    // a timed-out wait is also tracked (then forgotten by
                    // the wait loop's cleanup) — both must be released
                    // exactly once.
                    match db.update_add(&mut txn, ACCOUNTS, HOT_PK, 1, 1) {
                        Ok(_) => {
                            tracked.fetch_add(1, Ordering::Relaxed);
                            if i % 3 == 0 {
                                db.rollback(txn, None);
                            } else {
                                db.commit(txn).unwrap();
                            }
                        }
                        Err(err) => {
                            tracked.fetch_add(1, Ordering::Relaxed);
                            db.rollback(txn, Some(&err));
                        }
                    }
                }
            });
        }
    });
    // All transactions finished and dropped: every scratch has flushed.
    assert_eq!(
        db.metrics().locks_released.get(),
        tracked.load(Ordering::Relaxed),
        "released-lock total must balance the records ever tracked — a \
         mismatch means an abort path lost its metrics scratch"
    );
    let snapshot = db.snapshot_metrics(Duration::from_secs(1));
    assert_eq!(
        snapshot.lock_registry_entries, 0,
        "registry must drain to zero after the storm"
    );
    assert!(
        snapshot.release_shard_locks > 0,
        "scratch counts must flush"
    );
    db.shutdown();
}

#[test]
fn commit_makes_updates_visible_under_every_protocol() {
    for protocol in Protocol::ALL {
        let db = setup(EngineConfig::for_protocol(protocol), 4);
        let program = TxnProgram::new(vec![Operation::UpdateAdd {
            table: ACCOUNTS,
            pk: 1,
            column: 1,
            delta: 25,
        }]);
        let outcome = db.execute_program(&program).unwrap();
        assert!(outcome.committed, "{protocol:?}");
        assert_eq!(committed_balance(&db, 1), 1_025, "{protocol:?}");
        assert_eq!(db.metrics().committed.get(), 1, "{protocol:?}");
        db.shutdown();
    }
}

#[test]
fn explicit_rollback_restores_old_value_under_every_protocol() {
    for protocol in Protocol::ALL {
        let db = setup(EngineConfig::for_protocol(protocol), 4);
        let program = TxnProgram::new(vec![
            Operation::UpdateAdd {
                table: ACCOUNTS,
                pk: 1,
                column: 1,
                delta: 500,
            },
            Operation::ForcedRollback,
        ]);
        let outcome = db.execute_program(&program).unwrap();
        assert!(!outcome.committed, "{protocol:?}");
        assert_eq!(committed_balance(&db, 1), 1_000, "{protocol:?}");
        assert_eq!(db.metrics().aborted.get(), 1, "{protocol:?}");
        db.shutdown();
    }
}

#[test]
fn snapshot_reads_do_not_observe_uncommitted_updates() {
    for protocol in [
        Protocol::Mysql2pl,
        Protocol::LightweightO1,
        Protocol::GroupLockingTxsql,
    ] {
        let db = setup(EngineConfig::for_protocol(protocol), 4);
        let mut writer = db.begin();
        db.update_add(&mut writer, ACCOUNTS, 2, 1, 77).unwrap();
        let mut reader = db.begin();
        let row = db.read(&mut reader, ACCOUNTS, 2).unwrap();
        assert_eq!(row.get_int(1), Some(1_000), "{protocol:?}");
        db.rollback(reader, None);
        db.commit(writer).unwrap();
        let mut reader2 = db.begin();
        assert_eq!(
            db.read(&mut reader2, ACCOUNTS, 2).unwrap().get_int(1),
            Some(1_077)
        );
        db.rollback(reader2, None);
        db.shutdown();
    }
}

#[test]
fn insert_and_read_back() {
    let db = setup(EngineConfig::for_protocol(Protocol::LightweightO1), 2);
    let program = TxnProgram::new(vec![Operation::Insert {
        table: JOURNAL,
        pk: 42,
        fill: 7,
    }]);
    db.execute_program(&program).unwrap();
    let record = db.record_id(JOURNAL, 42).unwrap();
    let row = db
        .storage()
        .read_committed(JOURNAL, record)
        .unwrap()
        .unwrap();
    assert_eq!(row.get_int(1), Some(7));
    db.shutdown();
}

#[test]
fn select_for_update_blocks_conflicting_writers() {
    let db = setup(
        EngineConfig::for_protocol(Protocol::LightweightO1)
            .with_lock_wait_timeout(Duration::from_millis(50)),
        4,
    );
    let mut holder = db.begin();
    let row = db.select_for_update(&mut holder, ACCOUNTS, 3).unwrap();
    assert_eq!(row.get_int(1), Some(1_000));
    // A concurrent updater times out while the lock is held.
    let mut other = db.begin();
    let err = db.update_add(&mut other, ACCOUNTS, 3, 1, 1).unwrap_err();
    assert!(err.is_retryable());
    db.rollback(other, Some(&err));
    // The holder can update without re-queueing and commit.
    db.update_add(&mut holder, ACCOUNTS, 3, 1, 5).unwrap();
    db.commit(holder).unwrap();
    assert_eq!(committed_balance(&db, 3), 1_005);
    db.shutdown();
}

// ---------------------------------------------------------------------------
// Hotspot correctness: concurrent increments must not lose updates
// ---------------------------------------------------------------------------

/// How a concurrent-increment run arranges for the hotspot machinery to see
/// the contended row.  On a single-core runner a microsecond transaction is
/// essentially never preempted mid-critical-section, so *organic* waiters —
/// and therefore organic promotion — need help to materialise under OS
/// scheduling.  The organic interleavings themselves are covered by
/// deterministic schedule exploration in `sim_schedule.rs`
/// (`sim_organic_hotspot_promotion_loses_no_updates`); the explicit
/// promote/pin variants here keep wall-clock OS-thread coverage.
#[derive(Clone, Copy, PartialEq)]
enum HotSetup {
    /// No help: rely on scheduler preemption (fine for sum-conservation runs).
    Organic,
    /// Promote the row before any traffic (deterministic hot-path coverage,
    /// and no transaction ever straddles the promotion boundary).
    PromoteFirst,
    /// Hold the row's lock in a pinning transaction for the first ~50 ms so
    /// workers pile up and the engine *detects* the hotspot itself.
    PinRow,
}

fn run_concurrent_increments(protocol: Protocol, threads: usize, per_thread: usize) -> Database {
    run_concurrent_increments_with(protocol, threads, per_thread, HotSetup::Organic)
}

fn run_concurrent_increments_with(
    protocol: Protocol,
    threads: usize,
    per_thread: usize,
    hot_setup: HotSetup,
) -> Database {
    let db = setup(hot_config(protocol), 2);
    let db = Arc::new(db);
    if hot_setup == HotSetup::PromoteFirst {
        db.hotspots().promote(db.record_id(ACCOUNTS, 0).unwrap());
    }
    let pin = if hot_setup == HotSetup::PinRow {
        let mut txn = db.begin();
        db.update_add(&mut txn, ACCOUNTS, 0, 1, 0).unwrap();
        Some(txn)
    } else {
        None
    };
    let barrier = Arc::new(std::sync::Barrier::new(threads));
    let mut handles = Vec::new();
    for worker in 0..threads {
        let db = Arc::clone(&db);
        let barrier = Arc::clone(&barrier);
        handles.push(thread::spawn(move || {
            barrier.wait();
            let program = TxnProgram::new(vec![Operation::UpdateAdd {
                table: ACCOUNTS,
                pk: 0,
                column: 1,
                delta: 1,
            }]);
            let mut committed = 0usize;
            while committed < per_thread {
                match db.execute_program(&program) {
                    Ok(outcome) if outcome.committed => committed += 1,
                    Ok(_) => {}
                    Err(err) if err.is_retryable() => {}
                    Err(err) => panic!("worker {worker}: unexpected error {err}"),
                }
            }
        }));
    }
    if let Some(txn) = pin {
        // Give the workers time to queue behind the pinned row, then let go.
        thread::sleep(Duration::from_millis(50));
        db.commit(txn).unwrap();
    }
    for h in handles {
        h.join().unwrap();
    }
    Arc::try_unwrap(db).unwrap_or_else(|arc| (*arc).clone())
}

#[test]
fn concurrent_hot_increments_are_not_lost_txsql() {
    let threads = 8;
    let per_thread = 30;
    // Promote the row up front so the group path engages deterministically
    // (organic promotion needs multi-core preemption; see HotSetup).
    let db = run_concurrent_increments_with(
        Protocol::GroupLockingTxsql,
        threads,
        per_thread,
        HotSetup::PromoteFirst,
    );
    assert_eq!(
        committed_balance(&db, 0),
        1_000 + (threads * per_thread) as i64
    );
    // The hot row must actually have been grouped.
    assert!(
        db.metrics().hotspot_group_entries.get() > 0,
        "group locking never engaged"
    );
    db.shutdown();
}

#[test]
fn concurrent_hot_increments_are_not_lost_queue_locking() {
    let threads = 8;
    let per_thread = 20;
    let db = run_concurrent_increments(Protocol::QueueLockingO2, threads, per_thread);
    assert_eq!(
        committed_balance(&db, 0),
        1_000 + (threads * per_thread) as i64
    );
    db.shutdown();
}

#[test]
fn concurrent_hot_increments_are_not_lost_mysql_and_o1() {
    for protocol in [Protocol::Mysql2pl, Protocol::LightweightO1] {
        let threads = 4;
        let per_thread = 15;
        let db = run_concurrent_increments(protocol, threads, per_thread);
        assert_eq!(
            committed_balance(&db, 0),
            1_000 + (threads * per_thread) as i64,
            "{protocol:?}"
        );
        db.shutdown();
    }
}

#[test]
fn concurrent_hot_increments_are_not_lost_bamboo() {
    let threads = 4;
    let per_thread = 15;
    let db = run_concurrent_increments(Protocol::Bamboo, threads, per_thread);
    assert_eq!(
        committed_balance(&db, 0),
        1_000 + (threads * per_thread) as i64
    );
    db.shutdown();
}

#[test]
fn concurrent_hot_increments_are_not_lost_aria() {
    let threads = 4;
    let per_thread = 15;
    let db = run_concurrent_increments(Protocol::Aria, threads, per_thread);
    assert_eq!(
        committed_balance(&db, 0),
        1_000 + (threads * per_thread) as i64
    );
    db.shutdown();
}

// ---------------------------------------------------------------------------
// Serializability audit (§5.2, §6.4.5)
// ---------------------------------------------------------------------------

#[test]
fn contended_histories_are_serializable_under_txsql() {
    let config = hot_config(Protocol::GroupLockingTxsql).with_history_recording(true);
    let db = Arc::new(setup(config, 4));
    let mut handles = Vec::new();
    for worker in 0..6 {
        let db = Arc::clone(&db);
        handles.push(thread::spawn(move || {
            let program = TxnProgram::new(vec![
                Operation::UpdateAdd {
                    table: ACCOUNTS,
                    pk: 0,
                    column: 1,
                    delta: 1,
                },
                Operation::Read {
                    table: ACCOUNTS,
                    pk: (worker % 3) as i64 + 1,
                },
            ]);
            let mut committed = 0;
            while committed < 20 {
                match db.execute_program(&program) {
                    Ok(o) if o.committed => committed += 1,
                    Ok(_) => {}
                    Err(e) if e.is_retryable() => {}
                    Err(e) => panic!("{e}"),
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let report = db.history().unwrap().check();
    assert!(report.is_serializable(), "cycle found: {:?}", report.cycle);
    assert!(report.transactions >= 120);
    db.shutdown();
}

// ---------------------------------------------------------------------------
// The paper's worked examples
// ---------------------------------------------------------------------------

/// §4.5: T1 and T2 both update the hot row, then both update a non-hot row.
/// The transaction that would block on the non-hot lock while sharing the hot
/// row with its blocker must be rolled back proactively.
#[test]
fn hot_plus_cold_deadlock_is_prevented() {
    let db = setup(hot_config(Protocol::GroupLockingTxsql), 4);
    let hot_record = db.record_id(ACCOUNTS, 0).unwrap();
    db.hotspots().promote(hot_record);

    let mut t1 = db.begin();
    let mut t2 = db.begin();
    // Both update the hot row (T1 first -> leader, T2 follower).
    db.update_add(&mut t1, ACCOUNTS, 0, 1, 1).unwrap();
    db.update_add(&mut t2, ACCOUNTS, 0, 1, 1).unwrap();
    // T1 takes the non-hot row.
    db.update_add(&mut t1, ACCOUNTS, 2, 1, 1).unwrap();
    // T2 now tries the same non-hot row: instead of waiting (which would
    // deadlock with the commit-order dependency), it is rolled back.
    let err = db.update_add(&mut t2, ACCOUNTS, 2, 1, 1).unwrap_err();
    assert!(
        matches!(err, txsql_common::Error::HotspotDeadlockPrevented { .. }),
        "expected prevention, got {err:?}"
    );
    db.rollback(t2, Some(&err));
    db.commit(t1).unwrap();
    assert_eq!(committed_balance(&db, 0), 1_001);
    assert_eq!(committed_balance(&db, 2), 1_001);
    db.shutdown();
}

/// §4.4: T1, T3, T2 update the hot row in that order; T1 then rolls back, so
/// T3 and T2 must cascade (their commits fail) and the row returns to its
/// original value.  T1's rollback blocks until its successors have rolled
/// back in reverse update order, so the three finishers run on separate
/// threads exactly like the paper's worked example.
#[test]
fn cascading_rollback_follows_reverse_update_order() {
    let db = Arc::new(setup(hot_config(Protocol::GroupLockingTxsql), 4));
    let hot_record = db.record_id(ACCOUNTS, 0).unwrap();
    db.hotspots().promote(hot_record);

    let mut t1 = db.begin();
    let mut t3 = db.begin();
    let mut t2 = db.begin();
    db.update_add(&mut t1, ACCOUNTS, 0, 1, 1).unwrap(); // leader, val -> 1001
    db.update_add(&mut t3, ACCOUNTS, 0, 1, 1).unwrap(); // follower, val -> 1002
    db.update_add(&mut t2, ACCOUNTS, 0, 1, 1).unwrap(); // follower, val -> 1003

    // T1 rolls back (blocks until T2 and T3 have rolled back).
    let db1 = Arc::clone(&db);
    let rollback_t1 = thread::spawn(move || {
        db1.rollback(
            t1,
            Some(&txsql_common::Error::ExplicitRollback {
                txn: txsql_common::TxnId(0),
            }),
        );
    });
    // T3 commits next: doomed, cascades (blocks until T2 rolled back).
    let db3 = Arc::clone(&db);
    let commit_t3 = thread::spawn(move || db3.commit(t3).unwrap_err());
    thread::sleep(Duration::from_millis(50));
    // T2 commits last: doomed, cascades immediately (it is the newest entry).
    let err2 = db.commit(t2).unwrap_err();
    assert!(err2.is_cascading(), "T2 should cascade, got {err2:?}");
    let err3 = commit_t3.join().unwrap();
    assert!(err3.is_cascading(), "T3 should cascade, got {err3:?}");
    rollback_t1.join().unwrap();

    assert_eq!(committed_balance(&db, 0), 1_000);
    assert!(db.metrics().cascading_aborts.get() >= 2);
    db.shutdown();
}

/// Figure 3(c): within a group only the leader locks; followers execute
/// without creating lock objects.
#[test]
fn group_locking_reduces_lock_objects_versus_o1() {
    let threads = 6;
    let per_thread = 25;
    let txsql = run_concurrent_increments(Protocol::GroupLockingTxsql, threads, per_thread);
    let o1 = run_concurrent_increments(Protocol::LightweightO1, threads, per_thread);
    let txsql_locks =
        txsql.metrics().locks_created.get() as f64 / txsql.metrics().committed.get().max(1) as f64;
    let o1_locks =
        o1.metrics().locks_created.get() as f64 / o1.metrics().committed.get().max(1) as f64;
    assert!(
        txsql_locks <= o1_locks + 0.1,
        "group locking should not create more lock objects per txn than O1 \
         (TXSQL {txsql_locks:.3} vs O1 {o1_locks:.3})"
    );
    txsql.shutdown();
    o1.shutdown();
}

#[test]
fn bamboo_cascades_when_dirty_writer_aborts() {
    let db = setup(
        EngineConfig::for_protocol(Protocol::Bamboo)
            .with_lock_wait_timeout(Duration::from_millis(200)),
        2,
    );
    let mut t1 = db.begin();
    db.update_add(&mut t1, ACCOUNTS, 0, 1, 10).unwrap();
    // Bamboo released T1's lock right after the update, so T2 can update the
    // same row and consume T1's dirty value.
    let mut t2 = db.begin();
    db.update_add(&mut t2, ACCOUNTS, 0, 1, 10).unwrap();
    // T1 aborts -> T2's commit must cascade.
    db.rollback(
        t1,
        Some(&txsql_common::Error::ExplicitRollback {
            txn: txsql_common::TxnId(0),
        }),
    );
    let err = db.commit(t2).unwrap_err();
    assert!(err.is_cascading(), "expected cascade, got {err:?}");
    assert_eq!(committed_balance(&db, 0), 1_000);
    db.shutdown();
}

#[test]
fn bamboo_batched_early_release_defers_to_statement_boundary() {
    // With early_release_batch = 3, the first two updates keep their locks
    // (deferred in the pending buffer); the third flushes all three in one
    // batched release_record_locks call.
    let db = setup(
        EngineConfig::for_protocol(Protocol::Bamboo)
            .with_lock_wait_timeout(Duration::from_millis(100))
            .with_early_release_batch(3),
        4,
    );
    let records: Vec<_> = (0..3)
        .map(|pk| db.record_id(ACCOUNTS, pk).unwrap())
        .collect();
    let mut t1 = db.begin();
    db.update_add(&mut t1, ACCOUNTS, 0, 1, 10).unwrap();
    db.update_add(&mut t1, ACCOUNTS, 1, 1, 10).unwrap();
    for r in &records[..2] {
        assert_eq!(
            db.lock_holders(*r),
            vec![t1.id],
            "deferred early release must keep the lock held"
        );
    }
    db.update_add(&mut t1, ACCOUNTS, 2, 1, 10).unwrap();
    for r in &records {
        assert!(
            db.lock_holders(*r).is_empty(),
            "reaching the batch size must flush every deferred release"
        );
    }
    // A second transaction can now consume the dirty values and both commit
    // in dependency order.
    let mut t2 = db.begin();
    db.update_add(&mut t2, ACCOUNTS, 0, 1, 5).unwrap();
    db.commit(t1).unwrap();
    db.commit(t2).unwrap();
    assert_eq!(committed_balance(&db, 0), 1_015);
    db.shutdown();
}

#[test]
fn bamboo_deferred_releases_flush_even_when_commit_comes_early() {
    // Only one update is pending (below the batch size) when the
    // transaction commits: the commit path must flush the deferred release
    // before waiting on dependencies, and leave no bookkeeping behind.
    let db = setup(
        EngineConfig::for_protocol(Protocol::Bamboo)
            .with_lock_wait_timeout(Duration::from_millis(100))
            .with_early_release_batch(8),
        2,
    );
    let record = db.record_id(ACCOUNTS, 0).unwrap();
    let mut t1 = db.begin();
    db.update_add(&mut t1, ACCOUNTS, 0, 1, 10).unwrap();
    assert_eq!(db.lock_holders(record), vec![t1.id]);
    db.commit(t1).unwrap();
    assert!(db.lock_holders(record).is_empty());
    assert_eq!(committed_balance(&db, 0), 1_010);
    db.shutdown();
}

#[test]
fn aria_aborts_one_of_two_conflicting_transactions_in_a_batch() {
    let db = setup(
        EngineConfig::for_protocol(Protocol::Aria).with_aria_batch_size(2),
        2,
    );
    let db = Arc::new(db);
    let program = TxnProgram::new(vec![Operation::UpdateAdd {
        table: ACCOUNTS,
        pk: 0,
        column: 1,
        delta: 5,
    }]);
    let mut handles = Vec::new();
    for _ in 0..2 {
        let db = Arc::clone(&db);
        let program = program.clone();
        handles.push(thread::spawn(move || db.execute_program(&program)));
    }
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let committed = results.iter().filter(|r| r.is_ok()).count();
    // Either they landed in the same batch (one aborts) or different batches
    // (both commit); in both cases no update is lost.
    let expected = 1_000 + committed as i64 * 5;
    assert_eq!(committed_balance(&db, 0), expected);
    assert!(committed >= 1);
    db.shutdown();
}

// ---------------------------------------------------------------------------
// Hotspot detection & demotion (§4.1)
// ---------------------------------------------------------------------------

#[test]
fn hotspot_is_detected_then_demoted_when_idle() {
    // Pin the row briefly so waiters pile up and the engine performs an
    // *organic* promotion even on a single-core runner.
    let db = run_concurrent_increments_with(Protocol::GroupLockingTxsql, 8, 20, HotSetup::PinRow);
    let hot_record = db.record_id(ACCOUNTS, 0).unwrap();
    assert!(db.hotspots().promotions() > 0, "hotspot was never promoted");
    // With no load, the sweeper (or two manual sweeps) demotes the row.
    db.hotspots().sweep(|_| false);
    db.hotspots().sweep(|_| false);
    assert!(!db.hotspots().is_hot(hot_record));
    db.shutdown();
}

#[test]
fn uniform_workload_triggers_no_hotspot_handling() {
    let db = setup(hot_config(Protocol::GroupLockingTxsql), 64);
    let db = Arc::new(db);
    let mut handles = Vec::new();
    for worker in 0..4u64 {
        let db = Arc::clone(&db);
        handles.push(thread::spawn(move || {
            for i in 0..50 {
                // Disjoint 16-row stripes per worker: a truly uniform load
                // never queues two transactions on one row, so promotion
                // (threshold 2) must stay impossible even when the OS
                // preempts a lock holder on a busy machine.
                let pk = (worker * 16 + i % 16) as i64;
                let program = TxnProgram::new(vec![Operation::UpdateAdd {
                    table: ACCOUNTS,
                    pk,
                    column: 1,
                    delta: 1,
                }]);
                while db.execute_program(&program).is_err() {}
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(db.metrics().hotspot_group_entries.get(), 0);
    assert_eq!(db.metrics().committed.get(), 200);
    db.shutdown();
}

// ---------------------------------------------------------------------------
// Commit pipeline / group commit metrics
// ---------------------------------------------------------------------------

#[test]
fn group_commit_uses_fewer_fsyncs_than_per_txn_commit() {
    let run = |group_commit: bool| {
        let config = hot_config(Protocol::GroupLockingTxsql)
            .with_group_commit(group_commit)
            .with_latency(txsql_common::latency::LatencyModel {
                fsync: Duration::from_micros(200),
                network_one_way: Duration::ZERO,
                statement_overhead: Duration::ZERO,
            });
        let db = run_concurrent_increments_with_config(config, 6, 20);
        let fsyncs = db.storage().redo().fsync_count();
        let committed = db.metrics().committed.get();
        db.shutdown();
        (fsyncs, committed)
    };
    let (fsync_grouped, committed_grouped) = run(true);
    let (fsync_single, committed_single) = run(false);
    assert_eq!(committed_grouped, committed_single);
    assert!(
        fsync_grouped < fsync_single,
        "group commit should batch fsyncs: {fsync_grouped} vs {fsync_single}"
    );
}

fn run_concurrent_increments_with_config(
    config: EngineConfig,
    threads: usize,
    per_thread: usize,
) -> Database {
    let db = Arc::new(setup(config, 2));
    let mut handles = Vec::new();
    for _ in 0..threads {
        let db = Arc::clone(&db);
        handles.push(thread::spawn(move || {
            let program = TxnProgram::new(vec![Operation::UpdateAdd {
                table: ACCOUNTS,
                pk: 0,
                column: 1,
                delta: 1,
            }]);
            let mut committed = 0;
            while committed < per_thread {
                match db.execute_program(&program) {
                    Ok(o) if o.committed => committed += 1,
                    _ => {}
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    Arc::try_unwrap(db).unwrap_or_else(|arc| (*arc).clone())
}

// ---------------------------------------------------------------------------
// Recovery of hotspot state (§5.3) through the engine
// ---------------------------------------------------------------------------

#[test]
fn crash_recovery_discards_uncommitted_hotspot_updates() {
    let db = setup(hot_config(Protocol::GroupLockingTxsql), 2);
    let hot_record = db.record_id(ACCOUNTS, 0).unwrap();
    db.hotspots().promote(hot_record);
    let checkpoint = db.checkpoint().unwrap();

    // One committed, durable update...
    let program = TxnProgram::new(vec![Operation::UpdateAdd {
        table: ACCOUNTS,
        pk: 0,
        column: 1,
        delta: 5,
    }]);
    db.execute_program(&program).unwrap();
    db.storage().redo().flush_all().unwrap();
    // ...and two uncommitted hotspot updates left in flight at the crash.
    let mut t_a = db.begin();
    let mut t_b = db.begin();
    db.update_add(&mut t_a, ACCOUNTS, 0, 1, 100).unwrap();
    db.update_add(&mut t_b, ACCOUNTS, 0, 1, 100).unwrap();
    db.storage().redo().flush_all().unwrap();

    let outcome =
        txsql_storage::recovery::recover(&checkpoint, &db.durable_redo(), Duration::ZERO).unwrap();
    let table = outcome.storage.table(ACCOUNTS).unwrap();
    let rid = table.lookup_pk(0).unwrap();
    let recovered = outcome
        .storage
        .read_committed(ACCOUNTS, rid)
        .unwrap()
        .unwrap();
    assert_eq!(recovered.get_int(1), Some(1_005));
    assert_eq!(outcome.report.rolled_back.len(), 2);
    assert_eq!(outcome.report.recovered_hot_orders.len(), 2);
    // Leave the in-flight transactions to clean up normally.
    db.rollback(t_a, None);
    db.rollback(t_b, None);
    db.shutdown();
}

#[test]
fn string_columns_round_trip_through_updates() {
    let db = setup(EngineConfig::for_protocol(Protocol::LightweightO1), 2);
    let mut txn = db.begin();
    db.update_row(&mut txn, ACCOUNTS, 1, &mut |row: &mut Row| {
        row.set(1, Value::Str("padded".into()));
    })
    .unwrap();
    db.commit(txn).unwrap();
    let record = db.record_id(ACCOUNTS, 1).unwrap();
    let row = db
        .storage()
        .read_committed(ACCOUNTS, record)
        .unwrap()
        .unwrap();
    assert_eq!(row.get(1).unwrap().as_str(), Some("padded"));
    db.shutdown();
}
