//! Whole-engine schedule exploration (`txsql-sim`): the regression tests for
//! the two interleaving bugs the 1-CPU CI box could never reproduce on
//! demand, plus the *organic* hotspot-promotion coverage that previously had
//! to fall back to explicit promotion / row pinning (see `HotSetup` in
//! `engine.rs`).
//!
//! Each test runs the production engine — lock tables, group locking, commit
//! pipeline, MVCC storage — under the cooperative scheduler, once per seed.
//! A failing seed panics with a replayable schedule trace; see
//! `crates/sim/README.md`.  The seed set is `TXSQL_SIM_SEEDS`-overridable
//! (CI pins `0..200`).

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txsql_common::{Row, TableId};
use txsql_core::{Database, EngineConfig, Protocol};
use txsql_storage::TableSchema;

const ENVELOPES: TableId = TableId(1);
const CLAIMS: TableId = TableId(2);

/// Engine configuration safe for a sim run: every thread touching the engine
/// must be a sim thread, so the background hotspot sweeper stays off.
fn sim_config(protocol: Protocol) -> EngineConfig {
    let mut config = EngineConfig::for_protocol(protocol)
        .with_hotspot_threshold(2)
        .with_lock_wait_timeout(Duration::from_millis(100))
        .with_history_recording(true);
    config.start_sweeper = false;
    config
}

fn run_seed(seed: u64, build: impl Fn(&mut txsql_sim::Sim)) {
    let report = txsql_sim::run_with_seed(seed, build);
    if let Some(failure) = report.failure {
        panic!(
            "seed {seed} failed: {failure}\nschedule: {:?}\nreproduce: txsql_sim::replay(&schedule, build)",
            report.schedule
        );
    }
}

/// One recipient's claim loop of the miniature red envelope: retryable
/// contention errors (timeouts, deadlock prevention, cascading aborts) retry;
/// a bounded attempt budget keeps adversarial schedules from spinning the
/// step counter out.
fn claim_worker(
    db: Arc<Database>,
    recipient: i64,
    claims: usize,
    claimed_total: Arc<AtomicI64>,
    next_claim_id: Arc<AtomicI64>,
) {
    for _ in 0..claims {
        let mut attempts = 0;
        loop {
            attempts += 1;
            if attempts > 50 {
                return; // starved by this schedule — conservation still holds
            }
            let mut txn = db.begin();
            let attempt = (|| -> txsql_common::Result<Option<i64>> {
                let envelope = db.select_for_update(&mut txn, ENVELOPES, 1)?;
                let remaining = envelope.get_int(1).unwrap_or(0);
                if remaining <= 0 {
                    return Ok(None);
                }
                let take = remaining.min(3);
                db.update_add(&mut txn, ENVELOPES, 1, 1, -take)?;
                let claim_id = next_claim_id.fetch_add(1, Ordering::Relaxed);
                db.insert(
                    &mut txn,
                    CLAIMS,
                    Row::from_ints(&[claim_id, recipient, take]),
                )?;
                Ok(Some(take))
            })();
            match attempt {
                Ok(Some(take)) => {
                    if db.commit(txn).is_ok() {
                        claimed_total.fetch_add(take, Ordering::Relaxed);
                        break;
                    }
                }
                Ok(None) => {
                    db.rollback(txn, None);
                    return; // envelope empty
                }
                Err(err) if err.is_retryable() => db.rollback(txn, Some(&err)),
                Err(err) => panic!("recipient {recipient}: unexpected error {err}"),
            }
        }
    }
}

/// Regression test for the `examples/red_envelope` serializability violation.
///
/// The seed engine released every lock *before* `commit_writes` ordered the
/// commit record; under an explored schedule a competing claim slips into
/// that window, locks the envelope row, reads the pre-commit balance and
/// commits with a smaller `trx_no` — the checker then finds a ww/rw cycle
/// (and money is occasionally created from thin air).  On the pre-fix code
/// this fails within the first handful of seeds with a
/// `history is not serializable` artifact; with release-after-ordering in
/// `Database::commit`, every explored schedule stays serializable and
/// conserves the envelope.
#[test]
fn sim_commit_release_ordering_red_envelope() {
    const AMOUNT: i64 = 12;
    for protocol in [Protocol::LightweightO1, Protocol::GroupLockingTxsql] {
        for seed in txsql_sim::ci_seeds(200) {
            let db = Database::new(sim_config(protocol));
            db.create_table(TableSchema::new(ENVELOPES, "envelopes", 2))
                .unwrap();
            db.create_table(TableSchema::new(CLAIMS, "claims", 3))
                .unwrap();
            db.load_row(ENVELOPES, Row::from_ints(&[1, AMOUNT]))
                .unwrap();
            let db = Arc::new(db);
            let claimed_total = Arc::new(AtomicI64::new(0));
            let next_claim_id = Arc::new(AtomicI64::new(1));

            let db_build = Arc::clone(&db);
            let total_build = Arc::clone(&claimed_total);
            let id_build = Arc::clone(&next_claim_id);
            run_seed(seed, move |sim| {
                for recipient in 0..3 {
                    let db = Arc::clone(&db_build);
                    let total = Arc::clone(&total_build);
                    let ids = Arc::clone(&id_build);
                    sim.spawn(format!("recipient-{recipient}"), move || {
                        claim_worker(db, recipient, 2, total, ids);
                    });
                }
            });

            let record = db.record_id(ENVELOPES, 1).unwrap();
            let remaining = db
                .storage()
                .read_committed(ENVELOPES, record)
                .unwrap()
                .unwrap()
                .get_int(1)
                .unwrap();
            let claimed = claimed_total.load(Ordering::Relaxed);
            assert_eq!(
                claimed + remaining,
                AMOUNT,
                "{protocol:?} seed {seed}: money was created or destroyed"
            );
            let report = db.history().unwrap().check();
            assert!(
                report.is_serializable(),
                "{protocol:?} seed {seed}: history is not serializable, cycle {:?}\nhistory: {:#?}",
                report.cycle,
                db.history().unwrap().committed_snapshot()
            );
            db.shutdown();
        }
    }
}

/// The PR-1 schedule-shape coverage, restored to *organic* promotion: no
/// `hotspots().promote()`, no pinned row — the contended schedules the
/// simulator explores make waiters pile up naturally, the engine detects the
/// hotspot itself (threshold 2), and traffic mid-run migrates onto the
/// queue-/group-locking path.  Increments must never be lost across the
/// promotion boundary, whatever the schedule.
#[test]
fn sim_organic_hotspot_promotion_loses_no_updates() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 3;
    for protocol in [Protocol::QueueLockingO2, Protocol::GroupLockingTxsql] {
        let mut promoted_seeds = 0u64;
        let seeds = txsql_sim::ci_seeds(100);
        let n_seeds = seeds.len();
        for seed in seeds {
            let mut config = sim_config(protocol);
            config.record_history = false;
            let db = Database::new(config);
            db.create_table(TableSchema::new(ENVELOPES, "accounts", 2))
                .unwrap();
            db.load_row(ENVELOPES, Row::from_ints(&[1, 0])).unwrap();
            let db = Arc::new(db);

            let db_build = Arc::clone(&db);
            run_seed(seed, move |sim| {
                for worker in 0..THREADS {
                    let db = Arc::clone(&db_build);
                    sim.spawn(format!("incr-{worker}"), move || {
                        let mut committed = 0;
                        let mut attempts = 0;
                        while committed < PER_THREAD {
                            attempts += 1;
                            assert!(attempts < 200, "worker starved");
                            let mut txn = db.begin();
                            match db.update_add(&mut txn, ENVELOPES, 1, 1, 1) {
                                Ok(_) => {
                                    if db.commit(txn).is_ok() {
                                        committed += 1;
                                    }
                                }
                                Err(err) if err.is_retryable() => {
                                    db.rollback(txn, Some(&err));
                                }
                                Err(err) => panic!("worker {worker}: {err}"),
                            }
                        }
                    });
                }
            });

            let record = db.record_id(ENVELOPES, 1).unwrap();
            let balance = db
                .storage()
                .read_committed(ENVELOPES, record)
                .unwrap()
                .unwrap()
                .get_int(1)
                .unwrap();
            assert_eq!(
                balance,
                (THREADS * PER_THREAD) as i64,
                "{protocol:?} seed {seed}: increments were lost"
            );
            if db.hotspots().promotions() > 0 {
                promoted_seeds += 1;
            }
            db.shutdown();
        }
        // The whole point of exploration: organic waiter pile-ups (and hence
        // organic promotion) must actually occur on a 1-CPU box.
        assert!(
            promoted_seeds > 0,
            "{protocol:?}: no explored schedule promoted the hot row organically \
             ({n_seeds} seeds)"
        );
    }
}
