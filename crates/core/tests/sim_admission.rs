//! Front-door admission control under schedule exploration (`txsql-sim`).
//!
//! The admission queues are exactly the kind of hand-rolled waiter machinery
//! that hides lost-wakeup and leaked-ticket bugs behind timing: a grant that
//! races a timeout, a shed that forgets to release the keys it already
//! queued on, a degraded queue that never re-arms.  Each test here runs the
//! production engine with admission enabled under the cooperative scheduler,
//! once per seed, and checks the oracle invariants after every explored
//! schedule:
//!
//! * **No lost wakeups** — once all workers exit, `total_waiting()` is zero;
//!   nobody is left parked on a queue that will never signal them.
//! * **FIFO per key** — `AdmissionController::release` asserts strictly
//!   increasing grant tickets internally; any out-of-order grant panics the
//!   sim thread and fails the seed with a replayable schedule.
//! * **Shed implies queue-full** — `depth_sheds > 0` only if the peak queue
//!   depth actually reached the configured bound.
//! * **Hysteresis re-arms** — after the burst drains, `degraded_queues()`
//!   is zero again.
//!
//! Seeds come from `TXSQL_SIM_SEEDS` (CI pins `0..200`).

use std::collections::HashSet;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txsql_common::{Row, TableId};
use txsql_core::{
    AdmissionConfig, BackoffPolicy, Database, EngineConfig, Operation, Protocol, TxnProgram,
};
use txsql_storage::TableSchema;

const ACCOUNTS: TableId = TableId(1);

/// Engine configuration safe for a sim run (no background sweeper thread),
/// with admission enabled and a deliberately tiny queue so that 4 workers on
/// one hot row overflow it: 1 holder + `depth` waiters leaves the last
/// arrival nowhere to stand.
fn sim_config(depth: usize) -> EngineConfig {
    let admission = AdmissionConfig::default()
        .with_enabled(true)
        .with_queue_depth(depth)
        .with_queue_timeout(Duration::from_millis(20))
        .with_retry_budget(8)
        .with_backoff(Duration::from_micros(50), Duration::from_millis(1));
    let mut config = EngineConfig::for_protocol(Protocol::GroupLockingTxsql)
        .with_hotspot_threshold(2)
        .with_lock_wait_timeout(Duration::from_millis(100))
        .with_admission_config(admission);
    config.start_sweeper = false;
    config
}

fn run_seed(seed: u64, build: impl Fn(&mut txsql_sim::Sim)) -> txsql_sim::RunReport {
    let report = txsql_sim::run_with_seed(seed, build);
    if let Some(failure) = &report.failure {
        panic!(
            "seed {seed} failed: {failure}\nschedule: {:?}\nreproduce: txsql_sim::replay(&schedule, build)",
            report.schedule
        );
    }
    report
}

/// One worker's admitted-increment loop: every retryable front-door outcome
/// (shed, lock timeout, deadlock avoidance) goes through the same
/// [`BackoffPolicy`] the bench drivers use.  A worker whose retry budget
/// runs dry abandons that increment — conservation is then checked against
/// what actually committed, not a fixed quota.
fn admitted_increments(db: &Database, worker: usize, per_worker: usize, committed: &AtomicI64) {
    let program = TxnProgram::new(vec![Operation::UpdateAdd {
        table: ACCOUNTS,
        pk: 1,
        column: 1,
        delta: 1,
    }]);
    let policy = db.backoff_policy();
    let mut attempts = 0u64;
    for round in 0..per_worker {
        let mut state = policy.begin((worker as u64) << 32 | round as u64);
        loop {
            attempts += 1;
            assert!(attempts < 400, "worker {worker} starved by this schedule");
            match db.execute_program(&program) {
                Ok(outcome) => {
                    assert!(outcome.committed, "no ForcedRollback in this program");
                    committed.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Err(err) if err.is_retryable() => match state.next_backoff(&policy) {
                    Some(delay) => txsql_common::latency::simulate_delay(delay),
                    None => break, // budget dry: abandon this increment
                },
                Err(err) => panic!("worker {worker}: unexpected error {err}"),
            }
        }
    }
}

/// The main oracle sweep: 4 workers hammer one force-promoted hot row
/// through the full `execute_program` front door with queue depth 2, so
/// explored schedules cover immediate grants, queued grants, depth sheds,
/// timeout sheds, and grant/timeout races.  Every seed must end drained,
/// FIFO-clean, and conserving the row.
#[test]
fn sim_admission_queue_oracle_drains_and_conserves() {
    const THREADS: usize = 4;
    const PER_WORKER: usize = 2;
    const DEPTH: usize = 2;
    let seeds = txsql_sim::ci_seeds(200);
    let n_seeds = seeds.len();
    let mut classes: HashSet<u64> = HashSet::new();
    let mut shed_seeds = 0u64;
    let mut queued_seeds = 0u64;
    let mut timeout_shed_seeds = 0u64;
    let mut budget_dry_total = 0u64;

    for seed in seeds {
        let db = Database::new(sim_config(DEPTH));
        db.create_table(TableSchema::new(ACCOUNTS, "accounts", 2))
            .unwrap();
        db.load_row(ACCOUNTS, Row::from_ints(&[1, 0])).unwrap();
        // Force-promote the row so admission gates from the very first
        // transaction; organic promotion is sim_schedule.rs's job.
        let record = db.record_id(ACCOUNTS, 1).unwrap();
        db.hotspots().promote(record);
        assert!(db.hotspots().is_hot(record), "promotion did not stick");
        let db = Arc::new(db);
        let committed = Arc::new(AtomicI64::new(0));

        let db_build = Arc::clone(&db);
        let committed_build = Arc::clone(&committed);
        let report = run_seed(seed, move |sim| {
            for worker in 0..THREADS {
                let db = Arc::clone(&db_build);
                let committed = Arc::clone(&committed_build);
                sim.spawn(format!("admit-{worker}"), move || {
                    admitted_increments(&db, worker, PER_WORKER, &committed);
                });
            }
        });

        // Conservation: the hot row reflects exactly the committed
        // increments, however many sheds and retries the schedule forced.
        let balance = db
            .storage()
            .read_committed(ACCOUNTS, record)
            .unwrap()
            .unwrap()
            .get_int(1)
            .unwrap();
        assert_eq!(
            balance,
            committed.load(Ordering::Relaxed),
            "seed {seed}: admission lost or duplicated an increment"
        );

        let admission = db.admission();
        // No lost wakeups: every worker exited, so nobody can still be
        // counted as waiting on a queue.
        assert_eq!(
            admission.total_waiting(),
            0,
            "seed {seed}: waiters left parked after all workers exited"
        );
        // Hysteresis re-armed: the burst is over, no queue may stay degraded.
        assert_eq!(
            admission.degraded_queues(),
            0,
            "seed {seed}: a queue stayed degraded after draining"
        );
        // Shed implies queue-full: depth sheds require the queue to have
        // actually reached its bound at some point.
        if admission.depth_sheds() > 0 {
            assert!(
                admission.peak_depth() >= DEPTH as u64,
                "seed {seed}: shed at peak depth {} < configured depth {DEPTH}",
                admission.peak_depth()
            );
        }
        // Metric consistency: the public counters are exactly the sum of the
        // internal shed/grant tallies.
        assert_eq!(
            db.metrics().admission_shed.get(),
            admission.depth_sheds() + admission.timeout_sheds(),
            "seed {seed}: admission_shed disagrees with the controller"
        );
        assert_eq!(
            db.metrics().admission_queued.get(),
            admission.queued_grants(),
            "seed {seed}: admission_queued disagrees with the controller"
        );

        classes.insert(report.coverage.schedule_class);
        if admission.depth_sheds() > 0 {
            shed_seeds += 1;
        }
        if admission.timeout_sheds() > 0 {
            timeout_shed_seeds += 1;
        }
        if admission.queued_grants() > 0 {
            queued_seeds += 1;
        }
        budget_dry_total += db.metrics().retry_budget_exhausted.get();
        db.shutdown();
    }

    println!(
        "sim-coverage: suite=sim_admission runs={n_seeds} classes={} shed_seeds={shed_seeds} \
         timeout_shed_seeds={timeout_shed_seeds} queued_seeds={queued_seeds} \
         budget_dry={budget_dry_total}",
        classes.len()
    );
    assert!(
        queued_seeds > 0,
        "no explored schedule ({n_seeds} seeds) ever queued a waiter — \
         the admission queue is not being exercised"
    );
    assert!(
        shed_seeds > 0,
        "no explored schedule ({n_seeds} seeds) ever overflowed the depth-{DEPTH} queue — \
         the shed path is not being exercised"
    );
    assert!(
        classes.len() > 1,
        "every seed collapsed to a single schedule class"
    );
}

/// Backoff determinism across execution contexts: the jitter sequence for a
/// given seed must be identical whether it is computed natively (as unit
/// tests and replay tooling do) or inside a sim thread (as the drivers do
/// under exploration).  Any divergence would make shrunk schedules
/// unreplayable.
#[test]
fn sim_backoff_jitter_matches_native_replay() {
    let policy = BackoffPolicy {
        budget: 8,
        base: Duration::from_micros(100),
        cap: Duration::from_millis(5),
    };
    for seed in 0..16u64 {
        let native: Vec<Duration> = {
            let mut state = policy.begin(seed);
            std::iter::from_fn(|| state.next_backoff(&policy)).collect()
        };
        assert_eq!(native.len(), policy.budget as usize);

        let in_sim = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sink = Arc::clone(&in_sim);
        run_seed(seed, move |sim| {
            let sink = Arc::clone(&sink);
            sim.spawn("backoff", move || {
                let mut state = policy.begin(seed);
                let mut delays = Vec::new();
                while let Some(delay) = state.next_backoff(&policy) {
                    delays.push(delay);
                }
                *sink.lock() = delays;
            });
        });
        assert_eq!(
            *in_sim.lock(),
            native,
            "seed {seed}: sim and native jitter sequences diverged"
        );
    }
}

/// A shed is not silent: under sustained overflow the engine must label the
/// aborts (`overloaded`) and count them, so dashboards can tell load
/// shedding from lock contention.  Checked under exploration because the
/// shed/grant race is exactly where a miscount would hide.
#[test]
fn sim_sheds_are_counted_and_labelled() {
    const THREADS: usize = 4;
    let mut labelled_seeds = 0u64;
    let seeds = txsql_sim::ci_seeds(100);
    let n_seeds = seeds.len();
    for seed in seeds {
        let db = Database::new(sim_config(1));
        db.create_table(TableSchema::new(ACCOUNTS, "accounts", 2))
            .unwrap();
        db.load_row(ACCOUNTS, Row::from_ints(&[1, 0])).unwrap();
        let record = db.record_id(ACCOUNTS, 1).unwrap();
        db.hotspots().promote(record);
        let db = Arc::new(db);
        let sink = Arc::new(AtomicI64::new(0));

        let db_build = Arc::clone(&db);
        let sink_build = Arc::clone(&sink);
        run_seed(seed, move |sim| {
            for worker in 0..THREADS {
                let db = Arc::clone(&db_build);
                let sink = Arc::clone(&sink_build);
                sim.spawn(format!("burst-{worker}"), move || {
                    admitted_increments(&db, worker, 1, &sink);
                });
            }
        });

        let shed = db.metrics().admission_shed.get();
        let labelled = db.metrics().abort_causes.get("overloaded");
        assert_eq!(
            labelled, shed,
            "seed {seed}: every shed must surface as an `overloaded` abort cause"
        );
        if shed > 0 && labelled == shed {
            labelled_seeds += 1;
        }
        db.shutdown();
    }
    assert!(
        labelled_seeds > 0,
        "no explored schedule ({n_seeds} seeds) shed with a depth-1 queue under 4 workers"
    );
}

/// Regression guard for the grant/timeout race: a waiter whose deadline and
/// grant fire on the same step must take exactly one of the two paths —
/// either it runs admitted (and later releases) or it sheds (and the grant
/// passes to the next ticket).  Double-consumption would show up here as a
/// stuck waiter or a FIFO assertion inside `release`.
#[test]
fn sim_grant_timeout_race_never_wedges_the_queue() {
    const THREADS: usize = 3;
    let mut timed_out_seeds = 0u64;
    let seeds = txsql_sim::ci_seeds(100);
    let n_seeds = seeds.len();
    for seed in seeds {
        // Tight timeout: queued waiters frequently reach their deadline
        // while the holder is still inside the engine.
        let admission = AdmissionConfig::default()
            .with_enabled(true)
            .with_queue_depth(2)
            .with_queue_timeout(Duration::from_micros(200))
            .with_retry_budget(6)
            .with_backoff(Duration::from_micros(50), Duration::from_millis(1));
        let mut config = EngineConfig::for_protocol(Protocol::GroupLockingTxsql)
            .with_hotspot_threshold(2)
            .with_lock_wait_timeout(Duration::from_millis(100))
            .with_admission_config(admission);
        config.start_sweeper = false;
        let db = Database::new(config);
        db.create_table(TableSchema::new(ACCOUNTS, "accounts", 2))
            .unwrap();
        db.load_row(ACCOUNTS, Row::from_ints(&[1, 0])).unwrap();
        let record = db.record_id(ACCOUNTS, 1).unwrap();
        db.hotspots().promote(record);
        let db = Arc::new(db);
        let committed = Arc::new(AtomicI64::new(0));

        let db_build = Arc::clone(&db);
        let committed_build = Arc::clone(&committed);
        run_seed(seed, move |sim| {
            // A slow permit holder: admits the hot key through the same
            // controller and sits on the permit for 5× the queue deadline,
            // so queued front-door transactions race their timeout against
            // the grant that fires at release.
            let holder_db = Arc::clone(&db_build);
            sim.spawn("race-holder".to_string(), move || {
                for _ in 0..2 {
                    match holder_db.admission().admit(&[record]) {
                        Ok(permit) => {
                            txsql_common::latency::simulate_delay(Duration::from_millis(1));
                            holder_db.admission().release(permit);
                        }
                        Err(_) => {
                            txsql_common::latency::simulate_delay(Duration::from_micros(100));
                        }
                    }
                }
            });
            for worker in 0..THREADS {
                let db = Arc::clone(&db_build);
                let committed = Arc::clone(&committed_build);
                sim.spawn(format!("race-{worker}"), move || {
                    admitted_increments(&db, worker, 2, &committed);
                });
            }
        });

        let balance = db
            .storage()
            .read_committed(ACCOUNTS, record)
            .unwrap()
            .unwrap()
            .get_int(1)
            .unwrap();
        assert_eq!(balance, committed.load(Ordering::Relaxed), "seed {seed}");
        assert_eq!(db.admission().total_waiting(), 0, "seed {seed}: wedged");
        assert_eq!(db.admission().degraded_queues(), 0, "seed {seed}");
        if db.admission().timeout_sheds() > 0 {
            timed_out_seeds += 1;
        }
        db.shutdown();
    }
    assert!(
        timed_out_seeds > 0,
        "no explored schedule ({n_seeds} seeds) hit a queue-wait deadline — \
         the timeout-shed path is not being exercised"
    );
}
