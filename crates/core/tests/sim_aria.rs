//! Aria batch pipeline under schedule exploration (`txsql-sim`).
//!
//! Before the channel shim was instrumented, Aria's batch hand-off was a
//! blind spot: the coordinator's queue operations never yielded, so the
//! explorer could not place a context switch between "job enqueued" and
//! "leader drains" — every seed saw the same degenerate one-job batches.
//! With `send`/`try_recv` as tagged yield points, batch formation races are
//! explorable: who joins a batch, who becomes leader, and where the batch
//! boundary falls all vary by schedule, which is exactly what Aria's
//! deterministic validation (write reservations, batch-order aborts) must
//! survive.  The meta-assertions at the bottom pin that this interleaving
//! class is actually reached.
//!
//! Seeds come from `TXSQL_SIM_SEEDS` (CI pins `0..200`).

use std::collections::HashSet;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txsql_common::{Row, TableId};
use txsql_core::{Database, EngineConfig, Operation, Protocol, TxnProgram};
use txsql_sim::ResourceKind;
use txsql_storage::TableSchema;

const ACCOUNTS: TableId = TableId(1);

/// Engine configuration safe for a sim run: every thread touching the engine
/// must be a sim thread, so the background hotspot sweeper stays off.
fn sim_config(batch_size: usize) -> EngineConfig {
    let mut config = EngineConfig::for_protocol(Protocol::Aria)
        .with_aria_batch_size(batch_size)
        .with_lock_wait_timeout(Duration::from_millis(100));
    config.start_sweeper = false;
    config
}

fn run_seed(seed: u64, build: impl Fn(&mut txsql_sim::Sim)) -> txsql_sim::RunReport {
    let report = txsql_sim::run_with_seed(seed, build);
    if let Some(failure) = &report.failure {
        panic!(
            "seed {seed} failed: {failure}\nschedule: {:?}\nreproduce: txsql_sim::replay(&schedule, build)",
            report.schedule
        );
    }
    report
}

/// A worker that retries its program until it commits; Aria validation
/// aborts (`AriaValidationFailed`) are the expected retry cause.
fn submit_until_committed(db: &Database, program: &TxnProgram, who: usize) -> u64 {
    let mut attempts = 0u64;
    loop {
        attempts += 1;
        assert!(attempts < 100, "worker {who} starved by this schedule");
        match db.execute_program(program) {
            Ok(outcome) if outcome.committed => return attempts,
            Ok(_) => panic!("worker {who}: program rolled back without ForcedRollback"),
            Err(err) if err.is_retryable() => {}
            Err(err) => panic!("worker {who}: unexpected error {err}"),
        }
    }
}

/// Conflicting single-row increments through the Aria pipeline: every
/// explored schedule must conserve the hot row (validation may abort and
/// retry, but survivors apply exactly once, in batch order).
///
/// Meta-assertions across the seed sweep:
/// * channel yield points fired (the hand-off is visible to the explorer);
/// * at least one schedule packed conflicting jobs into the same batch and
///   aborted one via write-reservation validation — the interleaving class
///   that was unreachable before channel instrumentation.
#[test]
fn sim_aria_conflicting_increments_conserve_the_hot_row() {
    const THREADS: usize = 3;
    const PER_THREAD: i64 = 2;
    let seeds = txsql_sim::ci_seeds(200);
    let n_seeds = seeds.len();
    let mut classes: HashSet<u64> = HashSet::new();
    let mut channel_yields = 0u64;
    let mut validation_abort_seeds = 0u64;
    let mut total_contended = 0u64;
    let mut total_skips = 0u64;

    for seed in seeds {
        let db = Database::new(sim_config(THREADS));
        db.create_table(TableSchema::new(ACCOUNTS, "accounts", 2))
            .unwrap();
        db.load_row(ACCOUNTS, Row::from_ints(&[1, 0])).unwrap();
        let db = Arc::new(db);
        let committed_increments = Arc::new(AtomicI64::new(0));

        let db_build = Arc::clone(&db);
        let committed_build = Arc::clone(&committed_increments);
        let report = run_seed(seed, move |sim| {
            for worker in 0..THREADS {
                let db = Arc::clone(&db_build);
                let committed = Arc::clone(&committed_build);
                sim.spawn(format!("aria-{worker}"), move || {
                    let program = TxnProgram::new(vec![Operation::UpdateAdd {
                        table: ACCOUNTS,
                        pk: 1,
                        column: 1,
                        delta: 1,
                    }]);
                    for _ in 0..PER_THREAD {
                        submit_until_committed(&db, &program, worker);
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });

        let record = db.record_id(ACCOUNTS, 1).unwrap();
        let balance = db
            .storage()
            .read_committed(ACCOUNTS, record)
            .unwrap()
            .unwrap()
            .get_int(1)
            .unwrap();
        assert_eq!(
            balance,
            committed_increments.load(Ordering::Relaxed),
            "seed {seed}: Aria lost or duplicated an increment"
        );
        assert_eq!(
            balance,
            THREADS as i64 * PER_THREAD,
            "seed {seed}: a worker exited without committing its quota"
        );

        classes.insert(report.coverage.schedule_class);
        channel_yields += report.coverage.yields_of(ResourceKind::Channel);
        total_contended += report.coverage.contended_decisions;
        total_skips += report.coverage.commuting_skips;
        if db.metrics().abort_causes.get("aria_validation_failed") > 0 {
            validation_abort_seeds += 1;
        }
        db.shutdown();
    }

    println!(
        "sim-coverage: suite=sim_aria runs={n_seeds} classes={} contended={total_contended} \
         skips={total_skips} channel_yields={channel_yields}",
        classes.len()
    );
    assert!(
        channel_yields > 0,
        "the Aria hand-off channel never became a yield point"
    );
    assert!(
        validation_abort_seeds > 0,
        "no explored schedule ({n_seeds} seeds) packed conflicting jobs into one batch — \
         the batch-formation interleaving class is not being reached"
    );
    assert!(
        classes.len() > 1,
        "every seed collapsed to a single schedule class"
    );
}

/// Disjoint-key programs: validation never aborts, so every job must commit
/// on its first attempt on *every* schedule — batch boundary races (full
/// batch vs. `batch_wait` expiry, leader churn, racing drains) may change
/// who leads and how batches split, but never lose a job or wedge a waiter.
#[test]
fn sim_aria_batch_boundary_races_deliver_every_job() {
    const THREADS: usize = 3;
    let seeds = txsql_sim::ci_seeds(100);
    let mut multi_attempt_seeds = 0u64;
    for seed in seeds {
        let db = Database::new(sim_config(2));
        db.create_table(TableSchema::new(ACCOUNTS, "accounts", 2))
            .unwrap();
        for worker in 0..THREADS {
            db.load_row(ACCOUNTS, Row::from_ints(&[worker as i64 + 1, 0]))
                .unwrap();
        }
        let db = Arc::new(db);

        let db_build = Arc::clone(&db);
        run_seed(seed, move |sim| {
            for worker in 0..THREADS {
                let db = Arc::clone(&db_build);
                sim.spawn(format!("aria-{worker}"), move || {
                    let pk = worker as i64 + 1;
                    let program = TxnProgram::new(vec![
                        Operation::Read {
                            table: ACCOUNTS,
                            pk,
                        },
                        Operation::UpdateAdd {
                            table: ACCOUNTS,
                            pk,
                            column: 1,
                            delta: 1,
                        },
                    ]);
                    for _ in 0..2 {
                        let attempts = submit_until_committed(&db, &program, worker);
                        assert_eq!(
                            attempts, 1,
                            "worker {worker}: disjoint writes must never fail validation"
                        );
                    }
                });
            }
        });

        for worker in 0..THREADS {
            let record = db.record_id(ACCOUNTS, worker as i64 + 1).unwrap();
            let balance = db
                .storage()
                .read_committed(ACCOUNTS, record)
                .unwrap()
                .unwrap()
                .get_int(1)
                .unwrap();
            assert_eq!(balance, 2, "seed {seed}: worker {worker} lost a commit");
        }
        if db.metrics().committed.get() > 0 && db.metrics().aborted.get() > 0 {
            multi_attempt_seeds += 1;
        }
        db.shutdown();
    }
    assert_eq!(
        multi_attempt_seeds, 0,
        "disjoint-key programs aborted somewhere in the sweep"
    );
}
