//! Whole-engine crash exploration (`txsql-sim` + the storage fault
//! injector): every seed derives a [`FaultPlan`] that crashes the engine at
//! a named crash point — mid-commit, mid-handover, mid-group-commit-batch,
//! mid-checkpoint — then restarts it through
//! [`Database::restart_from_crash`] and checks the **recovery oracle**:
//!
//! 1. every commit the pipeline *acknowledged* (an `Ok` return from
//!    `Database::commit`) is present after restart;
//! 2. no uncommitted write survives — transactions in flight at the crash
//!    are rolled back, and a transaction's writes recover atomically
//!    (the hot row and the per-worker cold rows stay in lockstep);
//! 3. the restarted engine is fully working (it accepts and commits new
//!    transactions).
//!
//! A failing seed panics with a replayable schedule trace; the seed set is
//! `TXSQL_SIM_SEEDS`-overridable (CI pins `0..200`).

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use txsql_common::{Lsn, Row, TableId, TxnId};
use txsql_core::{Database, EngineConfig, Protocol};
use txsql_storage::fault::{CrashPoint, FaultInjector, FaultPlan};
use txsql_storage::wal::{RedoLog, RedoRecord};
use txsql_storage::TableSchema;

const ACCOUNTS: TableId = TableId(1);
const HOT_PK: i64 = 1;
const WORKERS: usize = 3;
const PER_WORKER: usize = 2;

fn cold_pk(worker: usize) -> i64 {
    100 + worker as i64
}

/// Engine configuration safe for a sim run: every thread touching the engine
/// must be a sim thread, so the background hotspot sweeper stays off.
fn sim_config(protocol: Protocol) -> EngineConfig {
    let mut config = EngineConfig::for_protocol(protocol)
        .with_hotspot_threshold(2)
        .with_lock_wait_timeout(Duration::from_millis(100));
    config.start_sweeper = false;
    config.record_history = false;
    config
}

fn run_seed(seed: u64, build: impl Fn(&mut txsql_sim::Sim)) {
    let report = txsql_sim::run_with_seed(seed, build);
    if let Some(failure) = report.failure {
        panic!(
            "seed {seed} failed: {failure}\nschedule: {:?}\nreproduce: txsql_sim::replay(&schedule, build)",
            report.schedule
        );
    }
}

fn setup_accounts(db: &Database) {
    db.create_table(TableSchema::new(ACCOUNTS, "accounts", 2))
        .unwrap();
    db.load_row(ACCOUNTS, Row::from_ints(&[HOT_PK, 0])).unwrap();
    for worker in 0..WORKERS {
        db.load_row(ACCOUNTS, Row::from_ints(&[cold_pk(worker), 0]))
            .unwrap();
    }
}

fn committed_value(db: &Database, pk: i64) -> i64 {
    let record = db.record_id(ACCOUNTS, pk).unwrap();
    db.storage()
        .read_committed(ACCOUNTS, record)
        .unwrap()
        .unwrap()
        .get_int(1)
        .unwrap()
}

/// One worker of the crash workload: each transaction adds `+1` to the hot
/// row *and* `+1` to the worker's private cold row, so recovered state can be
/// checked for both durability (hot total) and atomicity (hot == Σ cold).
/// Retryable contention errors retry; a crash or read-only degradation stops
/// the worker — the engine is dead and only `restart_from_crash` continues.
fn crash_worker(
    db: Arc<Database>,
    worker: usize,
    acked: Arc<parking_lot::Mutex<Vec<TxnId>>>,
    commit_attempts: Arc<AtomicI64>,
) {
    let mut committed = 0;
    let mut tries = 0;
    while committed < PER_WORKER {
        tries += 1;
        if tries > 60 {
            return; // starved by this schedule — the oracle still holds
        }
        let mut txn = db.begin();
        let step = db
            .update_add(&mut txn, ACCOUNTS, HOT_PK, 1, 1)
            .and_then(|_| db.update_add(&mut txn, ACCOUNTS, cold_pk(worker), 1, 1));
        match step {
            Ok(_) => {
                let id = txn.id;
                commit_attempts.fetch_add(1, Ordering::Relaxed);
                match db.commit(txn) {
                    Ok(()) => {
                        acked.lock().push(id);
                        committed += 1;
                    }
                    Err(err) if err.is_retryable() => {}
                    Err(_) => return, // crashed / read-only: process is dead
                }
            }
            Err(err) if err.is_retryable() => db.rollback(txn, Some(&err)),
            Err(_) => {
                db.rollback(txn, None);
                return;
            }
        }
    }
}

/// A checkpointer running alongside the workload, so seeded crashes can land
/// between publishing a checkpoint image and truncating the log behind it.
fn checkpoint_worker(db: Arc<Database>, rounds: usize) {
    for _ in 0..rounds {
        if db.checkpoint().is_err() {
            return; // crashed mid-checkpoint (or read-only)
        }
    }
}

/// Runs the crash workload under one seed and applies the recovery oracle.
/// Returns the name of the crash point that fired, if the seed crashed.
fn explore_one_seed(seed: u64, plan: FaultPlan) -> Option<&'static str> {
    let target = plan.crash_target();
    let db = Database::new(sim_config(Protocol::GroupLockingTxsql).with_fault_plan(plan));
    setup_accounts(&db);
    // The baseline checkpoint makes the bulk-loaded rows recoverable (bulk
    // load is not redo-logged).  A `Checkpoint`-targeted plan with
    // `nth_hit == 1` crashes right here — before any workload ran — and the
    // only oracle left is "restart produces a working engine".
    if db.checkpoint().is_err() {
        assert!(
            db.has_crashed(),
            "seed {seed}: baseline checkpoint failed without a crash"
        );
        let (recovered, report) = db.restart_from_crash().unwrap();
        assert!(report.committed.is_empty() && report.rolled_back.is_empty());
        recovered
            .create_table(TableSchema::new(ACCOUNTS, "accounts", 2))
            .unwrap();
        recovered
            .load_row(ACCOUNTS, Row::from_ints(&[HOT_PK, 0]))
            .unwrap();
        let mut probe = recovered.begin();
        recovered
            .update_add(&mut probe, ACCOUNTS, HOT_PK, 1, 1)
            .unwrap();
        recovered.commit(probe).unwrap();
        recovered.shutdown();
        return Some(
            target
                .expect("only a planned crash fails the baseline")
                .0
                .name(),
        );
    }

    let db = Arc::new(db);
    let acked = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let commit_attempts = Arc::new(AtomicI64::new(0));
    let db_build = Arc::clone(&db);
    let acked_build = Arc::clone(&acked);
    let attempts_build = Arc::clone(&commit_attempts);
    run_seed(seed, move |sim| {
        for worker in 0..WORKERS {
            let db = Arc::clone(&db_build);
            let acked = Arc::clone(&acked_build);
            let attempts = Arc::clone(&attempts_build);
            sim.spawn(format!("worker-{worker}"), move || {
                crash_worker(db, worker, acked, attempts);
            });
        }
        let db = Arc::clone(&db_build);
        sim.spawn("checkpointer", move || checkpoint_worker(db, 2));
    });

    let crashed_at = if db.has_crashed() {
        assert_eq!(
            db.metrics().crash_injected.get(),
            1,
            "seed {seed}: a crash fires exactly once"
        );
        Some(target.expect("only a planned crash can fire").0.name())
    } else {
        None
    };

    // --- Restart and apply the recovery oracle. ---
    let acked: Vec<TxnId> = acked.lock().clone();
    let attempts = commit_attempts.load(Ordering::Relaxed);
    let (recovered, report) = db.restart_from_crash().unwrap();

    // (2) In-flight transactions roll back; nothing acknowledged is among
    // them.  (Acked transactions folded into a mid-run checkpoint image are
    // no longer in the log at all — which is also not-rolled-back.)
    for id in &acked {
        assert!(
            !report.rolled_back.contains(id),
            "seed {seed}: acked transaction {id} was rolled back\n{}",
            report.summary()
        );
    }

    // (1)+(2) Durability and no-ghost-commits envelope: every acked commit
    // adds exactly +1 to the hot row, and nothing that never reached a
    // commit attempt can be counted.
    let hot = committed_value(&recovered, HOT_PK);
    assert!(
        hot >= acked.len() as i64 && hot <= attempts,
        "seed {seed}: recovered hot value {hot} outside [{}, {attempts}]\n{}",
        acked.len(),
        report.summary()
    );

    // (2) Atomicity: each transaction writes the hot row and one cold row
    // together, so a partially-recovered transaction would break lockstep.
    let cold_sum: i64 = (0..WORKERS)
        .map(|w| committed_value(&recovered, cold_pk(w)))
        .sum();
    assert_eq!(
        hot,
        cold_sum,
        "seed {seed}: a transaction recovered partially\n{}",
        report.summary()
    );

    // Observability: the replay counter of the restarted engine matches the
    // report.
    assert_eq!(
        recovered.metrics().recovery_replayed.get(),
        report.replayed as u64
    );

    // (3) The restarted engine is fully working.
    let mut probe = recovered.begin();
    recovered
        .update_add(&mut probe, ACCOUNTS, HOT_PK, 1, 1)
        .unwrap();
    recovered.commit(probe).unwrap();
    assert_eq!(committed_value(&recovered, HOT_PK), hot + 1);
    recovered.shutdown();
    crashed_at
}

/// Seeded crash exploration: every explored schedule must satisfy the
/// recovery oracle, and across the seed set every seeded crash point must
/// actually fire at least once (otherwise the exploration is vacuous).
#[test]
fn sim_crash_exploration_recovers_every_acknowledged_commit() {
    let seeds = txsql_sim::ci_seeds(200);
    let n_seeds = seeds.len();
    let mut crashed_points = std::collections::HashSet::new();
    let mut crashed_seeds = 0u64;
    for seed in seeds {
        if let Some(point) = explore_one_seed(seed, FaultPlan::seeded(seed)) {
            crashed_points.insert(point);
            crashed_seeds += 1;
        }
    }
    assert!(
        crashed_seeds > 0,
        "no explored schedule crashed ({n_seeds} seeds)"
    );
    // Meta-assertion: the whole point of seeding is coverage of every
    // seeded crash point (FsyncError crashes are exercised separately by
    // the wal unit tests and the fsync-retry seeds below).
    for point in [
        "pre_append",
        "post_append_pre_flush",
        "mid_flush",
        "checkpoint",
    ] {
        assert!(
            crashed_points.contains(point),
            "crash point {point} never fired across {n_seeds} seeds (saw {crashed_points:?})"
        );
    }
}

/// The bounded-retry path under exploration: seeds whose plan injects
/// transient fsync errors must retry them (visible in `fsync_retries`)
/// without degrading the engine, and the oracle must still hold.
#[test]
fn sim_transient_fsync_errors_recover_under_exploration() {
    let mut retried = 0u64;
    for seed in txsql_sim::ci_seeds(40) {
        // Plans without a crash: only the transient-error budget, so every
        // flush eventually succeeds and no worker dies early.
        let plan = FaultPlan::none().with_transient_fsync_errors(2);
        let db = Database::new(sim_config(Protocol::GroupLockingTxsql).with_fault_plan(plan));
        setup_accounts(&db);
        db.checkpoint().unwrap();
        let db = Arc::new(db);
        let acked = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let attempts = Arc::new(AtomicI64::new(0));
        let db_build = Arc::clone(&db);
        let acked_build = Arc::clone(&acked);
        let attempts_build = Arc::clone(&attempts);
        run_seed(seed, move |sim| {
            for worker in 0..WORKERS {
                let db = Arc::clone(&db_build);
                let acked = Arc::clone(&acked_build);
                let attempts = Arc::clone(&attempts_build);
                sim.spawn(format!("worker-{worker}"), move || {
                    crash_worker(db, worker, acked, attempts);
                });
            }
        });
        assert!(!db.has_crashed() && !db.is_read_only());
        retried += db.metrics().fsync_retries.get();
        let acked_count = acked.lock().len() as i64;
        assert_eq!(
            committed_value(&db, HOT_PK),
            acked_count,
            "seed {seed}: retried flushes must not lose or invent commits"
        );
        db.shutdown();
    }
    assert!(retried > 0, "no explored schedule exercised an fsync retry");
}

/// A crash landing *inside* a group-commit flush batch: non-zero fsync
/// latency makes followers pile up behind one leader flush, and the
/// mid-flush cut leaves a torn tail that recovery must scan-stop at.
/// Some batch members' commit markers may survive below the cut — they were
/// answered with an error (ambiguous outcome), which the oracle's envelope
/// permits — but nothing acknowledged may be lost.
#[test]
fn sim_torn_tail_inside_group_commit_batch_recovers() {
    let mut crashed_seeds = 0u64;
    for seed in txsql_sim::ci_seeds(60) {
        let plan = FaultPlan::none()
            .crash_at(CrashPoint::MidFlush, 1 + seed % 3)
            .with_torn_cut_back(1 + seed % 2);
        let db = Database::new(
            sim_config(Protocol::GroupLockingTxsql)
                .with_fault_plan(plan)
                .with_latency(txsql_common::latency::LatencyModel::local_ssd()),
        );
        setup_accounts(&db);
        db.checkpoint().unwrap();
        let db = Arc::new(db);
        let acked = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let attempts = Arc::new(AtomicI64::new(0));
        let db_build = Arc::clone(&db);
        let acked_build = Arc::clone(&acked);
        let attempts_build = Arc::clone(&attempts);
        run_seed(seed, move |sim| {
            for worker in 0..WORKERS {
                let db = Arc::clone(&db_build);
                let acked = Arc::clone(&acked_build);
                let attempts = Arc::clone(&attempts_build);
                sim.spawn(format!("worker-{worker}"), move || {
                    crash_worker(db, worker, acked, attempts);
                });
            }
        });
        let crashed = db.has_crashed();
        let torn = db.storage().redo().torn_lsn();
        let acked: Vec<TxnId> = acked.lock().clone();
        let attempts = attempts.load(Ordering::Relaxed);
        let (recovered, report) = db.restart_from_crash().unwrap();
        if crashed {
            crashed_seeds += 1;
            assert!(
                torn.is_some(),
                "seed {seed}: a mid-flush crash must leave a torn tail"
            );
            assert_eq!(
                report.torn_tail, torn,
                "recovery must scan-stop at the torn record"
            );
        }
        for id in &acked {
            assert!(
                !report.rolled_back.contains(id),
                "seed {seed}: acked {id} rolled back"
            );
        }
        let hot = committed_value(&recovered, HOT_PK);
        assert!(
            hot >= acked.len() as i64 && hot <= attempts,
            "seed {seed}: recovered hot value {hot} outside [{}, {attempts}]",
            acked.len()
        );
        let mut probe = recovered.begin();
        recovered
            .update_add(&mut probe, ACCOUNTS, HOT_PK, 1, 1)
            .unwrap();
        recovered.commit(probe).unwrap();
        recovered.shutdown();
    }
    assert!(crashed_seeds > 0, "no explored schedule crashed mid-flush");
}

// ---------------------------------------------------------------------------
// Deterministic checkpoint/truncation interplay (no sim needed)
// ---------------------------------------------------------------------------

/// A checkpoint taken with a transaction in flight must keep that
/// transaction's records in the log (truncation stops at the active-txn
/// floor), so a later crash recovers: image rows + post-image log rows, and
/// the in-flight transaction rolled back.
#[test]
fn checkpoint_with_inflight_txn_then_crash_recovers_image_plus_log() {
    let db = Database::new(sim_config(Protocol::GroupLockingTxsql));
    setup_accounts(&db);
    db.checkpoint().unwrap();

    // A committed, durable transaction folded into the next image...
    let mut a = db.begin();
    db.update_add(&mut a, ACCOUNTS, HOT_PK, 1, 5).unwrap();
    db.commit(a).unwrap();
    db.storage().redo().flush_all().unwrap();

    // ...a transaction still in flight when the checkpoint runs (it holds a
    // cold row so the later hot-row commit is not blocked behind its lock)...
    let mut in_flight = db.begin();
    db.update_add(&mut in_flight, ACCOUNTS, cold_pk(0), 1, 100)
        .unwrap();
    let image = db.checkpoint().unwrap();
    assert!(
        db.metrics().wal_truncated_records.get() > 0,
        "the committed prefix below the active-txn floor must be truncated"
    );

    // ...and one committed after the image was cut.
    let mut c = db.begin();
    db.update_add(&mut c, ACCOUNTS, HOT_PK, 1, 7).unwrap();
    let c_id = c.id;
    db.commit(c).unwrap();
    db.storage().redo().flush_all().unwrap();

    // "Crash" with the in-flight transaction still open: restart recovers
    // the image (5), replays the post-image suffix (7) and rolls back the
    // in-flight +100.
    let in_flight_id = in_flight.id;
    let (recovered, report) = db.restart_from_crash().unwrap();
    assert_eq!(committed_value(&recovered, HOT_PK), 12);
    assert_eq!(
        committed_value(&recovered, cold_pk(0)),
        0,
        "the in-flight +100 must not survive"
    );
    assert!(report.rolled_back.contains(&in_flight_id));
    assert!(report.committed.contains(&c_id));
    assert!(image.lsn >= Lsn(1));
    recovered.shutdown();
}

/// A crash *between* flushing a checkpoint image and publishing it: the new
/// image is discarded and recovery falls back to the previous baseline plus
/// the (un-truncated, merely redundant) log — which idempotent replay
/// tolerates.
#[test]
fn crash_during_checkpoint_falls_back_to_previous_baseline() {
    // Hit 1 is the baseline checkpoint below; hit 2 the crashing one.
    let plan = FaultPlan::none().crash_at(CrashPoint::Checkpoint, 2);
    let db = Database::new(sim_config(Protocol::GroupLockingTxsql).with_fault_plan(plan));
    setup_accounts(&db);
    db.checkpoint().unwrap();

    let mut a = db.begin();
    db.update_add(&mut a, ACCOUNTS, HOT_PK, 1, 5).unwrap();
    let a_id = a.id;
    db.commit(a).unwrap();
    db.storage().redo().flush_all().unwrap();

    assert!(db.checkpoint().is_err(), "the second checkpoint crashes");
    assert!(db.has_crashed());

    let (recovered, report) = db.restart_from_crash().unwrap();
    assert_eq!(
        committed_value(&recovered, HOT_PK),
        5,
        "recovery replays the durable log over the previous baseline"
    );
    assert!(report.committed.contains(&a_id));
    recovered.shutdown();
}

// ---------------------------------------------------------------------------
// Regression: the flush_to durability race
// ---------------------------------------------------------------------------

/// Regression test for the `RedoLog::flush_to` durability race.
///
/// The pre-fix code had no flush latch: a caller checked
/// `durable_lsn >= lsn`, fsynced, and `fetch_max`ed the horizon — with no
/// re-check that the process was still alive when the fsync completed.  The
/// failing schedule (caught at seed 1 with the fix reverted — "durable
/// horizon Lsn(1) swallowed the torn record at Lsn(1)"): flusher A enters
/// `flush_to(1)` and yields inside its fsync; flusher B enters
/// `flush_to(2)`, crashes mid-flush and freezes the durable horizon at the
/// crash image (cutting lsn 1..=2); A then resumes and its `fetch_max`
/// advances the horizon *past the frozen crash image*, so A acknowledges a
/// flush whose records the crash already destroyed — a durably-acknowledged
/// commit that recovery cannot see.  With flushers serialized and the
/// post-fsync `crashed()` re-check, every `Ok` return's records are in the
/// durable suffix on every explored schedule.
#[test]
fn sim_flush_to_race_never_acks_records_the_crash_destroyed() {
    let mut crashed_seeds = 0u64;
    for seed in txsql_sim::ci_seeds(100) {
        let faults = FaultInjector::new(
            FaultPlan::none()
                .crash_at(CrashPoint::MidFlush, 1)
                .with_torn_cut_back(1 + seed % 2),
        );
        let redo = Arc::new(RedoLog::with_faults(Duration::from_micros(50), faults));
        let acked = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let redo_build = Arc::clone(&redo);
        let acked_build = Arc::clone(&acked);
        run_seed(seed, move |sim| {
            for t in 0..2u64 {
                let redo = Arc::clone(&redo_build);
                let acked = Arc::clone(&acked_build);
                sim.spawn(format!("flusher-{t}"), move || {
                    let lsn = redo.append(RedoRecord::Commit {
                        txn: TxnId(t + 1),
                        trx_no: t + 1,
                    });
                    if redo.flush_to(lsn).is_ok() {
                        acked.lock().push((TxnId(t + 1), lsn));
                    }
                });
            }
        });
        if redo.faults().crashed() {
            crashed_seeds += 1;
        }
        // The frozen-horizon invariant: the torn record a mid-flush crash
        // left behind must stay *above* the durable horizon forever.  On the
        // pre-fix code, a concurrent flusher whose fsync was in flight at
        // the crash re-advanced the horizon over the torn record with its
        // post-fsync `fetch_max` — acknowledging records the crash image
        // destroyed.
        if let Some(torn) = redo.torn_lsn() {
            assert!(
                redo.durable_lsn().0 < torn.0,
                "seed {seed}: durable horizon {:?} swallowed the torn record at {torn:?}",
                redo.durable_lsn()
            );
            for (txn, lsn) in acked.lock().iter() {
                assert!(
                    lsn.0 < torn.0,
                    "seed {seed}: {txn} was acknowledged at {lsn:?}, at/past the torn record {torn:?}"
                );
            }
        }
        let durable = redo.durable_records();
        for (txn, lsn) in acked.lock().iter() {
            assert!(
                lsn.0 <= redo.durable_lsn().0,
                "seed {seed}: acked lsn {lsn:?} above the durable horizon {:?}",
                redo.durable_lsn()
            );
            assert!(
                durable
                    .iter()
                    .any(|r| matches!(r, RedoRecord::Commit { txn: t, .. } if t == txn)),
                "seed {seed}: flush_to acked {txn} but its record did not survive the crash"
            );
        }
    }
    assert!(crashed_seeds > 0, "no explored schedule crashed mid-flush");
}
