//! Engine configuration: protocol selection and every knob the evaluation
//! sweeps.

use crate::admission::AdmissionConfig;
use std::time::Duration;
use txsql_common::latency::LatencyModel;
use txsql_lockmgr::group_lock::GroupLockConfig;
use txsql_lockmgr::hotspot::HotspotConfig;
use txsql_lockmgr::lock_sys::DeadlockPolicy;
use txsql_storage::fault::FaultPlan;
use txsql_txn::ReadViewMode;

/// The concurrency-control protocol / optimization level to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Vanilla MySQL-style 2PL on the page-sharded `lock_sys`.
    Mysql2pl,
    /// General lock optimization (§3.1): lightweight record-keyed locking and
    /// copy-free read views.
    LightweightO1,
    /// O1 plus queue locking for detected hotspots (§3.2).
    QueueLockingO2,
    /// O1 plus group locking for detected hotspots (§3.3/§4) — "TXSQL".
    GroupLockingTxsql,
    /// Bamboo: early lock release with cascading-abort tracking (baseline).
    Bamboo,
    /// Aria: batched deterministic execution (baseline).
    Aria,
}

impl Protocol {
    /// All protocols, in the order the paper's figures list them.
    pub const ALL: [Protocol; 6] = [
        Protocol::Mysql2pl,
        Protocol::LightweightO1,
        Protocol::QueueLockingO2,
        Protocol::GroupLockingTxsql,
        Protocol::Bamboo,
        Protocol::Aria,
    ];

    /// The four systems compared in Figures 8–12.
    pub const SYSTEMS: [Protocol; 4] = [
        Protocol::Mysql2pl,
        Protocol::Aria,
        Protocol::Bamboo,
        Protocol::GroupLockingTxsql,
    ];

    /// The four ablation levels of Figure 6.
    pub const ABLATION: [Protocol; 4] = [
        Protocol::Mysql2pl,
        Protocol::LightweightO1,
        Protocol::QueueLockingO2,
        Protocol::GroupLockingTxsql,
    ];

    /// Short label used in benchmark output (matches the paper's legends).
    pub fn label(&self) -> &'static str {
        match self {
            Protocol::Mysql2pl => "MySQL",
            Protocol::LightweightO1 => "O1",
            Protocol::QueueLockingO2 => "O2",
            Protocol::GroupLockingTxsql => "TXSQL",
            Protocol::Bamboo => "Bamboo",
            Protocol::Aria => "Aria",
        }
    }

    /// True when the protocol uses the heavyweight page-sharded `lock_sys`.
    pub fn uses_lock_sys(&self) -> bool {
        matches!(self, Protocol::Mysql2pl)
    }

    /// True when hotspot detection is active for this protocol.
    pub fn uses_hotspots(&self) -> bool {
        matches!(self, Protocol::QueueLockingO2 | Protocol::GroupLockingTxsql)
    }
}

/// One declarative knob override for an experiment-grid cell.
///
/// The `bench_workloads` harness describes each cell as *data* — protocol ×
/// workload × threads × knob overrides — so the knobs themselves must be
/// values rather than closures.  [`EngineConfig::with_deltas`] applies a list
/// of these on top of [`EngineConfig::for_protocol`], and
/// [`ConfigDelta::label`] renders the override into the cell id recorded in
/// `BENCH_workloads.json`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigDelta {
    /// Group-locking batch size (0 = unbounded), see `with_batch_size`.
    BatchSize(usize),
    /// Dynamic batch sizing on/off (§4.6.1).
    DynamicBatch(bool),
    /// Group commit on/off (Figure 13 ablation).
    GroupCommit(bool),
    /// Aria deterministic batch size.
    AriaBatchSize(usize),
    /// Bamboo statement-boundary early-release batch.
    EarlyReleaseBatch(usize),
    /// Hotspot promotion threshold.
    HotspotThreshold(usize),
    /// Lock-wait timeout in milliseconds (both lock tables + hotspot queues).
    LockWaitTimeoutMs(u64),
    /// Batched commit-time hot-row handover on/off.
    BatchCommitHandover(bool),
    /// Front-door admission control (hot-key queues + shedding) on/off.
    Admission(bool),
    /// Per-hot-key admission-queue waiter bound.
    AdmissionDepth(usize),
    /// Drivers' retry budget (attempts before a retryable abort is reported
    /// failed).
    RetryBudget(u32),
}

impl ConfigDelta {
    /// Applies the override to a configuration.
    pub fn apply(self, config: EngineConfig) -> EngineConfig {
        match self {
            ConfigDelta::BatchSize(n) => config.with_batch_size(n),
            ConfigDelta::DynamicBatch(on) => config.with_dynamic_batch(on),
            ConfigDelta::GroupCommit(on) => config.with_group_commit(on),
            ConfigDelta::AriaBatchSize(n) => config.with_aria_batch_size(n),
            ConfigDelta::EarlyReleaseBatch(n) => config.with_early_release_batch(n),
            ConfigDelta::HotspotThreshold(n) => config.with_hotspot_threshold(n),
            ConfigDelta::LockWaitTimeoutMs(ms) => {
                config.with_lock_wait_timeout(Duration::from_millis(ms))
            }
            ConfigDelta::BatchCommitHandover(on) => config.with_batch_commit_handover(on),
            ConfigDelta::Admission(on) => config.with_admission(on),
            ConfigDelta::AdmissionDepth(n) => config.with_admission_depth(n),
            ConfigDelta::RetryBudget(n) => config.with_retry_budget(n),
        }
    }

    /// Short `key=value` label used in recorded cell ids.
    pub fn label(&self) -> String {
        match self {
            ConfigDelta::BatchSize(n) => format!("batch={n}"),
            ConfigDelta::DynamicBatch(on) => format!("dynbatch={on}"),
            ConfigDelta::GroupCommit(on) => format!("gc={on}"),
            ConfigDelta::AriaBatchSize(n) => format!("ariabatch={n}"),
            ConfigDelta::EarlyReleaseBatch(n) => format!("erbatch={n}"),
            ConfigDelta::HotspotThreshold(n) => format!("hotthresh={n}"),
            ConfigDelta::LockWaitTimeoutMs(ms) => format!("lockwait={ms}ms"),
            ConfigDelta::BatchCommitHandover(on) => format!("handover={on}"),
            ConfigDelta::Admission(on) => format!("admission={on}"),
            ConfigDelta::AdmissionDepth(n) => format!("admdepth={n}"),
            ConfigDelta::RetryBudget(n) => format!("retries={n}"),
        }
    }
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Protocol to run.
    pub protocol: Protocol,
    /// Read-view implementation (copying vs copy-free, §3.1.2).
    pub read_view_mode: ReadViewMode,
    /// Simulated durability / replication latencies.
    pub latency: LatencyModel,
    /// Lock-wait timeout for the regular lock tables.
    pub lock_wait_timeout: Duration,
    /// Deadlock policy for the regular lock tables.
    pub deadlock_policy: DeadlockPolicy,
    /// Hotspot detection configuration (§4.1).
    pub hotspot: HotspotConfig,
    /// Group-locking configuration (batch size, dynamic batching, §4.2/§4.6.1).
    pub group: GroupLockConfig,
    /// Group commit in the 2PC commit pipeline (§4.3, Figure 13).
    pub group_commit: bool,
    /// Aria batch size (transactions per deterministic batch).
    pub aria_batch_size: usize,
    /// Statement-boundary batching of Bamboo's early lock release: the write
    /// path defers early releases into the transaction's pending buffer and
    /// flushes them through **one** batched `release_record_locks` call once
    /// this many are pending.  `1` (the default) releases every statement's
    /// lock immediately — the classic Bamboo behavior; larger values
    /// amortize the lock-table and registry shard locking at the cost of
    /// holding each released lock until the end of the batch's statement.
    pub early_release_batch: usize,
    /// Batch the group-locking leader's commit-time hot-row handover: the
    /// commit path collects the leader's hot records, fetches their group
    /// entries with one entry-map shard lock per shard, releases the row
    /// locks in one batched lock-table call and promotes all successor
    /// leaders with their wake-ups fired outside every guard.  `false`
    /// restores the per-record prepare → release → handover *sequence* for
    /// A/B measurement; note it is emulated on the batched machinery
    /// (per-record `begin_leader_commit`/`finish_leader_handover` calls),
    /// which pays a few small per-record allocations the original
    /// pre-batching loops did not, so throughput A/Bs are slightly
    /// pessimistic about the baseline.  The `handover_shard_locks` counter
    /// (shard-lock takes, allocation-independent) is the faithful metric.
    pub batch_commit_handover: bool,
    /// Empty-shell eviction budget for the page-sharded `lock_sys` (per
    /// shard).  `None` retains shells for allocation-free steady state;
    /// `Some(limit)` sweeps a shard's empty shells when they exceed the
    /// limit — see `LockSysConfig::shell_sweep_limit`.
    pub lock_shell_sweep_limit: Option<usize>,
    /// Record read/write sets of committed transactions so the
    /// serializability checker can audit the run (§6.4.5).
    pub record_history: bool,
    /// Spawn the background hotspot sweeper thread (§4.1).
    pub start_sweeper: bool,
    /// Crash-fault injection plan (`None` = no injected faults).  Seeded
    /// plans drive the sim crash exploration; see
    /// `txsql_storage::fault::FaultPlan`.
    pub fault_plan: Option<FaultPlan>,
    /// Front-door admission control: hot-key queues, shedding, and the
    /// drivers' retry/backoff policy (see [`crate::admission`]).
    pub admission: AdmissionConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::for_protocol(Protocol::GroupLockingTxsql)
    }
}

impl EngineConfig {
    /// A sensible configuration for the given protocol: the defaults the
    /// paper's evaluation uses (batch size 10, hotspot threshold 32, copy-free
    /// read views for O1+, copying views and lock_sys for the MySQL baseline).
    pub fn for_protocol(protocol: Protocol) -> Self {
        let read_view_mode = match protocol {
            Protocol::Mysql2pl => ReadViewMode::Copying,
            _ => ReadViewMode::CopyFree,
        };
        Self {
            protocol,
            read_view_mode,
            latency: LatencyModel::in_memory(),
            lock_wait_timeout: Duration::from_millis(200),
            deadlock_policy: DeadlockPolicy::Detect,
            hotspot: if protocol.uses_hotspots() {
                HotspotConfig::default()
            } else {
                HotspotConfig::disabled()
            },
            group: GroupLockConfig::default(),
            group_commit: true,
            aria_batch_size: 64,
            early_release_batch: 1,
            batch_commit_handover: true,
            lock_shell_sweep_limit: None,
            record_history: false,
            start_sweeper: protocol.uses_hotspots(),
            fault_plan: None,
            admission: AdmissionConfig::default(),
        }
    }

    /// Sets the simulated latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the lock-wait timeout (both lock tables and hotspot queues).
    pub fn with_lock_wait_timeout(mut self, timeout: Duration) -> Self {
        self.lock_wait_timeout = timeout;
        self.group.hot_wait_timeout = timeout;
        self
    }

    /// Sets the group-locking batch size (0 = unbounded).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.group.batch_size = batch_size;
        self
    }

    /// Enables or disables dynamic batch sizing (§4.6.1).
    pub fn with_dynamic_batch(mut self, dynamic: bool) -> Self {
        self.group.dynamic_batch = dynamic;
        self
    }

    /// Enables or disables group commit (Figure 13 ablation).
    pub fn with_group_commit(mut self, enabled: bool) -> Self {
        self.group_commit = enabled;
        self
    }

    /// Sets the hotspot promotion threshold.
    pub fn with_hotspot_threshold(mut self, threshold: usize) -> Self {
        self.hotspot = self.hotspot.clone().with_threshold(threshold);
        self
    }

    /// Enables history recording for the serializability checker.
    pub fn with_history_recording(mut self, enabled: bool) -> Self {
        self.record_history = enabled;
        self
    }

    /// Sets the Aria batch size.
    pub fn with_aria_batch_size(mut self, batch: usize) -> Self {
        self.aria_batch_size = batch.max(1);
        self
    }

    /// Sets how many Bamboo early releases are batched per
    /// statement-boundary flush (1 = release immediately).
    pub fn with_early_release_batch(mut self, batch: usize) -> Self {
        self.early_release_batch = batch.max(1);
        self
    }

    /// Sets the `lock_sys` empty-shell sweep budget (`None` = retain shells).
    pub fn with_shell_sweep_limit(mut self, limit: Option<usize>) -> Self {
        self.lock_shell_sweep_limit = limit;
        self
    }

    /// Enables or disables the batched commit-time hot-row handover
    /// (`true` by default; `false` restores the per-record sequence).
    pub fn with_batch_commit_handover(mut self, batched: bool) -> Self {
        self.batch_commit_handover = batched;
        self
    }

    /// Installs a crash-fault injection plan (sim crash exploration).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enables or disables the front-door hot-key admission queues.
    pub fn with_admission(mut self, enabled: bool) -> Self {
        self.admission.enabled = enabled;
        self
    }

    /// Sets the per-hot-key admission-queue waiter bound.
    pub fn with_admission_depth(mut self, depth: usize) -> Self {
        self.admission = self.admission.with_queue_depth(depth);
        self
    }

    /// Sets the drivers' retry budget.
    pub fn with_retry_budget(mut self, budget: u32) -> Self {
        self.admission = self.admission.with_retry_budget(budget);
        self
    }

    /// Replaces the whole admission configuration.
    pub fn with_admission_config(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// Applies a list of declarative knob overrides in order.
    pub fn with_deltas(self, deltas: &[ConfigDelta]) -> Self {
        deltas
            .iter()
            .fold(self, |config, delta| delta.apply(config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_defaults_match_the_paper() {
        let mysql = EngineConfig::for_protocol(Protocol::Mysql2pl);
        assert_eq!(mysql.read_view_mode, ReadViewMode::Copying);
        assert!(!mysql.hotspot.enabled);
        let txsql = EngineConfig::for_protocol(Protocol::GroupLockingTxsql);
        assert_eq!(txsql.read_view_mode, ReadViewMode::CopyFree);
        assert!(txsql.hotspot.enabled);
        assert_eq!(txsql.group.batch_size, 10);
        assert_eq!(txsql.hotspot.promote_threshold, 32);
        assert!(
            !txsql.admission.enabled,
            "admission queues are opt-in per cell"
        );
    }

    #[test]
    fn builder_methods_apply() {
        let cfg = EngineConfig::for_protocol(Protocol::GroupLockingTxsql)
            .with_batch_size(64)
            .with_group_commit(false)
            .with_hotspot_threshold(4)
            .with_lock_wait_timeout(Duration::from_millis(77))
            .with_aria_batch_size(0)
            .with_history_recording(true)
            .with_dynamic_batch(false)
            .with_early_release_batch(0)
            .with_batch_commit_handover(false)
            .with_shell_sweep_limit(Some(16))
            .with_fault_plan(FaultPlan::seeded(7));
        assert_eq!(cfg.group.batch_size, 64);
        assert!(cfg.fault_plan.is_some());
        assert!(!cfg.group_commit);
        assert_eq!(cfg.hotspot.promote_threshold, 4);
        assert_eq!(cfg.lock_wait_timeout, Duration::from_millis(77));
        assert_eq!(cfg.group.hot_wait_timeout, Duration::from_millis(77));
        assert_eq!(cfg.aria_batch_size, 1);
        assert!(cfg.record_history);
        assert!(!cfg.group.dynamic_batch);
        assert_eq!(cfg.early_release_batch, 1, "batch of 0 clamps to 1");
        assert!(!cfg.batch_commit_handover);
        assert_eq!(cfg.lock_shell_sweep_limit, Some(16));
        let default = EngineConfig::for_protocol(Protocol::Bamboo);
        assert_eq!(default.early_release_batch, 1);
        assert!(default.batch_commit_handover);
        assert_eq!(default.lock_shell_sweep_limit, None);
    }

    #[test]
    fn config_deltas_apply_declaratively() {
        let deltas = [
            ConfigDelta::BatchSize(64),
            ConfigDelta::GroupCommit(false),
            ConfigDelta::AriaBatchSize(8),
            ConfigDelta::EarlyReleaseBatch(4),
            ConfigDelta::HotspotThreshold(5),
            ConfigDelta::LockWaitTimeoutMs(99),
            ConfigDelta::DynamicBatch(false),
            ConfigDelta::BatchCommitHandover(false),
            ConfigDelta::Admission(true),
            ConfigDelta::AdmissionDepth(4),
            ConfigDelta::RetryBudget(3),
        ];
        let cfg = EngineConfig::for_protocol(Protocol::GroupLockingTxsql).with_deltas(&deltas);
        assert!(cfg.admission.enabled);
        assert_eq!(cfg.admission.queue_depth, 4);
        assert_eq!(cfg.admission.retry_budget, 3);
        assert_eq!(ConfigDelta::Admission(true).label(), "admission=true");
        assert_eq!(cfg.group.batch_size, 64);
        assert!(!cfg.group_commit);
        assert_eq!(cfg.aria_batch_size, 8);
        assert_eq!(cfg.early_release_batch, 4);
        assert_eq!(cfg.hotspot.promote_threshold, 5);
        assert_eq!(cfg.lock_wait_timeout, Duration::from_millis(99));
        assert!(!cfg.group.dynamic_batch);
        assert!(!cfg.batch_commit_handover);
        assert_eq!(ConfigDelta::BatchSize(64).label(), "batch=64");
        assert_eq!(ConfigDelta::LockWaitTimeoutMs(99).label(), "lockwait=99ms");
        // Labels are distinct per knob kind.
        let labels: std::collections::HashSet<String> = deltas.iter().map(|d| d.label()).collect();
        assert_eq!(labels.len(), deltas.len());
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            Protocol::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), Protocol::ALL.len());
    }

    #[test]
    fn protocol_classification() {
        assert!(Protocol::Mysql2pl.uses_lock_sys());
        assert!(!Protocol::GroupLockingTxsql.uses_lock_sys());
        assert!(Protocol::QueueLockingO2.uses_hotspots());
        assert!(!Protocol::Bamboo.uses_hotspots());
    }
}
